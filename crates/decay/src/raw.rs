//! Reference implementation of the time-decay scheme (Eq. 1), kept around as
//! the oracle that the anchored fast path is property-tested against.

use anc_graph::EdgeId;

use crate::Time;

/// Stores every activation verbatim and evaluates Eq. 1 directly:
/// `a_t(e) = Σ_{(e, t_i): t_i ≤ t} e^{-λ(t - t_i)}`.
///
/// `O(#activations)` per query — this is exactly the cost the global decay
/// factor eliminates; it exists for testing and for the `abl_rescale`
/// ablation.
#[derive(Clone, Debug)]
pub struct RawActivations {
    lambda: f64,
    /// Per-edge activation timestamps, in arrival order.
    per_edge: Vec<Vec<Time>>,
}

impl RawActivations {
    /// Creates an empty store for `m` edges with decay `lambda`.
    pub fn new(m: usize, lambda: f64) -> Self {
        Self { lambda, per_edge: vec![Vec::new(); m] }
    }

    /// Records an activation `(e, t)`.
    pub fn activate(&mut self, e: EdgeId, t: Time) {
        self.per_edge[e as usize].push(t);
    }

    /// Evaluates `a_t(e)` per Eq. 1, ignoring activations after `t`.
    pub fn activeness_at(&self, e: EdgeId, t: Time) -> f64 {
        self.per_edge[e as usize]
            .iter()
            .filter(|&&ti| ti <= t)
            .map(|&ti| (-self.lambda * (t - ti)).exp())
            .sum()
    }

    /// Number of recorded activations on `e`.
    pub fn count(&self, e: EdgeId) -> usize {
        self.per_edge[e as usize].len()
    }

    /// Total number of recorded activations.
    pub fn total(&self) -> usize {
        self.per_edge.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Example 1: λ = 0.1, activations at t = 0 and t = 2 on edge
    /// (v8, v11).
    #[test]
    fn paper_example_1() {
        let mut raw = RawActivations::new(1, 0.1);
        raw.activate(0, 0.0);
        assert!((raw.activeness_at(0, 0.0) - 1.0).abs() < 1e-12);
        assert!((raw.activeness_at(0, 1.0) - 0.905).abs() < 5e-4);
        raw.activate(0, 2.0);
        assert!((raw.activeness_at(0, 2.0) - 1.8187).abs() < 5e-4);
    }

    #[test]
    fn future_activations_ignored() {
        let mut raw = RawActivations::new(1, 0.1);
        raw.activate(0, 5.0);
        assert_eq!(raw.activeness_at(0, 1.0), 0.0);
        assert!((raw.activeness_at(0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts() {
        let mut raw = RawActivations::new(2, 0.1);
        raw.activate(0, 1.0);
        raw.activate(0, 2.0);
        raw.activate(1, 3.0);
        assert_eq!(raw.count(0), 2);
        assert_eq!(raw.count(1), 1);
        assert_eq!(raw.total(), 3);
    }
}
