//! The decay clock: current time, anchor time, global decay factor and the
//! batched-rescale policy.

use crate::Time;

/// When to trigger a batched rescale (paper Section IV-A: "when a fixed
/// number of activations accumulates, we let all anchored activeness absorb
/// the global decay factor").
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct RescaleConfig {
    /// Rescale after this many activations since the last rescale.
    pub every_activations: usize,
    /// Also rescale whenever `λ(t - t*)` exceeds this guard, regardless of
    /// activation count. `f64` overflows at ~709; the default of 200 leaves
    /// ample headroom for products of anchored quantities.
    pub exponent_guard: f64,
}

impl Default for RescaleConfig {
    fn default() -> Self {
        Self { every_activations: 4096, exponent_guard: 200.0 }
    }
}

/// Tracks the current time `t`, the anchor time `t*` and the decay factor
/// `λ`; decides when a batched rescale is due.
///
/// ```
/// use anc_decay::{ActivenessStore, DecayClock, Rescalable};
///
/// // Paper Example 1: λ = 0.1, activations at t = 0 and t = 2.
/// let mut clock = DecayClock::new(0.1);
/// let mut act = ActivenessStore::new(1, 0.0);
/// act.activate(0, &clock);
/// clock.advance_to(2.0);
/// act.activate(0, &clock);
/// assert!((act.current(0, &clock) - 1.8187).abs() < 5e-4);
/// // A batched rescale is unobservable:
/// let g = clock.take_rescale();
/// act.rescale(g);
/// assert!((act.current(0, &clock) - 1.8187).abs() < 5e-4);
/// ```
///
/// The clock itself holds no per-edge state — stores implementing
/// [`crate::Rescalable`] absorb the factor returned by
/// [`DecayClock::take_rescale`].
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DecayClock {
    lambda: f64,
    now: Time,
    anchor: Time,
    cfg: RescaleConfig,
    activations_since_rescale: usize,
}

impl DecayClock {
    /// Creates a clock at `t = t* = 0` with decay factor `lambda >= 0`.
    pub fn new(lambda: f64) -> Self {
        Self::with_config(lambda, RescaleConfig::default())
    }

    /// Creates a clock with an explicit rescale policy.
    pub fn with_config(lambda: f64, cfg: RescaleConfig) -> Self {
        assert!(lambda >= 0.0 && lambda.is_finite(), "lambda must be finite and >= 0");
        Self { lambda, now: 0.0, anchor: 0.0, cfg, activations_since_rescale: 0 }
    }

    /// The decay parameter λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Current time `t`.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Anchor time `t*`.
    #[inline]
    pub fn anchor(&self) -> Time {
        self.anchor
    }

    /// The global decay factor `g(t, t*) = e^{-λ(t - t*)}` (Definition 1).
    #[inline]
    pub fn global_factor(&self) -> f64 {
        (-self.lambda * (self.now - self.anchor)).exp()
    }

    /// `1 / g(t, t*) = e^{λ(t - t*)}` — the amount by which a unit activation
    /// increases an *anchored* PosM value at the current time.
    #[inline]
    pub fn boost(&self) -> f64 {
        (self.lambda * (self.now - self.anchor)).exp()
    }

    /// Advances the clock to `t`. Time never moves backwards; a stale `t` is
    /// clamped to the current time (activation streams are ordered, but
    /// simultaneous batches may replay equal timestamps).
    pub fn advance_to(&mut self, t: Time) {
        assert!(t.is_finite(), "time must be finite");
        if t > self.now {
            self.now = t;
        }
    }

    /// Records that one activation was processed (for the batch trigger).
    pub fn note_activation(&mut self) {
        self.activations_since_rescale += 1;
    }

    /// Whether a batched rescale is due under the configured policy.
    pub fn needs_rescale(&self) -> bool {
        self.activations_since_rescale >= self.cfg.every_activations
            || self.lambda * (self.now - self.anchor) >= self.cfg.exponent_guard
    }

    /// Decomposes the clock into its raw persisted fields (for the compact
    /// binary snapshot codec; see `anc-core::persist::binary`).
    pub fn to_parts(&self) -> ClockParts {
        ClockParts {
            lambda: self.lambda,
            now: self.now,
            anchor: self.anchor,
            cfg: self.cfg,
            activations_since_rescale: self.activations_since_rescale,
        }
    }

    /// Reassembles a clock from persisted fields. Inverse of
    /// [`DecayClock::to_parts`]; restores the exact rescale-trigger state.
    ///
    /// # Panics
    /// Panics if `lambda` is negative or non-finite (same contract as
    /// [`DecayClock::with_config`]).
    pub fn from_parts(parts: ClockParts) -> Self {
        assert!(parts.lambda >= 0.0 && parts.lambda.is_finite(), "lambda must be finite and >= 0");
        Self {
            lambda: parts.lambda,
            now: parts.now,
            anchor: parts.anchor,
            cfg: parts.cfg,
            activations_since_rescale: parts.activations_since_rescale,
        }
    }

    /// Performs the clock side of a batched rescale: returns the factor `g`
    /// that every anchored store must absorb (via [`crate::Rescalable`]) and
    /// resets `t* ← t`.
    pub fn take_rescale(&mut self) -> f64 {
        let g = self.global_factor();
        self.anchor = self.now;
        self.activations_since_rescale = 0;
        g
    }
}

/// The raw persisted fields of a [`DecayClock`] (see
/// [`DecayClock::to_parts`] / [`DecayClock::from_parts`]).
#[derive(Clone, Copy, Debug)]
pub struct ClockParts {
    /// Decay parameter λ.
    pub lambda: f64,
    /// Current time `t`.
    pub now: Time,
    /// Anchor time `t*`.
    pub anchor: Time,
    /// Batched-rescale policy.
    pub cfg: RescaleConfig,
    /// Activations processed since the last rescale.
    pub activations_since_rescale: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_matches_definition() {
        let mut c = DecayClock::new(0.1);
        c.advance_to(1.0);
        assert!((c.global_factor() - (-0.1f64).exp()).abs() < 1e-15);
        assert!((c.boost() - (0.1f64).exp()).abs() < 1e-15);
        c.advance_to(2.0);
        assert!((c.global_factor() - (-0.2f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn rescale_resets_anchor() {
        let mut c = DecayClock::new(0.5);
        c.advance_to(3.0);
        let g = c.take_rescale();
        assert!((g - (-1.5f64).exp()).abs() < 1e-15);
        assert_eq!(c.anchor(), 3.0);
        assert!((c.global_factor() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn activation_count_trigger() {
        let mut c = DecayClock::with_config(
            0.1,
            RescaleConfig { every_activations: 3, exponent_guard: 200.0 },
        );
        assert!(!c.needs_rescale());
        c.note_activation();
        c.note_activation();
        assert!(!c.needs_rescale());
        c.note_activation();
        assert!(c.needs_rescale());
        c.take_rescale();
        assert!(!c.needs_rescale());
    }

    #[test]
    fn exponent_guard_trigger() {
        let mut c = DecayClock::with_config(
            1.0,
            RescaleConfig { every_activations: usize::MAX, exponent_guard: 50.0 },
        );
        c.advance_to(49.0);
        assert!(!c.needs_rescale());
        c.advance_to(50.0);
        assert!(c.needs_rescale());
    }

    #[test]
    fn time_is_monotonic() {
        let mut c = DecayClock::new(0.1);
        c.advance_to(5.0);
        c.advance_to(3.0); // clamped
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn zero_lambda_never_decays() {
        let mut c = DecayClock::new(0.0);
        c.advance_to(1e9);
        assert_eq!(c.global_factor(), 1.0);
        assert!(!c.needs_rescale());
    }
}
