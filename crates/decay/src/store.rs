//! Dense per-edge anchored-activeness storage.

use anc_graph::EdgeId;

use crate::{DecayClock, MaintainClass, Rescalable};

/// Per-edge anchored activeness `a*_t(e)` (PosM).
///
/// The true activeness is `a_t(e) = a*_t(e) × g(t, t*)` (Definition 1); this
/// store keeps only the anchored part, so an activation costs `O(1)` and the
/// passage of time costs nothing (Lemma 1).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ActivenessStore {
    anchored: Vec<f64>,
}

impl ActivenessStore {
    /// Creates a store for `m` edges, each with initial activeness
    /// `initial` at `t = 0` (the paper's activation-network experiments use
    /// initial activeness 1; Section VI).
    pub fn new(m: usize, initial: f64) -> Self {
        Self { anchored: vec![initial; m] }
    }

    /// Number of edges tracked.
    pub fn len(&self) -> usize {
        self.anchored.len()
    }

    /// Whether the store tracks zero edges.
    pub fn is_empty(&self) -> bool {
        self.anchored.is_empty()
    }

    /// Applies one activation on `e` at the clock's current time: the true
    /// activeness increases by 1, so the anchored value increases by
    /// `1 / g(t, t*)` (Section IV-A).
    pub fn activate(&mut self, e: EdgeId, clock: &DecayClock) {
        self.anchored[e as usize] += clock.boost();
    }

    /// Anchored activeness `a*_t(e)`.
    #[inline]
    pub fn anchored(&self, e: EdgeId) -> f64 {
        self.anchored[e as usize]
    }

    /// True activeness `a_t(e) = a*_t(e) × g(t, t*)` at the clock's time.
    #[inline]
    pub fn current(&self, e: EdgeId, clock: &DecayClock) -> f64 {
        self.anchored[e as usize] * clock.global_factor()
    }

    /// Raw anchored slice (read-only); index by `EdgeId`.
    pub fn as_slice(&self) -> &[f64] {
        &self.anchored
    }

    /// Rebuilds a store from a persisted anchored array (inverse of
    /// [`ActivenessStore::as_slice`]; used by the binary snapshot codec).
    pub fn from_anchored(anchored: Vec<f64>) -> Self {
        Self { anchored }
    }

    /// Heap bytes used.
    pub fn memory_bytes(&self) -> usize {
        self.anchored.len() * std::mem::size_of::<f64>()
    }
}

impl Rescalable for ActivenessStore {
    fn rescale(&mut self, g: f64) {
        crate::absorb(MaintainClass::Pos, &mut self.anchored, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawActivations;

    /// Paper Example 2: anchored bookkeeping for Example 1's stream.
    #[test]
    fn paper_example_2() {
        let mut clock = DecayClock::new(0.1);
        let mut store = ActivenessStore::new(1, 0.0);

        // A1 = (e, 0): a*_0 = 1 (boost = 1 at t = t* = 0).
        store.activate(0, &clock);
        assert!((store.anchored(0) - 1.0).abs() < 1e-12);

        // t = 1: g = e^{-0.1} ≈ 0.905; a_1 = 1 × 0.905.
        clock.advance_to(1.0);
        assert!((store.current(0, &clock) - 0.905).abs() < 5e-4);
        assert!((store.anchored(0) - 1.0).abs() < 1e-12); // unchanged by time

        // t = 2, A2 = (e, 2): a*_2 = 1 + 1/g(2, 0) = 1 + e^{0.2} ≈ 2.221.
        clock.advance_to(2.0);
        store.activate(0, &clock);
        assert!((store.anchored(0) - 2.2214).abs() < 5e-4);
        // a_2 = a*_2 × g(2, 0) ≈ 1.8187.
        assert!((store.current(0, &clock) - 1.8187).abs() < 5e-4);

        // Batched rescale at t = 2: t* ← 2 and a*_2 = a_2 = 1.8187.
        let g = clock.take_rescale();
        store.rescale(g);
        assert!((store.anchored(0) - 1.8187).abs() < 5e-4);
        assert!((store.current(0, &clock) - 1.8187).abs() < 5e-4);
    }

    #[test]
    fn matches_raw_reference_with_rescales() {
        // Deterministic mini-stream over 3 edges; rescale after each step and
        // verify the anchored fast path always agrees with direct Eq. 1.
        let lambda = 0.3;
        let stream: &[(EdgeId, f64)] =
            &[(0, 0.5), (1, 0.5), (0, 1.25), (2, 2.0), (1, 2.0), (0, 3.75), (2, 4.0)];
        let mut clock = DecayClock::new(lambda);
        let mut store = ActivenessStore::new(3, 0.0);
        let mut raw = RawActivations::new(3, lambda);

        for (i, &(e, t)) in stream.iter().enumerate() {
            clock.advance_to(t);
            store.activate(e, &clock);
            raw.activate(e, t);
            if i % 2 == 1 {
                let g = clock.take_rescale();
                store.rescale(g);
            }
            for edge in 0..3 {
                let fast = store.current(edge, &clock);
                let slow = raw.activeness_at(edge, t);
                assert!(
                    (fast - slow).abs() < 1e-9 * (1.0 + slow),
                    "edge {edge} at t={t}: fast {fast} vs raw {slow}"
                );
            }
        }
    }

    #[test]
    fn initial_activeness() {
        let clock = DecayClock::new(0.1);
        let store = ActivenessStore::new(4, 1.0);
        for e in 0..4 {
            assert_eq!(store.current(e, &clock), 1.0);
        }
        assert_eq!(store.len(), 4);
        assert!(!store.is_empty());
        assert_eq!(store.memory_bytes(), 4 * 8);
    }
}
