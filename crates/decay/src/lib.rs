//! # anc-decay
//!
//! The time-decay scheme and the **global decay factor** of *Clustering
//! Activation Networks* (Section III–IV-A).
//!
//! ## The problem
//!
//! Under the time-decay scheme (Eq. 1), the activeness of edge `e` at time
//! `t` is `a_t(e) = Σ_i e^{-λ(t - t_i)}` over its activations — so *every*
//! edge's activeness changes continuously, even without activations. Naïve
//! maintenance costs `O(m)` per time step.
//!
//! ## The paper's fix (Observation 1 / Definition 1)
//!
//! Unactivated edges all decay at the same edge-independent pace
//! `e^{-λ(t'' - t')}`. Projecting all activeness onto an *anchor time* `t*`
//! yields the **anchored activeness** `a*_t(e) = a_t(e) / g(t, t*)` where
//! `g(t, t*) = e^{-λ(t - t*)}` is the **global decay factor**. The anchored
//! value changes *only* when the edge itself is activated (by
//! `1 / g(t, t*)`), so maintenance is `O(1)` per activation (Lemma 1).
//!
//! A **batched rescale** periodically folds `g` back into the stored values
//! and resets `t* ← t`; crucial in practice because `1/g = e^{λ(t - t*)}`
//! overflows `f64` once `λ(t - t*) > ~709`. [`DecayClock`] triggers the
//! rescale well before that.
//!
//! ## Maintainability classes (Definition 2, Lemma 2)
//!
//! Derived functions of the activeness fall into three classes describing
//! how their anchored representation relates to the true value:
//! [`MaintainClass::Pos`] (`F = f(a*) · g`, e.g. the similarity `S_t`),
//! [`MaintainClass::Neg`] (`F = f(a*) / g`, e.g. the reciprocal similarity
//! `1/S_t` and the distance metric — Lemmas 6 & 10), and
//! [`MaintainClass::Neu`] (`g` cancels, e.g. the active similarity σ —
//! Lemma 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod maintain;
mod raw;
mod store;
pub mod window;

pub use clock::{ClockParts, DecayClock, RescaleConfig};
pub use maintain::{absorb, MaintainClass, Rescalable};
pub use raw::RawActivations;
pub use store::ActivenessStore;
pub use window::SlidingWindow;

/// Timestamp type. The paper's streams use non-negative, non-decreasing
/// arrival times; fractional times are allowed.
pub type Time = f64;
