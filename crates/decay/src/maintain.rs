//! Maintainability classes under the global decay factor (Definition 2).

/// How a derived function of the activeness relates to its anchored
/// representation (paper Definition 2):
///
/// * `Pos` — positively maintainable: `F_t = f({a*}) · g(t, t*)`. Closed
///   under constant-free linear combination (Lemma 2); the activeness itself
///   and the similarity `S_t` are PosM (Lemma 4).
/// * `Neg` — negatively maintainable: `F_t = f({a*}) / g(t, t*)`. Inverses of
///   PosM functions are NegM (Lemma 2); the reciprocal similarity `1/S_t`,
///   the distance metric `M_t` and the pyramid distances are NegM
///   (Lemmas 6 & 10).
/// * `Neu` — neutrally maintainable: `g` cancels entirely, e.g. the active
///   similarity σ (Lemma 3), which is a ratio of PosM quantities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MaintainClass {
    /// `true = anchored × g`.
    Pos,
    /// `true = anchored / g`.
    Neg,
    /// `true = anchored` (the factor cancels).
    Neu,
}

impl MaintainClass {
    /// Materializes the true value from an anchored value under factor `g`.
    #[inline]
    pub fn true_value(self, anchored: f64, g: f64) -> f64 {
        match self {
            MaintainClass::Pos => anchored * g,
            MaintainClass::Neg => anchored / g,
            MaintainClass::Neu => anchored,
        }
    }

    /// The multiplier an anchored value must absorb at a batched rescale
    /// (`t* ← t`): the new anchored value is `anchored × multiplier` so that
    /// the true value is unchanged when `g` resets to 1.
    #[inline]
    pub fn rescale_multiplier(self, g: f64) -> f64 {
        match self {
            MaintainClass::Pos => g,
            MaintainClass::Neg => 1.0 / g,
            MaintainClass::Neu => 1.0,
        }
    }

    /// Class of the inverse function `1/F` (Lemma 2: the inverse of a PosM
    /// function is NegM, and vice versa; Neu is closed under inversion).
    #[inline]
    pub fn inverse(self) -> Self {
        match self {
            MaintainClass::Pos => MaintainClass::Neg,
            MaintainClass::Neg => MaintainClass::Pos,
            MaintainClass::Neu => MaintainClass::Neu,
        }
    }

    /// Class of a ratio `F/G` of two functions of the same class: the factor
    /// cancels, so the result is NeuM (this is how σ earns Lemma 3).
    #[inline]
    pub fn ratio_same_class() -> Self {
        MaintainClass::Neu
    }
}

/// Applies a batched rescale to a slice of anchored values of class `class`.
pub fn absorb(class: MaintainClass, anchored: &mut [f64], g: f64) {
    let mult = class.rescale_multiplier(g);
    if mult != 1.0 {
        for v in anchored.iter_mut() {
            *v *= mult;
        }
    }
}

/// A store of anchored values that participates in batched rescales.
///
/// All stores registered with an engine absorb the *same* factor in one
/// batch, keeping every derived quantity mutually consistent (Lemma 10: the
/// factor for `S_t^{-1}`, `M_t` and the index `P` is `g^{-1}`).
pub trait Rescalable {
    /// Absorbs the global decay factor `g` into the anchored representation.
    fn rescale(&mut self, g: f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_value_roundtrip() {
        let g = 0.5;
        for class in [MaintainClass::Pos, MaintainClass::Neg, MaintainClass::Neu] {
            let anchored = 4.0;
            let truth = class.true_value(anchored, g);
            // After a rescale the anchored value absorbs the multiplier and the
            // factor resets to 1; the true value must be unchanged.
            let rescaled = anchored * class.rescale_multiplier(g);
            assert!((class.true_value(rescaled, 1.0) - truth).abs() < 1e-12);
        }
    }

    #[test]
    fn inverse_classes() {
        assert_eq!(MaintainClass::Pos.inverse(), MaintainClass::Neg);
        assert_eq!(MaintainClass::Neg.inverse(), MaintainClass::Pos);
        assert_eq!(MaintainClass::Neu.inverse(), MaintainClass::Neu);
    }

    #[test]
    fn absorb_slice() {
        let mut pos = vec![1.0, 2.0];
        absorb(MaintainClass::Pos, &mut pos, 0.5);
        assert_eq!(pos, vec![0.5, 1.0]);
        let mut neg = vec![1.0, 2.0];
        absorb(MaintainClass::Neg, &mut neg, 0.5);
        assert_eq!(neg, vec![2.0, 4.0]);
        let mut neu = vec![1.0, 2.0];
        absorb(MaintainClass::Neu, &mut neu, 0.5);
        assert_eq!(neu, vec![1.0, 2.0]);
    }
}
