//! Sliding-window activeness — the related-work alternative to the
//! time-decay scheme (paper Section II: existing work "either associat[es]
//! each edge a duration … or constantly focus[es] on the activations within
//! a temporal window (i.e., sliding window)").
//!
//! Each edge's activeness is the number of its activations inside
//! `(now − window, now]`. Unlike the time-decay scheme, the weight of an
//! edge changes *discontinuously* when an activation falls out of the
//! window — the cliff effect the `abl_window_vs_decay` ablation quantifies —
//! and maintenance cannot be reduced to an edge-independent global factor:
//! evictions are per-edge events tied to each activation's own timestamp.

use anc_graph::EdgeId;
use std::collections::VecDeque;

use crate::Time;

/// Sliding-window activeness store.
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    window: f64,
    now: Time,
    per_edge: Vec<VecDeque<Time>>,
}

impl SlidingWindow {
    /// Creates a store for `m` edges with window length `window > 0`.
    pub fn new(m: usize, window: f64) -> Self {
        assert!(window > 0.0 && window.is_finite());
        Self { window, now: 0.0, per_edge: vec![VecDeque::new(); m] }
    }

    /// The window length.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Current time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Advances the clock (monotonic; stale times are clamped).
    pub fn advance_to(&mut self, t: Time) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Records an activation `(e, t)` at the current or a given time.
    pub fn activate(&mut self, e: EdgeId, t: Time) {
        self.advance_to(t);
        let q = &mut self.per_edge[e as usize];
        q.push_back(t);
        Self::evict(q, self.now, self.window);
    }

    fn evict(q: &mut VecDeque<Time>, now: Time, window: f64) {
        while let Some(&front) = q.front() {
            if front <= now - window {
                q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Activeness of `e` at the current time: activations within the window.
    pub fn activeness(&mut self, e: EdgeId) -> f64 {
        let now = self.now;
        let window = self.window;
        let q = &mut self.per_edge[e as usize];
        Self::evict(q, now, window);
        q.len() as f64
    }

    /// Materializes all edge weights at the current time.
    pub fn weights(&mut self) -> Vec<f64> {
        (0..self.per_edge.len()).map(|e| self.activeness(e as EdgeId)).collect()
    }

    /// Total retained activations (memory proxy — the window model must keep
    /// every in-window activation, unlike the O(1)-per-edge anchored store).
    pub fn retained(&self) -> usize {
        self.per_edge.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_within_window() {
        let mut w = SlidingWindow::new(1, 10.0);
        w.activate(0, 1.0);
        w.activate(0, 5.0);
        assert_eq!(w.activeness(0), 2.0);
        w.advance_to(11.0); // activation at t=1 exits at t=11
        assert_eq!(w.activeness(0), 1.0);
        w.advance_to(15.0);
        assert_eq!(w.activeness(0), 0.0);
    }

    #[test]
    fn cliff_vs_decay_smoothness() {
        // One activation: the window weight is a step function while the
        // decay weight is continuous.
        let mut w = SlidingWindow::new(1, 5.0);
        w.activate(0, 0.0);
        w.advance_to(4.999);
        let before = w.activeness(0);
        w.advance_to(5.001);
        let after = w.activeness(0);
        assert_eq!(before, 1.0);
        assert_eq!(after, 0.0);
        assert_eq!(before - after, 1.0, "full-unit cliff at window exit");
    }

    #[test]
    fn retention_grows_with_rate() {
        let mut w = SlidingWindow::new(2, 100.0);
        for i in 0..50 {
            w.activate(i % 2, i as f64);
        }
        assert_eq!(w.retained(), 50);
        // After the window passes, memory is reclaimed on touch.
        w.advance_to(1000.0);
        assert_eq!(w.weights(), vec![0.0, 0.0]);
        assert_eq!(w.retained(), 0);
    }

    #[test]
    fn monotonic_clock() {
        let mut w = SlidingWindow::new(1, 2.0);
        w.activate(0, 5.0);
        w.advance_to(3.0); // clamped
        assert_eq!(w.now(), 5.0);
        assert_eq!(w.activeness(0), 1.0);
    }
}
