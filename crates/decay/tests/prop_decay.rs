//! Property tests: the anchored fast path (global decay factor + batched
//! rescale) is exactly equivalent to direct evaluation of Eq. 1, for
//! arbitrary activation streams and arbitrary rescale schedules.

use anc_decay::{ActivenessStore, DecayClock, RawActivations, Rescalable};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct StreamSpec {
    lambda: f64,
    /// (edge, time-delta, rescale-after?) triples; deltas accumulate.
    events: Vec<(u32, f64, bool)>,
    edges: u32,
}

fn stream_strategy() -> impl Strategy<Value = StreamSpec> {
    (1u32..8, 0.0f64..2.0, prop::collection::vec((0u32..8, 0.0f64..5.0, any::<bool>()), 0..64))
        .prop_map(|(edges, lambda, mut events)| {
            for ev in &mut events {
                ev.0 %= edges;
            }
            StreamSpec { lambda, events, edges }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Anchored activeness ≡ Eq. 1 under arbitrary streams and rescales.
    #[test]
    fn anchored_equals_raw(spec in stream_strategy()) {
        let mut clock = DecayClock::new(spec.lambda);
        let mut store = ActivenessStore::new(spec.edges as usize, 0.0);
        let mut raw = RawActivations::new(spec.edges as usize, spec.lambda);
        let mut t = 0.0f64;
        for &(e, dt, rescale) in &spec.events {
            t += dt;
            clock.advance_to(t);
            store.activate(e, &clock);
            clock.note_activation();
            raw.activate(e, t);
            if rescale || clock.needs_rescale() {
                let g = clock.take_rescale();
                store.rescale(g);
            }
            for edge in 0..spec.edges {
                let fast = store.current(edge, &clock);
                let slow = raw.activeness_at(edge, t);
                prop_assert!(
                    (fast - slow).abs() <= 1e-8 * (1.0 + slow.abs()),
                    "edge {} at t={}: fast {} raw {}", edge, t, fast, slow
                );
            }
        }
    }

    /// Activeness is always non-negative and monotone under activation.
    #[test]
    fn activation_increases_activeness(spec in stream_strategy()) {
        let mut clock = DecayClock::new(spec.lambda);
        let mut store = ActivenessStore::new(spec.edges as usize, 0.0);
        let mut t = 0.0f64;
        for &(e, dt, _) in &spec.events {
            t += dt;
            clock.advance_to(t);
            let before = store.current(e, &clock);
            store.activate(e, &clock);
            let after = store.current(e, &clock);
            prop_assert!(after >= before);
            prop_assert!((after - before - 1.0).abs() < 1e-6,
                "a unit activation must raise true activeness by exactly 1");
        }
    }

    /// Initial activeness decays exponentially and never goes negative.
    #[test]
    fn pure_decay_is_exponential(lambda in 0.0f64..2.0, t in 0.0f64..50.0) {
        let mut clock = DecayClock::new(lambda);
        let store = ActivenessStore::new(1, 1.0);
        clock.advance_to(t);
        let expect = (-lambda * t).exp();
        let got = store.current(0, &clock);
        prop_assert!((got - expect).abs() < 1e-10);
        prop_assert!(got >= 0.0);
    }
}
