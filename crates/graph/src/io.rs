//! Plain-text edge-list serialization.
//!
//! Format: one `u v` pair per line (whitespace separated, `#`-prefixed
//! comment lines ignored) — the same format as the SNAP datasets the paper
//! uses, so real data can be dropped in when available.

use std::io::{BufRead, Write};

use crate::{Graph, GraphBuilder, NodeId};

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads an edge list; node ids may be arbitrary `u64`s and are remapped to a
/// dense `0..n` range (first-appearance order). Returns the graph and the
/// original id of each dense node.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<(Graph, Vec<u64>), ParseError> {
    let mut remap = std::collections::HashMap::<u64, NodeId>::new();
    let mut original = Vec::<u64>::new();
    let mut edges = Vec::<(NodeId, NodeId)>::new();
    let intern =
        |raw: u64, original: &mut Vec<u64>, remap: &mut std::collections::HashMap<u64, NodeId>| {
            *remap.entry(raw).or_insert_with(|| {
                original.push(raw);
                (original.len() - 1) as NodeId
            })
        };
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(ParseError::Malformed { line: i + 1, content: trimmed.to_string() }),
        };
        let (pa, pb) = match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(pa), Ok(pb)) => (pa, pb),
            _ => return Err(ParseError::Malformed { line: i + 1, content: trimmed.to_string() }),
        };
        let u = intern(pa, &mut original, &mut remap);
        let v = intern(pb, &mut original, &mut remap);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::with_capacity(original.len(), edges.len());
    for (u, v) in edges {
        if u != v {
            b.add_edge(u, v);
        }
    }
    Ok((b.build(), original))
}

/// Writes the graph as a `u v` edge list (canonical `u < v`, one per line).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# nodes {} edges {}", g.n(), g.m())?;
    for (_, u, v) in g.iter_edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = crate::gen::erdos_renyi(50, 120, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, orig) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.m(), g.m());
        // Remap may reorder ids; edge multiset over original ids must match.
        let mut e1: Vec<(u64, u64)> =
            g.iter_edges().map(|(_, u, v)| (u as u64, v as u64)).collect();
        let mut e2: Vec<(u64, u64)> = g2
            .iter_edges()
            .map(|(_, u, v)| {
                let (a, b) = (orig[u as usize], orig[v as usize]);
                (a.min(b), a.max(b))
            })
            .collect();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# comment\n\n% another\n0 1\n1 2\n";
        let (g, _) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn sparse_ids_are_remapped() {
        let text = "100 200\n200 3000\n";
        let (g, orig) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(orig, vec![100, 200, 3000]);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn self_loops_dropped() {
        let text = "0 0\n0 1\n";
        let (g, _) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
    }
}
