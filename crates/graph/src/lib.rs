//! # anc-graph
//!
//! Static graph substrate for *Activation Network Clustering* (Feng, Qiao,
//! Cheng — ICDE 2022).
//!
//! An activation network consists of a relatively stable *relation network*
//! `G(V, E)` plus a stream of timestamped activations on existing edges. This
//! crate provides the relation-network half:
//!
//! * [`Graph`] — an immutable, CSR-encoded undirected graph with stable
//!   [`EdgeId`]s, so that per-edge state (activeness, similarity, reciprocal
//!   similarity) can live in dense parallel arrays owned by other crates.
//! * [`GraphBuilder`] — deduplicating, self-loop-stripping construction from
//!   arbitrary edge lists.
//! * [`traverse`] — connected components, BFS, degree orderings.
//! * [`dijkstra`] — single/multi-source shortest paths under arbitrary
//!   positive edge-weight functions (the paper's `f`-based distance,
//!   Section III).
//! * [`algo`] — triangles, clustering coefficients, k-cores (dataset
//!   analysis for the harness).
//! * [`gen`] — deterministic synthetic generators standing in for the paper's
//!   real datasets (see DESIGN.md §3 for the substitution rationale).
//! * [`codec`] — hand-rolled binary codec primitives (varints, CRC-32,
//!   raw-bits floats) plus the delta-encoded CSR topology codec used by the
//!   compact snapshot format (DESIGN.md §11).
//!
//! All randomized components take explicit `u64` seeds; everything in this
//! workspace is reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod codec;
pub mod dijkstra;
pub mod gen;
mod graph;
pub mod io;
pub mod traverse;

pub use graph::{Graph, GraphBuilder};

/// Identifier of a vertex; dense in `0..graph.n()`.
pub type NodeId = u32;

/// Identifier of an undirected edge; dense in `0..graph.m()`.
///
/// Edge ids are stable for the lifetime of a [`Graph`] and are the index into
/// every per-edge state array in the workspace (activeness, similarity, …).
pub type EdgeId = u32;

/// Sentinel for "no node" (used for absent parents/seeds in shortest-path
/// trees).
pub const NO_NODE: NodeId = NodeId::MAX;
