//! CSR-encoded undirected graph with stable edge identifiers.

use crate::{EdgeId, NodeId};

/// An immutable undirected, unweighted graph `G(V, E)` in compressed
/// sparse-row form.
///
/// * Vertices are `0..n` ([`NodeId`]).
/// * Each undirected edge has one stable [`EdgeId`] in `0..m`; the id appears
///   in the adjacency of both endpoints, so per-edge state can be kept in a
///   single dense `Vec` indexed by `EdgeId`.
/// * Neighbor lists are sorted by neighbor id, enabling `O(log deg)` edge
///   lookup and linear-time sorted-merge common-neighbor iteration (used by
///   the active similarity σ, paper Section IV-B).
///
/// The graph is intentionally immutable: the paper's relation network is
/// "relatively stable" and all dynamics happen on *edge state*, not topology.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened neighbor lists, length `2m`, sorted within each node.
    neighbors: Vec<NodeId>,
    /// Edge id parallel to `neighbors`, length `2m`.
    edge_ids: Vec<EdgeId>,
    /// Canonical endpoints `(min, max)` per edge id, length `m`.
    endpoints: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph from an edge list over `n` vertices.
    ///
    /// Self-loops and duplicate edges are removed (duplicates keep a single
    /// edge id). Endpoints must be `< n`.
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn m(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge ids parallel to [`Graph::neighbors`].
    #[inline]
    pub fn neighbor_edge_ids(&self, v: NodeId) -> &[EdgeId] {
        &self.edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterates `(neighbor, edge_id)` pairs of `v` in neighbor-sorted order.
    #[inline]
    pub fn edges_of(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.neighbors(v).iter().copied().zip(self.neighbor_edge_ids(v).iter().copied())
    }

    /// Canonical endpoints `(min, max)` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e as usize]
    }

    /// Looks up the edge id of `(u, v)`, if the edge exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u >= self.n() as NodeId || v >= self.n() as NodeId {
            return None;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let nbrs = self.neighbors(a);
        nbrs.binary_search(&b).ok().map(|i| self.edge_ids[self.offsets[a as usize] + i])
    }

    /// Whether edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Given one endpoint of `e`, returns the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints[e as usize];
        if v == a {
            b
        } else {
            debug_assert_eq!(v, b, "node {v} is not an endpoint of edge {e}");
            a
        }
    }

    /// Iterates all edges as `(edge_id, u, v)` with `u < v`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId)> + '_ {
        self.endpoints.iter().enumerate().map(|(e, &(u, v))| (e as EdgeId, u, v))
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Total bytes of heap memory used by the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
            + self.edge_ids.len() * std::mem::size_of::<EdgeId>()
            + self.endpoints.len() * std::mem::size_of::<(NodeId, NodeId)>()
    }

    /// Number of common neighbors of `u` and `v` via sorted merge, `O(deg u + deg v)`.
    pub fn common_neighbor_count(&self, u: NodeId, v: NodeId) -> usize {
        let mut count = 0;
        let (mut i, mut j) = (0, 0);
        let (nu, nv) = (self.neighbors(u), self.neighbors(v));
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// Calls `f(w, eid_uw, eid_vw)` for every common neighbor `w` of `u` and
    /// `v`, in increasing `w`, via sorted merge.
    pub fn for_common_neighbors<F: FnMut(NodeId, EdgeId, EdgeId)>(
        &self,
        u: NodeId,
        v: NodeId,
        mut f: F,
    ) {
        let (nu, eu) = (self.neighbors(u), self.neighbor_edge_ids(u));
        let (nv, ev) = (self.neighbors(v), self.neighbor_edge_ids(v));
        let (mut i, mut j) = (0, 0);
        while i < nu.len() && j < nv.len() {
            match nu[i].cmp(&nv[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    f(nu[i], eu[i], ev[j]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// Incremental builder for [`Graph`].
///
/// Accepts edges in any order and any orientation; removes self-loops and
/// duplicates at [`GraphBuilder::build`] time.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Creates a builder expecting roughly `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self { n, edges: Vec::with_capacity(m) }
    }

    /// Number of (not yet deduplicated) edges added.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge. Self-loops are silently dropped.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        if u == v {
            return;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Finalizes into a CSR [`Graph`]. Duplicate edges collapse to one id.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        let n = self.n;

        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        offsets.push(0usize);
        for d in &degrees {
            total += d;
            offsets.push(total);
        }

        let mut neighbors = vec![0 as NodeId; 2 * m];
        let mut edge_ids = vec![0 as EdgeId; 2 * m];
        let mut cursor = offsets[..n].to_vec();
        // `self.edges` is sorted by (u, v); inserting in this order keeps each
        // node's neighbor slice sorted for the `u`-side. For the `v`-side the
        // incoming `u` values also arrive in increasing order per `v` because
        // the outer sort is by `u` first — but interleaved with the node's own
        // `u`-side entries, so a final per-node sort is still required.
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            let cu = cursor[u as usize];
            neighbors[cu] = v;
            edge_ids[cu] = e as EdgeId;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            neighbors[cv] = u;
            edge_ids[cv] = e as EdgeId;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let (lo, hi) = (offsets[v], offsets[v + 1]);
            // Sort the slice pair (neighbors, edge_ids) by neighbor id.
            let mut pairs: Vec<(NodeId, EdgeId)> =
                neighbors[lo..hi].iter().copied().zip(edge_ids[lo..hi].iter().copied()).collect();
            pairs.sort_unstable_by_key(|&(w, _)| w);
            for (i, (w, e)) in pairs.into_iter().enumerate() {
                neighbors[lo + i] = w;
                edge_ids[lo + i] = e;
            }
        }

        Graph { offsets, neighbors, edge_ids, endpoints: self.edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 0-2, 2-3
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbors_sorted_and_edge_ids_consistent() {
        let g = triangle_plus_tail();
        for v in 0..g.n() as NodeId {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "neighbors of {v} not sorted");
            for (w, e) in g.edges_of(v) {
                let (a, b) = g.endpoints(e);
                assert!((a, b) == (v.min(w), v.max(w)));
            }
        }
    }

    #[test]
    fn edge_lookup() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_id(2, 3), g.edge_id(3, 2));
        let e = g.edge_id(1, 2).unwrap();
        assert_eq!(g.other_endpoint(e, 1), 2);
        assert_eq!(g.other_endpoint(e, 2), 1);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn common_neighbors() {
        let g = triangle_plus_tail();
        assert_eq!(g.common_neighbor_count(0, 1), 1); // node 2
        assert_eq!(g.common_neighbor_count(0, 3), 1); // node 2
        assert_eq!(g.common_neighbor_count(1, 3), 1); // node 2
        let mut seen = vec![];
        g.for_common_neighbors(0, 1, |w, e_uw, e_vw| {
            seen.push((w, e_uw, e_vw));
        });
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, 2);
        assert_eq!(seen[0].1, g.edge_id(0, 2).unwrap());
        assert_eq!(seen[0].2, g.edge_id(1, 2).unwrap());
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = Graph::from_edges(1, &[]);
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn iter_edges_canonical() {
        let g = triangle_plus_tail();
        for (e, u, v) in g.iter_edges() {
            assert!(u < v);
            assert_eq!(g.edge_id(u, v), Some(e));
        }
        assert_eq!(g.iter_edges().count(), g.m());
    }

    #[test]
    fn memory_accounting_positive() {
        let g = triangle_plus_tail();
        assert!(g.memory_bytes() > 0);
    }
}
