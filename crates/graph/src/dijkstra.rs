//! Shortest paths under arbitrary positive edge-weight functions.
//!
//! The paper's distance metric `M_t` (Section IV-C) is the pairwise shortest
//! distance under edge weight `1/S_t`. This module provides the generic
//! machinery: single- and multi-source Dijkstra producing distances, parent
//! pointers (shortest-path trees) and, for the multi-source case, the *seed*
//! of every node — exactly the Voronoi-partition building block of the
//! pyramids index (Section V-A).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::{EdgeId, Graph, NodeId, NO_NODE};

/// Distance value; `f64::INFINITY` marks unreachable nodes.
pub type Dist = f64;

/// A min-heap entry ordered by distance (then node id for determinism).
#[derive(Copy, Clone, Debug)]
pub struct HeapEntry {
    /// Tentative distance of `node`.
    pub dist: Dist,
    /// The node.
    pub node: NodeId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance. `total_cmp` gives a total
        // order even for NaN/-0.0 (neither is ever inserted, but the
        // ordering must not silently degrade if that changes).
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

/// Result of a (multi-source) Dijkstra run.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    /// `dist[v]`: shortest distance from the closest source to `v`.
    pub dist: Vec<Dist>,
    /// `parent[v]`: predecessor of `v` on its shortest path ([`NO_NODE`] for
    /// sources and unreachable nodes).
    pub parent: Vec<NodeId>,
    /// `seed[v]`: the source that `v` was reached from ([`NO_NODE`] if
    /// unreachable). For a single source this is constant over reached nodes.
    pub seed: Vec<NodeId>,
}

/// Runs Dijkstra from `sources` (treated as one super-source) under the edge
/// weight function `weight(e)`.
///
/// Weights must be positive and finite; this is guaranteed by construction in
/// `anc-core` where weights are `1/S_t` with `S_t` clamped to a positive
/// floor.
///
/// Complexity `O((n + m) log n)`.
pub fn multi_source_dijkstra<W>(g: &Graph, sources: &[NodeId], weight: W) -> ShortestPaths
where
    W: Fn(EdgeId) -> Dist,
{
    let n = g.n();
    let mut sp = ShortestPaths {
        dist: Vec::with_capacity(n),
        parent: Vec::with_capacity(n),
        seed: Vec::with_capacity(n),
    };
    let mut heap = BinaryHeap::with_capacity(sources.len().max(16));
    multi_source_dijkstra_into(g, sources, weight, &mut sp, &mut heap);
    sp
}

/// Pooled-buffer core of [`multi_source_dijkstra`]: clears and refills the
/// caller's `sp` vectors and `heap` instead of allocating. The repeated
/// index-rebuild paths (`Pyramids::rebuild`) run through here so that
/// rebuilding per level reuses the partition's own buffers.
pub fn multi_source_dijkstra_into<W>(
    g: &Graph,
    sources: &[NodeId],
    weight: W,
    sp: &mut ShortestPaths,
    heap: &mut BinaryHeap<HeapEntry>,
) where
    W: Fn(EdgeId) -> Dist,
{
    let n = g.n();
    sp.dist.clear();
    sp.dist.resize(n, Dist::INFINITY);
    sp.parent.clear();
    sp.parent.resize(n, NO_NODE);
    sp.seed.clear();
    sp.seed.resize(n, NO_NODE);
    heap.clear();

    for &s in sources {
        sp.dist[s as usize] = 0.0;
        sp.seed[s as usize] = s;
        heap.push(HeapEntry { dist: 0.0, node: s });
    }

    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if d > sp.dist[v as usize] {
            continue; // stale entry
        }
        for (w, e) in g.edges_of(v) {
            let nd = d + weight(e);
            if nd < sp.dist[w as usize] {
                sp.dist[w as usize] = nd;
                sp.parent[w as usize] = v;
                sp.seed[w as usize] = sp.seed[v as usize];
                heap.push(HeapEntry { dist: nd, node: w });
            }
        }
    }
}

/// Single-source convenience wrapper around [`multi_source_dijkstra`].
pub fn dijkstra<W>(g: &Graph, source: NodeId, weight: W) -> ShortestPaths
where
    W: Fn(EdgeId) -> Dist,
{
    multi_source_dijkstra(g, &[source], weight)
}

/// Shortest distance between a single pair, with early termination once the
/// target is settled. Returns `f64::INFINITY` if unreachable.
pub fn pair_distance<W>(g: &Graph, source: NodeId, target: NodeId, weight: W) -> Dist
where
    W: Fn(EdgeId) -> Dist,
{
    if source == target {
        return 0.0;
    }
    let n = g.n();
    let mut dist = vec![Dist::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source });
    while let Some(HeapEntry { dist: d, node: v }) = heap.pop() {
        if v == target {
            return d;
        }
        if d > dist[v as usize] {
            continue;
        }
        for (w, e) in g.edges_of(v) {
            let nd = d + weight(e);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(HeapEntry { dist: nd, node: w });
            }
        }
    }
    Dist::INFINITY
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Weighted diamond: 0-1 (1), 0-2 (4), 1-2 (1), 2-3 (1), 1-3 (5).
    fn diamond() -> (Graph, Vec<f64>) {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)]);
        let mut w = vec![0.0; g.m()];
        w[g.edge_id(0, 1).unwrap() as usize] = 1.0;
        w[g.edge_id(0, 2).unwrap() as usize] = 4.0;
        w[g.edge_id(1, 2).unwrap() as usize] = 1.0;
        w[g.edge_id(2, 3).unwrap() as usize] = 1.0;
        w[g.edge_id(1, 3).unwrap() as usize] = 5.0;
        (g, w)
    }

    #[test]
    fn single_source() {
        let (g, w) = diamond();
        let sp = dijkstra(&g, 0, |e| w[e as usize]);
        assert_eq!(sp.dist, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(sp.parent[1], 0);
        assert_eq!(sp.parent[2], 1);
        assert_eq!(sp.parent[3], 2);
        assert!(sp.seed.iter().all(|&s| s == 0));
    }

    #[test]
    fn multi_source_voronoi() {
        // Path 0-1-2-3-4, unit weights, sources {0, 4}.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sp = multi_source_dijkstra(&g, &[0, 4], |_| 1.0);
        assert_eq!(sp.dist, vec![0.0, 1.0, 2.0, 1.0, 0.0]);
        assert_eq!(sp.seed[0], 0);
        assert_eq!(sp.seed[1], 0);
        assert_eq!(sp.seed[3], 4);
        assert_eq!(sp.seed[4], 4);
        // Node 2 is equidistant; either seed is valid but must match parent chain.
        let s2 = sp.seed[2];
        assert!(s2 == 0 || s2 == 4);
        let p2 = sp.parent[2];
        assert_eq!(sp.seed[p2 as usize], s2);
    }

    #[test]
    fn unreachable_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let sp = dijkstra(&g, 0, |_| 1.0);
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.seed[2], NO_NODE);
        assert_eq!(sp.parent[2], NO_NODE);
    }

    #[test]
    fn pair_distance_matches_full() {
        let (g, w) = diamond();
        for t in 0..4u32 {
            let full = dijkstra(&g, 0, |e| w[e as usize]);
            assert_eq!(pair_distance(&g, 0, t, |e| w[e as usize]), full.dist[t as usize]);
        }
        let g2 = Graph::from_edges(3, &[(0, 1)]);
        assert!(pair_distance(&g2, 0, 2, |_| 1.0).is_infinite());
    }

    #[test]
    fn parent_pointers_form_tree_consistent_with_dist() {
        let (g, w) = diamond();
        let sp = dijkstra(&g, 0, |e| w[e as usize]);
        for v in 1..4u32 {
            let p = sp.parent[v as usize];
            let e = g.edge_id(p, v).unwrap();
            let diff: f64 = sp.dist[v as usize] - sp.dist[p as usize] - w[e as usize];
            assert!(diff.abs() < 1e-12);
        }
    }
}
