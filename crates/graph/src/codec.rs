//! Compact binary codec primitives shared by the persistence layer.
//!
//! Everything here is hand-rolled (the workspace is offline): LEB128
//! varints, zigzag signed varints, raw little-endian IEEE-754 floats, a
//! table-driven CRC-32 (IEEE/ISO-HDLC polynomial, the same one zlib and
//! PNG use), and a bounds-checked [`Reader`] over a byte slice. The
//! snapshot and WAL formats in `anc-core::persist` are built entirely from
//! these primitives, plus [`encode_graph`]/[`decode_graph`] which
//! delta-encode the CSR topology from the canonical sorted edge list.
//!
//! Encoders append to a `Vec<u8>`; decoders read from a [`Reader`] and
//! return a typed [`CodecError`] on malformed input — no panics on any
//! byte sequence.

use crate::{Graph, GraphBuilder, NodeId};

/// Typed decode failure. Carried upward into
/// `anc_core::persist::RestoreError::Codec`-style variants by callers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value being decoded was complete.
    UnexpectedEof {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// A varint ran past 10 bytes or overflowed the target width.
    VarintOverflow {
        /// Byte offset at which decoding of the varint began.
        offset: usize,
    },
    /// A decoded value was structurally invalid for its context.
    Invalid {
        /// Human-readable description of the violated constraint.
        what: String,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            CodecError::VarintOverflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            CodecError::Invalid { what } => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table generated at compile time
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`. Matches zlib's `crc32(0, data)`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        // audit:allow(lossy-persist) -- widening: b is a u8 byte lifted to u32
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoders (append to Vec<u8>)
// ---------------------------------------------------------------------------

/// Appends one byte.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a fixed-width little-endian `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a fixed-width little-endian `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an LEB128 varint (1–10 bytes, small values small).
#[inline]
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        // audit:allow(lossy-persist) -- deliberate: the low 7 bits of each LEB128 group
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    // audit:allow(lossy-persist) -- loop invariant v < 0x80: the cast is value-preserving
    out.push(v as u8);
}

/// Appends a zigzag-mapped signed varint (`0 → 0, -1 → 1, 1 → 2, …`).
#[inline]
pub fn put_ivarint(out: &mut Vec<u8>, v: i64) {
    put_uvarint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Appends an `f64` as its raw IEEE-754 bits, little-endian. Exact: the
/// round-trip is bit-identical, including NaN payloads and signed zeros.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends an `f32` as its raw IEEE-754 bits, little-endian.
#[inline]
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Bounds-checked cursor over a byte slice; every read either advances or
/// returns a typed [`CodecError`].
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor is at the end of the input.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { offset: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a fixed-width little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a fixed-width little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an LEB128 varint.
    pub fn uvarint(&mut self) -> Result<u64, CodecError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8().map_err(|_| CodecError::UnexpectedEof { offset: start })?;
            if shift == 63 && b > 1 {
                return Err(CodecError::VarintOverflow { offset: start });
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow { offset: start });
            }
        }
    }

    /// Reads a varint expected to fit in `usize`.
    pub fn uvarint_len(&mut self) -> Result<usize, CodecError> {
        let start = self.pos;
        let v = self.uvarint()?;
        usize::try_from(v).map_err(|_| CodecError::VarintOverflow { offset: start })
    }

    /// Reads a zigzag-mapped signed varint.
    pub fn ivarint(&mut self) -> Result<i64, CodecError> {
        let z = self.uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a raw-bits little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a raw-bits little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }
}

// ---------------------------------------------------------------------------
// Graph topology codec
// ---------------------------------------------------------------------------

/// Appends the graph topology, delta-encoded.
///
/// Layout: `uvarint n`, `uvarint m`, then per edge in canonical order
/// (edge id order, which is lexicographic `(u, v)` with `u < v`):
/// `uvarint Δu` (gap from the previous edge's `u`), then `uvarint v-u-1`
/// when `u` advanced else `uvarint Δv-1` (gap from the previous `v`; `v`
/// is strictly increasing within a `u` run). Neighbor gaps on scale-free
/// and community graphs are small, so most edges cost 2–3 bytes against
/// the 16 the raw endpoint pair would take.
pub fn encode_graph(g: &Graph, out: &mut Vec<u8>) {
    put_uvarint(out, g.n() as u64);
    put_uvarint(out, g.m() as u64);
    let mut prev_u: u64 = 0;
    let mut prev_v: u64 = 0;
    for (_, u, v) in g.iter_edges() {
        let (u, v) = (u as u64, v as u64);
        let du = u - prev_u;
        put_uvarint(out, du);
        if du > 0 {
            put_uvarint(out, v - u - 1);
        } else {
            put_uvarint(out, v - prev_v - 1);
        }
        prev_u = u;
        prev_v = v;
    }
}

/// Decodes a graph written by [`encode_graph`].
///
/// The edge list is reconstructed in canonical order and rebuilt through
/// [`GraphBuilder`], so the resulting CSR arrays are identical to the
/// original's (edge ids are positions in the sorted, deduplicated edge
/// list — an invariant of the builder).
pub fn decode_graph(r: &mut Reader<'_>) -> Result<Graph, CodecError> {
    let n = r.uvarint_len()?;
    let m = r.uvarint_len()?;
    if n > NodeId::MAX as usize {
        return Err(CodecError::Invalid { what: format!("node count {n} exceeds NodeId range") });
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut prev_u: u64 = 0;
    let mut prev_v: u64 = 0;
    for e in 0..m {
        let du = r.uvarint()?;
        let u = prev_u + du;
        let v = if du > 0 { u + 1 + r.uvarint()? } else { prev_v + 1 + r.uvarint()? };
        if v as usize >= n {
            return Err(CodecError::Invalid {
                what: format!("edge {e}: endpoint {v} out of range for n = {n}"),
            });
        }
        b.add_edge(u as NodeId, v as NodeId);
        prev_u = u;
        prev_v = v;
    }
    let g = b.build();
    if g.m() != m {
        return Err(CodecError::Invalid {
            what: format!("decoded edge list collapsed to {} edges, header said {m}", g.m()),
        });
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn varint_roundtrip_edges() {
        let cases = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for &v in &cases {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.uvarint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn ivarint_roundtrip() {
        for &v in &[0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.ivarint().unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes can never be a valid u64 varint.
        let buf = [0xFFu8; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.uvarint(), Err(CodecError::VarintOverflow { .. })));
    }

    #[test]
    fn truncated_reads_are_eof() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut r = Reader::new(&buf[..5]);
        assert!(matches!(r.u64(), Err(CodecError::UnexpectedEof { offset: 0 })));
        let mut r = Reader::new(&[0x80u8]);
        assert!(matches!(r.uvarint(), Err(CodecError::UnexpectedEof { .. })));
    }

    #[test]
    fn float_bits_exact() {
        for &v in &[0.0f64, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn graph_roundtrip_identical_csr() {
        let g = crate::gen::barabasi_albert(500, 3, 7);
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        let mut r = Reader::new(&buf);
        let h = decode_graph(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        for v in 0..g.n() as NodeId {
            assert_eq!(g.neighbors(v), h.neighbors(v));
            assert_eq!(g.neighbor_edge_ids(v), h.neighbor_edge_ids(v));
        }
        for (e, u, v) in g.iter_edges() {
            assert_eq!(h.endpoints(e), (u, v));
        }
        // Far smaller than the 16-byte raw pair encoding.
        assert!(buf.len() < g.m() * 8, "{} bytes for m = {}", buf.len(), g.m());
    }

    #[test]
    fn graph_decode_rejects_bad_endpoint() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        // Corrupt the node count down so edge endpoints fall out of range.
        let mut r = Reader::new(&buf);
        let _n = r.uvarint().unwrap();
        let rest = buf[r.position()..].to_vec();
        let mut bad = Vec::new();
        put_uvarint(&mut bad, 2); // n = 2, but edge (1, 2) needs n >= 3
        bad.extend_from_slice(&rest);
        let mut r = Reader::new(&bad);
        assert!(matches!(decode_graph(&mut r), Err(CodecError::Invalid { .. })));
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::from_edges(0, &[]);
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        let mut r = Reader::new(&buf);
        let h = decode_graph(&mut r).unwrap();
        assert_eq!(h.n(), 0);
        assert_eq!(h.m(), 0);
    }
}
