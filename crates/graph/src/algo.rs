//! Structural graph algorithms used for dataset analysis and by the
//! evaluation harness: triangle counting, clustering coefficients, k-core
//! decomposition and degeneracy ordering.

use crate::{Graph, NodeId};

/// Number of triangles through each node (each triangle counted once per
/// corner). `O(Σ_v deg(v)²)` via neighborhood marking.
pub fn triangles_per_node(g: &Graph) -> Vec<u64> {
    let n = g.n();
    let mut count = vec![0u64; n];
    let mut mark = vec![u32::MAX; n];
    for v in 0..n as NodeId {
        for &w in g.neighbors(v) {
            mark[w as usize] = v;
        }
        for &w in g.neighbors(v) {
            if w < v {
                continue; // handle each (v, w) pair once
            }
            for &x in g.neighbors(w) {
                // Triangle v-w-x with x > w keeps each triangle unique.
                if x > w && mark[x as usize] == v {
                    count[v as usize] += 1;
                    count[w as usize] += 1;
                    count[x as usize] += 1;
                }
            }
        }
    }
    count
}

/// Total number of distinct triangles.
pub fn triangle_count(g: &Graph) -> u64 {
    triangles_per_node(g).iter().sum::<u64>() / 3
}

/// Local clustering coefficient of each node
/// (`2·tri(v) / (deg(v)·(deg(v)−1))`; 0 for degree < 2).
pub fn local_clustering(g: &Graph) -> Vec<f64> {
    triangles_per_node(g)
        .into_iter()
        .enumerate()
        .map(|(v, t)| {
            let d = g.degree(v as NodeId) as u64;
            if d < 2 {
                0.0
            } else {
                2.0 * t as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Mean local clustering coefficient (Watts–Strogatz definition).
pub fn average_clustering(g: &Graph) -> f64 {
    if g.n() == 0 {
        return 0.0;
    }
    local_clustering(g).iter().sum::<f64>() / g.n() as f64
}

/// K-core decomposition: `core[v]` is the largest `k` such that `v` belongs
/// to a subgraph of minimum degree `k`. Linear-time bucket peeling
/// (Batagelj–Zaveršnik).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as NodeId)).collect();
    let max_deg = deg.iter().max().copied().unwrap_or(0);
    // Bucket sort by degree.
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &deg {
        bins[d] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as NodeId; n];
    for v in 0..n {
        pos[v] = bins[deg[v]];
        vert[pos[v]] = v as NodeId;
        bins[deg[v]] += 1;
    }
    // Restore bin starts.
    for d in (1..=max_deg + 1).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = vert[i];
        core[v as usize] = deg[v as usize] as u32;
        for &u in g.neighbors(v) {
            let (du, dv) = (deg[u as usize], deg[v as usize]);
            if du > dv {
                // Move u one bucket down: swap with the first vertex of its
                // current bucket.
                let pu = pos[u as usize];
                let pw = bins[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[u as usize] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                deg[u as usize] -= 1;
            }
        }
    }
    core
}

/// The graph's degeneracy (maximum core number).
pub fn degeneracy(g: &Graph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::connected_caveman;
    use crate::Graph;

    #[test]
    fn triangle_counting() {
        // One triangle plus a tail.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(triangle_count(&g), 1);
        assert_eq!(triangles_per_node(&g), vec![1, 1, 1, 0]);
        // K4 has 4 triangles, 3 per node.
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangle_count(&k4), 4);
        assert_eq!(triangles_per_node(&k4), vec![3, 3, 3, 3]);
    }

    #[test]
    fn clustering_coefficients() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cc = local_clustering(&g);
        assert!((cc[0] - 1.0).abs() < 1e-12);
        assert!((cc[2] - 2.0 / 6.0).abs() < 1e-12); // deg 3, one triangle
        assert_eq!(cc[3], 0.0);
        // Cliques have coefficient 1 everywhere.
        let lg = connected_caveman(2, 5);
        let cc = local_clustering(&lg.graph);
        let bridgeless: Vec<f64> =
            (0..lg.graph.n()).filter(|&v| lg.graph.degree(v as u32) == 4).map(|v| cc[v]).collect();
        assert!(bridgeless.iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn cores_of_clique_and_tree() {
        // K5: every node in the 4-core.
        let mut edges = vec![];
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let k5 = Graph::from_edges(5, &edges);
        assert_eq!(core_numbers(&k5), vec![4; 5]);
        assert_eq!(degeneracy(&k5), 4);
        // A path: 1-core everywhere (endpoints included).
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_numbers(&path), vec![1; 4]);
    }

    #[test]
    fn core_peels_pendant_vertices() {
        // Triangle with a pendant: pendant is 1-core, triangle 2-core.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn caveman_has_high_clustering() {
        let lg = connected_caveman(4, 6);
        assert!(average_clustering(&lg.graph) > 0.8);
    }
}
