//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 17 real graphs (SNAP / network-repository). Those
//! are not available offline, so every experiment in this workspace runs on
//! synthetic stand-ins produced here (DESIGN.md §3). The generators control
//! the properties that drive the algorithms under study: size, density,
//! degree skew and planted community structure.
//!
//! All generators are seeded and deterministic.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// A graph together with planted ground-truth community labels.
#[derive(Clone, Debug)]
pub struct LabeledGraph {
    /// The generated relation network.
    pub graph: Graph,
    /// `labels[v]` is the planted community of node `v`, dense in
    /// `0..num_communities`.
    pub labels: Vec<u32>,
}

impl LabeledGraph {
    /// Number of distinct planted communities.
    pub fn num_communities(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m as usize + 1)
    }
}

fn rng_for(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform random edges.
///
/// Sampling is by rejection, so `m` must leave the graph reasonably sparse
/// (`m <= n(n-1)/4` is enforced).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    let max = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max / 2 || max <= 2,
        "erdos_renyi: m = {m} too dense for rejection sampling (n = {n})"
    );
    let mut rng = rng_for(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    if n < 2 {
        return b.build();
    }
    while seen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_attach` existing nodes with probability proportional to degree.
///
/// Produces the heavy-tailed degree distributions typical of the paper's
/// social-network datasets.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "barabasi_albert: m_attach must be >= 1");
    assert!(n > m_attach, "barabasi_albert: n must exceed m_attach");
    let mut rng = rng_for(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    // Repeated-node list: node v appears deg(v) times; sampling uniformly
    // from it realizes preferential attachment.
    let mut stubs: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);

    // Seed clique over the first m_attach + 1 nodes.
    let k = m_attach + 1;
    for u in 0..k as NodeId {
        for v in (u + 1)..k as NodeId {
            b.add_edge(u, v);
            stubs.push(u);
            stubs.push(v);
        }
    }
    for v in k as NodeId..n as NodeId {
        // BTreeSet: `targets` is iterated below, and hash-set order would
        // leak SipHash's per-process randomness into the edge insertion
        // order (and thus edge ids) across runs.
        let mut targets = std::collections::BTreeSet::new();
        while targets.len() < m_attach {
            let t = stubs[rng.gen_range(0..stubs.len())];
            targets.insert(t);
        }
        for &t in &targets {
            b.add_edge(v, t);
            stubs.push(v);
            stubs.push(t);
        }
    }
    b.build()
}

/// Configuration for [`planted_partition`].
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Total number of nodes.
    pub n: usize,
    /// Target number of communities.
    pub communities: usize,
    /// Expected *intra*-community degree per node.
    pub avg_intra_degree: f64,
    /// Mixing parameter μ ∈ [0, 1): fraction of a node's edges that leave its
    /// community. μ = 0 gives disjoint clusters; μ → 1 destroys structure.
    pub mixing: f64,
    /// Power-law exponent for community sizes (≈2 gives many small plus a few
    /// large communities, matching real networks per Leskovec et al.). Use 0.0
    /// for equal-sized communities.
    pub size_exponent: f64,
}

impl PlantedConfig {
    /// A reasonable default: `communities ≈ 2√n`, avg intra degree 8, μ=0.2,
    /// power-law community sizes. Matches the paper's ground-truth setup of
    /// `2√n` clusters on activation graphs (Section VI-A).
    pub fn default_for(n: usize) -> Self {
        Self {
            n,
            communities: (2.0 * (n as f64).sqrt()).round().max(1.0) as usize,
            avg_intra_degree: 8.0,
            mixing: 0.2,
            size_exponent: 2.0,
        }
    }
}

/// Planted-partition / LFR-lite community benchmark.
///
/// Nodes are split into `communities` groups (power-law sizes when
/// `size_exponent > 0`). Each node receives `avg_intra_degree` expected edges
/// inside its community and a `mixing / (1 - mixing)` proportion of
/// cross-community edges, wired by uniform endpoint sampling.
pub fn planted_partition(cfg: &PlantedConfig, seed: u64) -> LabeledGraph {
    assert!(cfg.n > 0 && cfg.communities > 0);
    assert!((0.0..1.0).contains(&cfg.mixing), "mixing must be in [0, 1)");
    let mut rng = rng_for(seed);
    let c = cfg.communities.min(cfg.n);

    // --- Community sizes -------------------------------------------------
    let mut sizes = vec![0usize; c];
    if cfg.size_exponent > 0.0 {
        // Sample raw power-law weights and scale to n, ensuring >= 2 each.
        let mut weights = vec![0.0f64; c];
        for w in &mut weights {
            let u: f64 = rng.gen_range(0.0001..1.0);
            *w = u.powf(-1.0 / cfg.size_exponent);
        }
        let total: f64 = weights.iter().sum();
        let mut assigned = 0usize;
        for i in 0..c {
            let s = ((weights[i] / total) * cfg.n as f64).floor().max(1.0) as usize;
            sizes[i] = s;
            assigned += s;
        }
        // Distribute the remainder (or trim overshoot) round-robin.
        let mut i = 0;
        while assigned < cfg.n {
            sizes[i % c] += 1;
            assigned += 1;
            i += 1;
        }
        while assigned > cfg.n {
            let j = i % c;
            if sizes[j] > 1 {
                sizes[j] -= 1;
                assigned -= 1;
            }
            i += 1;
        }
    } else {
        for (i, size) in sizes.iter_mut().enumerate() {
            *size = cfg.n / c + usize::from(i < cfg.n % c);
        }
    }

    // --- Node → community assignment (shuffled node ids so that node id
    //     carries no community information) -------------------------------
    let mut perm: Vec<NodeId> = (0..cfg.n as NodeId).collect();
    perm.shuffle(&mut rng);
    let mut labels = vec![0u32; cfg.n];
    let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(c);
    let mut cursor = 0usize;
    for (ci, &sz) in sizes.iter().enumerate() {
        let group: Vec<NodeId> = perm[cursor..cursor + sz].to_vec();
        for &v in &group {
            labels[v as usize] = ci as u32;
        }
        members.push(group);
        cursor += sz;
    }

    // --- Intra-community edges -------------------------------------------
    let mut b = GraphBuilder::with_capacity(cfg.n, (cfg.n as f64 * cfg.avg_intra_degree) as usize);
    for group in &members {
        let s = group.len();
        if s < 2 {
            continue;
        }
        // Expected intra edges: s * avg_intra_degree / 2, capped at the clique size.
        let want = (((s as f64) * cfg.avg_intra_degree / 2.0) as usize).min(s * (s - 1) / 2);
        if want >= s * (s - 1) / 2 {
            for i in 0..s {
                for j in (i + 1)..s {
                    b.add_edge(group[i], group[j]);
                }
            }
        } else {
            // Spanning chain first so every community is internally connected,
            // then random fill.
            for w in group.windows(2) {
                b.add_edge(w[0], w[1]);
            }
            let extra = want.saturating_sub(s - 1);
            for _ in 0..extra {
                let i = rng.gen_range(0..s);
                let j = rng.gen_range(0..s);
                if i != j {
                    b.add_edge(group[i], group[j]);
                }
            }
        }
    }

    // --- Inter-community edges -------------------------------------------
    // Each node gets on average avg_intra_degree * mixing / (1 - mixing)
    // cross edges so that the realized mixing ratio is ≈ cfg.mixing.
    if c > 1 && cfg.mixing > 0.0 {
        let per_node = cfg.avg_intra_degree * cfg.mixing / (1.0 - cfg.mixing);
        let total_cross = (cfg.n as f64 * per_node / 2.0) as usize;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < total_cross && attempts < total_cross * 20 {
            attempts += 1;
            let u = rng.gen_range(0..cfg.n as NodeId);
            let v = rng.gen_range(0..cfg.n as NodeId);
            if u != v && labels[u as usize] != labels[v as usize] {
                b.add_edge(u, v);
                placed += 1;
            }
        }
    }

    LabeledGraph { graph: b.build(), labels }
}

/// Watts–Strogatz small-world graph: a ring lattice (`k` nearest neighbors
/// on each side) with each edge rewired to a uniform random endpoint with
/// probability `beta`. High clustering with short paths — the regime where
/// shortest-distance propagation differs most from hop counting.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 1 && 2 * k < n, "watts_strogatz: need 1 <= k < n/2");
    assert!((0.0..=1.0).contains(&beta));
    let mut rng = rng_for(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k);
    let mut existing = std::collections::HashSet::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k);
    for v in 0..n {
        for j in 1..=k {
            let w = (v + j) % n;
            let key = ((v.min(w)) as NodeId, (v.max(w)) as NodeId);
            if existing.insert(key) {
                edges.push(key);
            }
        }
    }
    for (u, v) in edges {
        if rng.gen_bool(beta) {
            // Rewire the far endpoint.
            let mut tries = 0;
            loop {
                let w = rng.gen_range(0..n as NodeId);
                let key = (u.min(w), u.max(w));
                if w != u && !existing.contains(&key) {
                    existing.remove(&(u.min(v), u.max(v)));
                    existing.insert(key);
                    b.add_edge(u, w);
                    break;
                }
                tries += 1;
                if tries > 32 {
                    b.add_edge(u, v); // dense corner case: keep the original
                    break;
                }
            }
        } else {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Power-law degree-sequence graph via the configuration model (simplified:
/// stubs matched uniformly, self-loops and duplicates dropped). Gives the
/// heavy-tailed degree distributions of the paper's social graphs without
/// planted communities — used for stress tests and efficiency experiments.
pub fn powerlaw_configuration(n: usize, exponent: f64, min_degree: usize, seed: u64) -> Graph {
    assert!(exponent > 1.0, "powerlaw exponent must exceed 1");
    assert!(min_degree >= 1);
    let mut rng = rng_for(seed);
    // Sample degrees d ~ min_degree · u^{-1/(exponent-1)}, capped at √(n·min).
    let cap = (((n * min_degree) as f64).sqrt() as usize).max(min_degree + 1);
    let mut stubs: Vec<NodeId> = Vec::new();
    for v in 0..n as NodeId {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let d = ((min_degree as f64) * u.powf(-1.0 / (exponent - 1.0))) as usize;
        let d = d.clamp(min_degree, cap);
        stubs.extend(std::iter::repeat_n(v, d));
    }
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::with_capacity(n, stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        b.add_edge(pair[0], pair[1]); // self-loops/dupes dropped by builder
    }
    b.build()
}

/// 2-D grid graph (`rows × cols` nodes, 4-neighborhood). Used by tests that
/// need predictable shortest-path structure.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Connected caveman graph: `cliques` cliques of `size` nodes, neighbouring
/// cliques joined by a single bridge edge. The canonical "obvious clusters"
/// fixture.
pub fn connected_caveman(cliques: usize, size: usize) -> LabeledGraph {
    assert!(size >= 2);
    let n = cliques * size;
    let mut b = GraphBuilder::with_capacity(n, cliques * size * size / 2 + cliques);
    let mut labels = vec![0u32; n];
    for k in 0..cliques {
        let base = (k * size) as NodeId;
        for i in 0..size as NodeId {
            labels[(base + i) as usize] = k as u32;
            for j in (i + 1)..size as NodeId {
                b.add_edge(base + i, base + j);
            }
        }
        if k + 1 < cliques {
            // Bridge: last node of clique k to first node of clique k+1.
            b.add_edge(base + size as NodeId - 1, base + size as NodeId);
        }
    }
    LabeledGraph { graph: b.build(), labels }
}

/// The 13-node example graph from the paper's Figure 2(a), with the edge
/// weights of the worked indexing/update examples (Figures 2–3).
///
/// Returns the graph and the initial `S_t^{-1}` edge weights so that unit
/// tests can replay the paper's Examples 3–6 exactly. Node `v_i` in the paper
/// maps to node `i - 1` here.
pub fn paper_figure2() -> (Graph, Vec<f64>) {
    // Edges (1-indexed as in the figure) with weights read from Figure 3(a):
    // Known weighted edges: (1,2)=15, (1,3)=4, (2,9)=7, (3,4)=5, (3,9)=1,
    // (4,5)=4, (4,13)=2, (5,6)=3, (5,7)=2, (6,9)=4, (6,10)=9, (9,10)=4,
    // (7,8)=2, (8,11)=1, (8,12)=2, (10,12)=8, (11,12)=5.
    let list: &[(u32, u32, f64)] = &[
        (1, 2, 15.0),
        (1, 3, 4.0),
        (2, 9, 7.0),
        (3, 4, 5.0),
        (3, 9, 1.0),
        (4, 5, 4.0),
        (4, 13, 2.0),
        (5, 6, 3.0),
        (5, 7, 2.0),
        (6, 9, 4.0),
        (6, 10, 9.0),
        (9, 10, 4.0),
        (7, 8, 2.0),
        (8, 11, 1.0),
        (8, 12, 2.0),
        (10, 12, 8.0),
        (11, 12, 5.0),
    ];
    let mut b = GraphBuilder::with_capacity(13, list.len());
    for &(u, v, _) in list {
        b.add_edge(u - 1, v - 1);
    }
    let g = b.build();
    let mut w = vec![1.0; g.m()];
    for &(u, v, wt) in list {
        // Every pair was added to the builder above, so the id always
        // resolves; the prefilled weight 1.0 stands in the impossible miss.
        if let Some(e) = g.edge_id(u - 1, v - 1) {
            w[e as usize] = wt;
        }
    }
    (g, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::connected_components;

    #[test]
    fn er_has_exact_edges_and_is_deterministic() {
        let g1 = erdos_renyi(100, 300, 7);
        let g2 = erdos_renyi(100, 300, 7);
        assert_eq!(g1.m(), 300);
        assert_eq!(g2.m(), 300);
        let e1: Vec<_> = g1.iter_edges().collect();
        let e2: Vec<_> = g2.iter_edges().collect();
        assert_eq!(e1, e2);
        let g3 = erdos_renyi(100, 300, 8);
        let e3: Vec<_> = g3.iter_edges().collect();
        assert_ne!(e1, e3);
    }

    #[test]
    fn ba_degree_skew() {
        let g = barabasi_albert(500, 3, 42);
        assert!(g.m() >= 3 * (500 - 4));
        // Preferential attachment should create a hub noticeably above the
        // median degree.
        let mut degs: Vec<usize> = (0..g.n()).map(|v| g.degree(v as u32)).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(max > 4 * median, "expected hub: max {max}, median {median}");
    }

    #[test]
    fn planted_partition_structure() {
        let cfg = PlantedConfig {
            n: 400,
            communities: 8,
            avg_intra_degree: 10.0,
            mixing: 0.1,
            size_exponent: 0.0,
        };
        let lg = planted_partition(&cfg, 1);
        assert_eq!(lg.graph.n(), 400);
        assert_eq!(lg.num_communities(), 8);
        // Count intra vs inter edges: intra should dominate under μ = 0.1.
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (_, u, v) in lg.graph.iter_edges() {
            if lg.labels[u as usize] == lg.labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 5 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn planted_partition_powerlaw_sizes_cover_all_nodes() {
        let cfg = PlantedConfig::default_for(1000);
        let lg = planted_partition(&cfg, 3);
        assert_eq!(lg.labels.len(), 1000);
        let sizes = {
            let mut s = vec![0usize; lg.num_communities()];
            for &l in &lg.labels {
                s[l as usize] += 1;
            }
            s
        };
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn caveman_clusters() {
        let lg = connected_caveman(4, 5);
        assert_eq!(lg.graph.n(), 20);
        assert_eq!(lg.num_communities(), 4);
        let c = connected_components(&lg.graph);
        assert_eq!(c.count, 1, "bridged caveman must be connected");
    }

    #[test]
    fn watts_strogatz_small_world() {
        let g = watts_strogatz(200, 3, 0.1, 4);
        // Ring lattice keeps ~n·k edges.
        assert!(g.m() >= 200 * 3 - 40 && g.m() <= 200 * 3);
        // Low rewiring keeps clustering high relative to ER of the same size.
        let cc_ws = crate::algo::average_clustering(&g);
        let er = erdos_renyi(200, g.m(), 4);
        let cc_er = crate::algo::average_clustering(&er);
        assert!(cc_ws > 2.0 * cc_er, "WS {cc_ws} vs ER {cc_er}");
        // Deterministic.
        let g2 = watts_strogatz(200, 3, 0.1, 4);
        assert_eq!(g.m(), g2.m());
    }

    #[test]
    fn watts_strogatz_beta_extremes() {
        let lattice = watts_strogatz(60, 2, 0.0, 1);
        // Pure lattice: every node has degree exactly 2k.
        assert!((0..60u32).all(|v| lattice.degree(v) == 4));
        let random = watts_strogatz(60, 2, 1.0, 1);
        assert!(random.m() > 0);
    }

    #[test]
    fn powerlaw_configuration_degrees() {
        let g = powerlaw_configuration(2000, 2.5, 2, 9);
        assert_eq!(g.n(), 2000);
        let mut degs: Vec<usize> = (0..g.n()).map(|v| g.degree(v as u32)).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(max >= 5 * median.max(1), "heavy tail expected: max {max}, median {median}");
        // Determinism.
        let g2 = powerlaw_configuration(2000, 2.5, 2, 9);
        assert_eq!(g.m(), g2.m());
    }

    #[test]
    fn figure2_graph() {
        let (g, w) = paper_figure2();
        assert_eq!(g.n(), 13);
        assert_eq!(g.m(), 17);
        // Spot-check a few weights from Figure 3(a).
        assert_eq!(w[g.edge_id(0, 1).unwrap() as usize], 15.0); // (v1, v2)
        assert_eq!(w[g.edge_id(7, 10).unwrap() as usize], 1.0); // (v8, v11)
        assert_eq!(w[g.edge_id(5, 9).unwrap() as usize], 9.0); // (v6, v10)
    }
}
