//! Traversal utilities: BFS, connected components, degree orderings.
//!
//! These back the clustering extraction (paper Section V-B): even clustering
//! is connected components over voted edges; power clustering searches nodes
//! in decreasing-degree order (ties broken by node id).

use crate::{Graph, NodeId};

/// Connected-component labelling.
#[derive(Clone, Debug)]
pub struct Components {
    /// `label[v]` is the component id of `v`, dense in `0..count`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Size of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Members of each component, indexed by component id.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, &l) in self.label.iter().enumerate() {
            groups[l as usize].push(v as NodeId);
        }
        groups
    }
}

/// Connected components of the whole graph via iterative BFS.
pub fn connected_components(g: &Graph) -> Components {
    connected_components_filtered(g, |_, _, _| true)
}

/// Connected components where an edge `(u, v)` with id `e` participates only
/// if `keep(u, v, e)` returns true.
///
/// This is exactly the paper's *even clustering*: remove all edges whose
/// voting result is 0 and report the components of what remains.
pub fn connected_components_filtered<F>(g: &Graph, mut keep: F) -> Components
where
    F: FnMut(NodeId, NodeId, crate::EdgeId) -> bool,
{
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for (w, e) in g.edges_of(v) {
                if label[w as usize] == u32::MAX && keep(v, w, e) {
                    label[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components { label, count: count as usize }
}

/// BFS distances (in hops) from `source`; unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Nodes in decreasing-degree order, ties broken by increasing node id.
///
/// This is the search order of the paper's *power clustering* ("Set a
/// direction to each edge that heads from high degree node to low degree node
/// (use node id to break ties)").
pub fn degree_order_desc(g: &Graph) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    order.sort_unstable_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then_with(|| a.cmp(&b)));
    order
}

/// Returns true iff the directed power-clustering edge orientation points
/// from `from` to `to` (higher degree → lower degree, node id breaks ties).
#[inline]
pub fn power_edge_points(g: &Graph, from: NodeId, to: NodeId) -> bool {
    let (df, dt) = (g.degree(from), g.degree(to));
    df > dt || (df == dt && from < to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn components_basic() {
        let g = two_triangles();
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[3], c.label[5]);
        assert_ne!(c.label[0], c.label[3]);
        assert_eq!(c.sizes(), vec![3, 3]);
        let groups = c.groups();
        assert_eq!(groups[0], vec![0, 1, 2]);
        assert_eq!(groups[1], vec![3, 4, 5]);
    }

    #[test]
    fn components_filtered_cuts_edges() {
        // A path 0-1-2; cutting (1,2) gives components {0,1},{2}.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let cut = g.edge_id(1, 2).unwrap();
        let c = connected_components_filtered(&g, |_, _, e| e != cut);
        assert_eq!(c.count, 2);
        assert_eq!(c.label[0], c.label[1]);
        assert_ne!(c.label[0], c.label[2]);
    }

    #[test]
    fn components_isolated_nodes() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
    }

    #[test]
    fn bfs_hops() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], u32::MAX); // isolated
    }

    #[test]
    fn degree_order_ties_by_id() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        // degrees: 0→2, 1→2, 2→3, 3→1
        assert_eq!(degree_order_desc(&g), vec![2, 0, 1, 3]);
    }

    #[test]
    fn power_orientation() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        assert!(power_edge_points(&g, 2, 0)); // deg 3 > deg 2
        assert!(!power_edge_points(&g, 0, 2));
        assert!(power_edge_points(&g, 0, 1)); // equal degree, id 0 < 1
        assert!(!power_edge_points(&g, 1, 0));
    }
}
