//! Property tests for the graph substrate: CSR construction invariants,
//! edge lookup consistency, component laws and generator contracts.

use anc_graph::gen::{erdos_renyi, planted_partition, PlantedConfig};
use anc_graph::traverse::connected_components;
use anc_graph::{Graph, NodeId};
use proptest::prelude::*;

fn edge_list_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0u32..n as u32, 0u32..n as u32), 0..120);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CSR construction: sorted unique neighbors, symmetric adjacency,
    /// consistent edge ids, handshake lemma.
    #[test]
    fn csr_invariants((n, edges) in edge_list_strategy()) {
        let g = Graph::from_edges(n, &edges);
        let mut degree_sum = 0usize;
        for v in 0..n as NodeId {
            let nbrs = g.neighbors(v);
            degree_sum += nbrs.len();
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted/dup neighbors");
            prop_assert!(!nbrs.contains(&v), "self loop survived");
            for (w, e) in g.edges_of(v) {
                prop_assert!(g.neighbors(w).contains(&v), "asymmetric adjacency");
                prop_assert_eq!(g.edge_id(v, w), Some(e));
                prop_assert_eq!(g.other_endpoint(e, v), w);
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.m());
        // Every input edge (non-loop) is present.
        for &(a, b) in &edges {
            if a != b {
                prop_assert!(g.has_edge(a, b));
            }
        }
    }

    /// Components partition V; nodes in one component are mutually reachable
    /// through edges entirely inside it.
    #[test]
    fn component_laws((n, edges) in edge_list_strategy()) {
        let g = Graph::from_edges(n, &edges);
        let comps = connected_components(&g);
        prop_assert_eq!(comps.label.len(), n);
        prop_assert_eq!(comps.sizes().iter().sum::<usize>(), n);
        // Every edge joins same-component endpoints.
        for (_, u, v) in g.iter_edges() {
            prop_assert_eq!(comps.label[u as usize], comps.label[v as usize]);
        }
    }

    /// Common-neighbor iteration agrees with the brute-force intersection.
    #[test]
    fn common_neighbors_match_sets((n, edges) in edge_list_strategy()) {
        let g = Graph::from_edges(n, &edges);
        for u in 0..(n as NodeId).min(8) {
            for v in 0..(n as NodeId).min(8) {
                if u == v { continue; }
                let brute: std::collections::BTreeSet<NodeId> = g
                    .neighbors(u)
                    .iter()
                    .filter(|w| g.neighbors(v).contains(w))
                    .copied()
                    .collect();
                let mut merged = std::collections::BTreeSet::new();
                g.for_common_neighbors(u, v, |w, e_uw, e_vw| {
                    merged.insert(w);
                    assert_eq!(g.edge_id(u, w), Some(e_uw));
                    assert_eq!(g.edge_id(v, w), Some(e_vw));
                });
                prop_assert_eq!(brute.len(), g.common_neighbor_count(u, v));
                prop_assert_eq!(brute, merged);
            }
        }
    }

    /// ER generator: exact edge count, determinism, valid ids.
    #[test]
    fn er_contract(n in 10usize..60, seed in 0u64..32) {
        let m = n; // sparse enough for rejection sampling (m ≤ n(n−1)/4 for n ≥ 10)
        let g = erdos_renyi(n, m, seed);
        prop_assert_eq!(g.m(), m);
        prop_assert_eq!(g.n(), n);
        let g2 = erdos_renyi(n, m, seed);
        let e1: Vec<_> = g.iter_edges().collect();
        let e2: Vec<_> = g2.iter_edges().collect();
        prop_assert_eq!(e1, e2);
    }

    /// Planted partition: labels cover all nodes, community count respected,
    /// and intra edges dominate for low mixing.
    #[test]
    fn planted_contract(n in 40usize..200, seed in 0u64..16) {
        let cfg = PlantedConfig {
            n,
            communities: 4,
            avg_intra_degree: 6.0,
            mixing: 0.1,
            size_exponent: 0.0,
        };
        let lg = planted_partition(&cfg, seed);
        prop_assert_eq!(lg.labels.len(), n);
        prop_assert!(lg.num_communities() <= 4);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (_, u, v) in lg.graph.iter_edges() {
            if lg.labels[u as usize] == lg.labels[v as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        prop_assert!(intra > inter, "low mixing must keep intra edges dominant");
    }
}
