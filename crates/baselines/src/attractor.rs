//! Attractor — community detection by distance dynamics (Shao et al., KDD
//! 2015).
//!
//! Each edge carries a distance `d ∈ [0, 1]`, initialized from the Jaccard
//! distance. Every iteration updates all edge distances through three
//! interaction patterns — direct (DI), common-neighbor (CI) and
//! exclusive-neighbor (EI) influence — and truncates to `[0, 1]`. Iteration
//! stops when every distance has polarized to 0 or 1 (or after `max_iter`);
//! clusters are the connected components over 0-distance edges.
//!
//! This is the algorithm whose iterated propagation motivates ANC's use of
//! shortest distances (paper Section IV-B); the paper's footnote 1 notes its
//! `O(d·n)`-per-iteration (quadratic worst-case) cost, which Exp 2
//! reproduces.

use anc_graph::{EdgeId, Graph, NodeId};
use anc_metrics::Clustering;

/// Attractor parameters.
#[derive(Clone, Copy, Debug)]
pub struct AttractorParams {
    /// Cohesion threshold λ for exclusive-neighbor influence (the reference
    /// implementation's default is 0.5).
    pub lambda: f64,
    /// Iteration cap (the paper reports 3–50 iterations to converge).
    pub max_iter: usize,
}

impl Default for AttractorParams {
    fn default() -> Self {
        Self { lambda: 0.5, max_iter: 50 }
    }
}

/// Weighted Jaccard similarity over closed neighborhoods, used both for
/// initialization and for the virtual similarity of non-adjacent pairs.
fn jaccard(g: &Graph, weights: &[f64], wdeg: &[f64], u: NodeId, v: NodeId) -> f64 {
    // Member x of Γ(u) carries weight w(u,x); u itself carries weight 1.
    // inter = Σ_{x ∈ Γ(u)∩Γ(v)} min, union = Σ_{x ∈ Γ(u)∪Γ(v)} max
    //       = (wdeg(u)+1) + (wdeg(v)+1) − inter.
    let mut inter = 0.0;
    g.for_common_neighbors(u, v, |_, e_ux, e_vx| {
        inter += weights[e_ux as usize].min(weights[e_vx as usize]);
    });
    if let Some(e) = g.edge_id(u, v) {
        // u ∈ Γ(u) with weight 1 and u ∈ Γ(v) with weight w(u,v); same for v.
        inter += 2.0 * weights[e as usize].min(1.0);
    }
    let union = (wdeg[u as usize] + 1.0) + (wdeg[v as usize] + 1.0) - inter;
    if union <= 0.0 {
        0.0
    } else {
        (inter / union).clamp(0.0, 1.0)
    }
}

/// Runs Attractor on edge weights `weights` (pass all-ones for the static
/// unweighted case). Returns the clustering and the number of iterations
/// actually performed.
pub fn cluster(g: &Graph, weights: &[f64], params: &AttractorParams) -> (Clustering, usize) {
    let m = g.m();
    let mut wdeg = vec![0.0; g.n()];
    for (e, u, v) in g.iter_edges() {
        wdeg[u as usize] += weights[e as usize];
        wdeg[v as usize] += weights[e as usize];
    }

    // d(e) = 1 − jaccard(u, v).
    let mut d: Vec<f64> =
        g.iter_edges().map(|(_, u, v)| 1.0 - jaccard(g, weights, &wdeg, u, v)).collect();

    let sin1 = |x: f64| (1.0 - x).sin();
    let mut iterations = 0usize;
    for _ in 0..params.max_iter {
        iterations += 1;
        let mut delta = vec![0.0f64; m];
        for (e, u, v) in g.iter_edges() {
            if d[e as usize] <= 0.0 || d[e as usize] >= 1.0 {
                continue; // polarized edges stop interacting
            }
            let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
            // DI: the endpoints attract each other directly.
            let mut dd = -(sin1(d[e as usize]) / du + sin1(d[e as usize]) / dv);
            // CI and EI via one merged scan over both neighborhoods.
            g.for_common_neighbors(u, v, |_, e_ux, e_vx| {
                let dxu = d[e_ux as usize];
                let dxv = d[e_vx as usize];
                dd -= sin1(dxu) * (1.0 - dxv) / du + sin1(dxv) * (1.0 - dxu) / dv;
            });
            // Exclusive neighbors of u (not adjacent to v) and of v.
            for (x, e_ux) in g.edges_of(u) {
                if x == v || g.has_edge(x, v) {
                    continue;
                }
                let rho = jaccard(g, weights, &wdeg, x, v) - params.lambda;
                dd -= sin1(d[e_ux as usize]) * rho / du;
            }
            for (x, e_vx) in g.edges_of(v) {
                if x == u || g.has_edge(x, u) {
                    continue;
                }
                let rho = jaccard(g, weights, &wdeg, x, u) - params.lambda;
                dd -= sin1(d[e_vx as usize]) * rho / dv;
            }
            delta[e as usize] = dd;
        }
        let mut changed = false;
        for e in 0..m {
            if delta[e] != 0.0 {
                let nd = (d[e] + delta[e]).clamp(0.0, 1.0);
                if nd != d[e] {
                    d[e] = nd;
                    changed = true;
                }
            }
        }
        let polarized = d.iter().all(|&x| x <= 0.0 || x >= 1.0);
        if polarized || !changed {
            break;
        }
    }

    // Components over attracted (d < 1, effectively d → 0) edges. Following
    // the reference implementation, any non-repulsed edge links its
    // endpoints.
    let keep: Vec<bool> = d.iter().map(|&x| x < 0.5).collect();
    let comps =
        anc_graph::traverse::connected_components_filtered(g, |_, _, e: EdgeId| keep[e as usize]);
    (Clustering::from_labels(&comps.label), iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::connected_caveman;
    use anc_graph::Graph;

    #[test]
    fn recovers_caveman_cliques() {
        let lg = connected_caveman(4, 6);
        let w = vec![1.0; lg.graph.m()];
        let (c, iters) = cluster(&lg.graph, &w, &AttractorParams::default());
        assert!(iters <= 50);
        let truth = Clustering::from_labels(&lg.labels);
        let score = anc_metrics::nmi(&c, &truth);
        assert!(score > 0.9, "Attractor should nail cliques, NMI = {score}");
    }

    #[test]
    fn triangle_attracts_bridge_repels() {
        // Two triangles with a bridge: the bridge has no common neighbors →
        // starts far and drifts to 1; triangle edges drift to 0.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let w = vec![1.0; g.m()];
        let (c, _) = cluster(&g, &w, &AttractorParams::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.label(0), c.label(2));
        assert_eq!(c.label(3), c.label(5));
        assert_ne!(c.label(0), c.label(3));
    }

    #[test]
    fn iteration_cap_respected() {
        let lg = connected_caveman(3, 5);
        let w = vec![1.0; lg.graph.m()];
        let (_, iters) = cluster(&lg.graph, &w, &AttractorParams { lambda: 0.5, max_iter: 2 });
        assert!(iters <= 2);
    }

    #[test]
    fn weighted_input_shifts_result() {
        // Cross-clique edge with huge weight pulls the cliques together.
        let lg = connected_caveman(2, 4);
        let g = &lg.graph;
        let mut w = vec![1.0; g.m()];
        let bridge = g
            .iter_edges()
            .find(|&(_, u, v)| lg.labels[u as usize] != lg.labels[v as usize])
            .map(|(e, _, _)| e)
            .unwrap();
        let (before, _) = cluster(g, &w, &AttractorParams::default());
        w[bridge as usize] = 50.0;
        let (after, _) = cluster(g, &w, &AttractorParams::default());
        assert!(after.num_clusters() <= before.num_clusters());
    }

    #[test]
    fn singleton_components_are_clusters() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let w = vec![1.0; g.m()];
        let (c, _) = cluster(&g, &w, &AttractorParams::default());
        // Node 2 is isolated → its own cluster (component).
        assert!(c.num_clusters() >= 2);
    }
}
