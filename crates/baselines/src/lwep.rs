//! LWEP — a weighted-graph-stream community maintainer in the style of
//! Wang, Lai & Yu (SDM 2013).
//!
//! Maintains a community assignment by weighted label propagation. Each
//! timestep decays every edge weight, applies the activations, and then
//! re-propagates labels: first synchronously over the d-hop neighborhood of
//! every changed edge, then with a global stabilization sweep. The global
//! sweep is intentionally retained — the reference method's per-update cost
//! is `O(d·|ΔE|·n²)` in the paper's accounting, and Exp 2 / Figure 10 rely
//! on LWEP being orders of magnitude slower than ANC's bounded updates
//! (DESIGN.md §3).

use anc_graph::{EdgeId, Graph};
use anc_metrics::Clustering;

/// The stream engine.
pub struct LwepEngine {
    g: Graph,
    weights: Vec<f64>,
    labels: Vec<u32>,
    lambda: f64,
    now: f64,
    /// Hop radius around changed edges for the focused propagation.
    pub hops: usize,
    /// Maximum global sweeps per step.
    pub max_sweeps: usize,
}

impl LwepEngine {
    /// Initializes: each node seeds with the label of its locally dominant
    /// (highest weighted-degree, ties to smaller id) closed neighbor — a
    /// deterministic hub seeding that avoids the min-label cascade of
    /// singleton-seeded LPA — then propagation runs to convergence.
    pub fn new(g: Graph, initial_weights: Vec<f64>, lambda: f64) -> Self {
        assert_eq!(initial_weights.len(), g.m());
        let mut wdeg = vec![0.0f64; g.n()];
        for (e, u, v) in g.iter_edges() {
            wdeg[u as usize] += initial_weights[e as usize];
            wdeg[v as usize] += initial_weights[e as usize];
        }
        let labels = (0..g.n() as u32)
            .map(|v| {
                let mut best = (v, wdeg[v as usize]);
                for (u, _) in g.edges_of(v) {
                    let du = wdeg[u as usize];
                    if du > best.1 || (du == best.1 && u < best.0) {
                        best = (u, du);
                    }
                }
                best.0
            })
            .collect();
        let mut engine =
            Self { g, weights: initial_weights, labels, lambda, now: 0.0, hops: 2, max_sweeps: 5 };
        engine.propagate_all();
        engine
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Current partition.
    pub fn clustering(&self) -> Clustering {
        Clustering::from_labels(&self.labels)
    }

    /// One weighted label-propagation visit of node `v`; returns true if the
    /// label changed. A move requires a *strictly* better total vote than the
    /// current label's (ties keep the current label; among strictly better
    /// candidates the smaller label wins), keeping the sweep deterministic
    /// and cascade-free.
    fn visit(&mut self, v: u32) -> bool {
        let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for (u, e) in self.g.edges_of(v) {
            *acc.entry(self.labels[u as usize]).or_insert(0.0) += self.weights[e as usize];
        }
        let current = self.labels[v as usize];
        let current_votes = acc.get(&current).copied().unwrap_or(0.0);
        let mut best = (current, current_votes);
        for (&label, &votes) in &acc {
            if votes > best.1 + 1e-12
                || (votes > current_votes + 1e-12
                    && (votes - best.1).abs() <= 1e-12
                    && label < best.0)
            {
                best = (label, votes);
            }
        }
        if best.0 != current {
            self.labels[v as usize] = best.0;
            true
        } else {
            false
        }
    }

    fn propagate_all(&mut self) {
        for _ in 0..self.max_sweeps.max(10) {
            let mut changed = false;
            for v in 0..self.g.n() as u32 {
                changed |= self.visit(v);
            }
            if !changed {
                break;
            }
        }
    }

    /// Advances to time `t`: decays all weights, applies activations, then
    /// re-propagates (focused d-hop pass + global stabilization sweeps).
    pub fn step(&mut self, t: f64, activations: &[EdgeId]) {
        let dt = (t - self.now).max(0.0);
        self.now = t;
        if dt > 0.0 && self.lambda > 0.0 {
            let f = (-self.lambda * dt).exp();
            for w in &mut self.weights {
                *w *= f;
            }
        }
        for &e in activations {
            self.weights[e as usize] += 1.0;
        }

        // Focused propagation over the d-hop neighborhoods of changed edges.
        let mut frontier: Vec<u32> = Vec::new();
        let mut seen = vec![false; self.g.n()];
        for &e in activations {
            let (u, v) = self.g.endpoints(e);
            for x in [u, v] {
                if !seen[x as usize] {
                    seen[x as usize] = true;
                    frontier.push(x);
                }
            }
        }
        for _ in 0..self.hops {
            let mut next = Vec::new();
            for &x in &frontier {
                self.visit(x);
                for (y, _) in self.g.edges_of(x) {
                    if !seen[y as usize] {
                        seen[y as usize] = true;
                        next.push(y);
                    }
                }
            }
            frontier = next;
        }
        // Global stabilization — the expensive part the paper observes.
        for _ in 0..self.max_sweeps {
            let mut changed = false;
            for v in 0..self.g.n() as u32 {
                changed |= self.visit(v);
            }
            if !changed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::connected_caveman;

    #[test]
    fn initial_propagation_finds_cliques() {
        let lg = connected_caveman(4, 8);
        let w = vec![1.0; lg.graph.m()];
        let engine = LwepEngine::new(lg.graph.clone(), w, 0.1);
        let truth = Clustering::from_labels(&lg.labels);
        let score = anc_metrics::nmi(&engine.clustering(), &truth);
        assert!(score > 0.8, "LPA should find cliques, NMI = {score}");
    }

    #[test]
    fn decay_and_activation_bookkeeping() {
        let lg = connected_caveman(2, 4);
        let w = vec![1.0; lg.graph.m()];
        let mut engine = LwepEngine::new(lg.graph.clone(), w, 1.0);
        engine.step(1.0, &[0]);
        let f = (-1.0f64).exp();
        assert!((engine.weights()[0] - (f + 1.0)).abs() < 1e-12);
        assert!((engine.weights()[1] - f).abs() < 1e-12);
    }

    #[test]
    fn hot_bridge_merges_labels() {
        let lg = connected_caveman(2, 4);
        let g = lg.graph.clone();
        let bridge = g
            .iter_edges()
            .find(|&(_, u, v)| lg.labels[u as usize] != lg.labels[v as usize])
            .map(|(e, _, _)| e)
            .unwrap();
        let w = vec![1.0; g.m()];
        let mut engine = LwepEngine::new(g, w, 0.5);
        for t in 1..=30 {
            engine.step(t as f64, &[bridge; 3]);
        }
        assert!(
            engine.clustering().num_clusters() <= 2,
            "heavy bridge should pull communities together"
        );
    }

    #[test]
    fn deterministic() {
        let lg = connected_caveman(3, 5);
        let w = vec![1.0; lg.graph.m()];
        let mut a = LwepEngine::new(lg.graph.clone(), w.clone(), 0.2);
        let mut b = LwepEngine::new(lg.graph.clone(), w, 0.2);
        for t in 1..=10 {
            a.step(t as f64, &[(t % lg.graph.m()) as u32]);
            b.step(t as f64, &[(t % lg.graph.m()) as u32]);
        }
        assert_eq!(a.clustering(), b.clustering());
    }
}
