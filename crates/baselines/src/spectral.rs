//! Normalized spectral clustering (Ng, Jordan, Weiss — NIPS 2001), the
//! paper's ground-truth oracle on activation snapshots (Section VI-A:
//! "On activation graphs with varying S_t, we use Spectral Clustering to
//! obtain the clusters as ground truth").
//!
//! Pipeline: top-`k` eigenvectors of the normalized adjacency
//! `D^{-1/2} W D^{-1/2}` via orthogonal (subspace) iteration, row
//! normalization, then k-means with k-means++ seeding. Deterministic in the
//! seed; dense in `n × k`, so intended for the paper's small activation
//! graphs (≤ ~10k nodes).

use anc_graph::Graph;
use anc_metrics::Clustering;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Spectral clustering parameters.
#[derive(Clone, Copy, Debug)]
pub struct SpectralParams {
    /// Number of clusters `k`.
    pub k: usize,
    /// Orthogonal-iteration rounds (eigenvector refinement).
    pub power_iters: usize,
    /// Lloyd iterations for k-means.
    pub kmeans_iters: usize,
}

impl Default for SpectralParams {
    fn default() -> Self {
        Self { k: 8, power_iters: 30, kmeans_iters: 25 }
    }
}

/// Runs spectral clustering over edge weights `weights`.
pub fn cluster(g: &Graph, weights: &[f64], params: &SpectralParams, seed: u64) -> Clustering {
    let n = g.n();
    let k = params.k.max(1).min(n.max(1));
    if n == 0 {
        return Clustering::from_labels(&[]);
    }
    // D^{-1/2} with a small ridge so isolated nodes don't blow up.
    let mut wdeg = vec![1e-9f64; n];
    for (e, u, v) in g.iter_edges() {
        wdeg[u as usize] += weights[e as usize];
        wdeg[v as usize] += weights[e as usize];
    }
    let dinv_sqrt: Vec<f64> = wdeg.iter().map(|d| 1.0 / d.sqrt()).collect();

    // Orthogonal iteration on M = D^{-1/2} W D^{-1/2} (+ small self-loop to
    // break bipartite oscillation), starting from a random orthonormal basis.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut basis: Vec<Vec<f64>> =
        (0..k).map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
    orthonormalize(&mut basis);
    let matvec = |x: &[f64], out: &mut [f64]| {
        for (o, xi) in out.iter_mut().zip(x) {
            *o = 0.5 * *xi; // lazy walk self-loop
        }
        for (e, u, v) in g.iter_edges() {
            let w = 0.5 * weights[e as usize];
            out[u as usize] += w * dinv_sqrt[u as usize] * dinv_sqrt[v as usize] * x[v as usize];
            out[v as usize] += w * dinv_sqrt[u as usize] * dinv_sqrt[v as usize] * x[u as usize];
        }
    };
    let mut tmp = vec![0.0f64; n];
    for _ in 0..params.power_iters {
        for b in basis.iter_mut() {
            matvec(b, &mut tmp);
            std::mem::swap(b, &mut tmp);
        }
        orthonormalize(&mut basis);
    }

    // Embedding rows (n × k), row-normalized.
    let mut rows = vec![vec![0.0f64; k]; n];
    for (j, b) in basis.iter().enumerate() {
        for i in 0..n {
            rows[i][j] = b[i];
        }
    }
    for r in &mut rows {
        let norm = r.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for x in r.iter_mut() {
                *x /= norm;
            }
        }
    }

    let labels = kmeans(&rows, k, params.kmeans_iters, &mut rng);
    Clustering::from_labels(&labels)
}

/// Gram–Schmidt orthonormalization in place.
fn orthonormalize(basis: &mut [Vec<f64>]) {
    let k = basis.len();
    for i in 0..k {
        for j in 0..i {
            let dot: f64 = basis[i].iter().zip(&basis[j]).map(|(a, b)| a * b).sum();
            let bj = basis[j].clone();
            for (a, b) in basis[i].iter_mut().zip(&bj) {
                *a -= dot * b;
            }
        }
        let norm: f64 = basis[i].iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for x in basis[i].iter_mut() {
                *x /= norm;
            }
        }
    }
}

/// k-means with k-means++ seeding; returns a label per row.
fn kmeans(rows: &[Vec<f64>], k: usize, iters: usize, rng: &mut ChaCha8Rng) -> Vec<u32> {
    let n = rows.len();
    if n == 0 {
        return vec![];
    }
    let dim = rows[0].len();
    let d2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };

    // k-means++ seeding.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(rows[rng.gen_range(0..n)].clone());
    let mut best_d: Vec<f64> = rows.iter().map(|r| d2(r, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = best_d.iter().sum();
        let idx = if total <= 1e-18 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut pick = n - 1;
            for (i, &d) in best_d.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        centers.push(rows[idx].clone());
        for (i, r) in rows.iter().enumerate() {
            let d = d2(r, centers.last().unwrap());
            if d < best_d[i] {
                best_d[i] = d;
            }
        }
    }

    // Lloyd iterations.
    let mut labels = vec![0u32; n];
    for _ in 0..iters {
        let mut moved = false;
        for (i, r) in rows.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, center) in centers.iter().enumerate() {
                let d = d2(r, center);
                if d < best.1 {
                    best = (c, d);
                }
            }
            if labels[i] != best.0 as u32 {
                labels[i] = best.0 as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, r) in rows.iter().enumerate() {
            let c = labels[i] as usize;
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(r) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in sums[c].iter_mut() {
                    *s /= counts[c] as f64;
                }
                centers[c] = sums[c].clone();
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::{connected_caveman, planted_partition, PlantedConfig};

    #[test]
    fn recovers_caveman_cliques() {
        let lg = connected_caveman(4, 8);
        let w = vec![1.0; lg.graph.m()];
        let c = cluster(&lg.graph, &w, &SpectralParams { k: 4, ..Default::default() }, 7);
        let truth = Clustering::from_labels(&lg.labels);
        let score = anc_metrics::nmi(&c, &truth);
        assert!(score > 0.9, "spectral should nail cliques, NMI = {score}");
    }

    #[test]
    fn recovers_planted_partition() {
        let cfg = PlantedConfig {
            n: 240,
            communities: 4,
            avg_intra_degree: 12.0,
            mixing: 0.08,
            size_exponent: 0.0,
        };
        let lg = planted_partition(&cfg, 3);
        let w = vec![1.0; lg.graph.m()];
        let c = cluster(&lg.graph, &w, &SpectralParams { k: 4, ..Default::default() }, 9);
        let truth = Clustering::from_labels(&lg.labels);
        let score = anc_metrics::nmi(&c, &truth);
        assert!(score > 0.7, "planted NMI = {score}");
    }

    #[test]
    fn respects_edge_weights() {
        // 2 cliques; zero out one clique's internal weights and boost the
        // bridge — the embedding should no longer separate them cleanly.
        let lg = connected_caveman(2, 5);
        let g = &lg.graph;
        let uniform = vec![1.0; g.m()];
        let c_clean = cluster(g, &uniform, &SpectralParams { k: 2, ..Default::default() }, 4);
        let truth = Clustering::from_labels(&lg.labels);
        let clean_score = anc_metrics::nmi(&c_clean, &truth);
        assert!(clean_score > 0.9);
        let hot_bridge: Vec<f64> = g
            .iter_edges()
            .map(
                |(_, u, v)| if lg.labels[u as usize] != lg.labels[v as usize] { 30.0 } else { 0.1 },
            )
            .collect();
        let c_hot = cluster(g, &hot_bridge, &SpectralParams { k: 2, ..Default::default() }, 4);
        let hot_score = anc_metrics::nmi(&c_hot, &truth);
        assert!(hot_score < clean_score, "weights must matter: {hot_score} vs {clean_score}");
    }

    #[test]
    fn k_one_and_k_ge_n() {
        let lg = connected_caveman(2, 3);
        let w = vec![1.0; lg.graph.m()];
        let c1 = cluster(&lg.graph, &w, &SpectralParams { k: 1, ..Default::default() }, 2);
        assert_eq!(c1.num_clusters(), 1);
        let cn = cluster(&lg.graph, &w, &SpectralParams { k: 100, ..Default::default() }, 2);
        assert!(cn.num_clusters() <= lg.graph.n());
    }

    #[test]
    fn deterministic_in_seed() {
        let lg = connected_caveman(3, 4);
        let w = vec![1.0; lg.graph.m()];
        let p = SpectralParams { k: 3, ..Default::default() };
        let a = cluster(&lg.graph, &w, &p, 11);
        let b = cluster(&lg.graph, &w, &p, 11);
        assert_eq!(a, b);
    }
}
