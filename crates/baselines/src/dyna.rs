//! DYNA — a DynaMo-style incremental modularity maximizer (after Zhuang,
//! Chang, Li, TKDE 2021).
//!
//! DynaMo maintains a Louvain-quality partition across edge-weight updates:
//! each batch of changes frees the affected nodes, re-runs constrained
//! local modularity moves seeded from them, and keeps the rest of the
//! partition intact.
//!
//! Two properties the paper's evaluation depends on are reproduced
//! faithfully (DESIGN.md §3):
//!
//! 1. **Per-timestep cost `O(|ΔE|·m/n)`-ish plus a full-graph decay pass** —
//!    under the time-decay scheme *all* edge weights change every timestep,
//!    which is exactly why DYNA underperforms on activation networks
//!    ("the weight of all edges has to be updated at every timestep even
//!    with no activation", Exp 2).
//! 2. **Rule-based drift** — incremental local moves without global
//!    refreshes gradually trap the partition in suboptimal states, so
//!    quality decays over time (Figure 4).

use anc_graph::{EdgeId, Graph};
use anc_metrics::Clustering;

use crate::louvain::{self, LouvainParams};

/// The incremental engine.
pub struct DynaEngine {
    g: Graph,
    /// Current (decayed) edge weights — updated in full every timestep.
    weights: Vec<f64>,
    /// Current communities of all nodes.
    comm: Vec<u32>,
    /// Weighted degree per node.
    wdeg: Vec<f64>,
    /// Σ weighted degree per community.
    comm_deg: Vec<f64>,
    /// Total edge weight.
    total: f64,
    lambda: f64,
    now: f64,
}

impl DynaEngine {
    /// Initializes with a full Louvain run on the initial weights.
    pub fn new(g: Graph, initial_weights: Vec<f64>, lambda: f64) -> Self {
        assert_eq!(initial_weights.len(), g.m());
        let init = louvain::cluster(&g, &initial_weights, &LouvainParams::default());
        let comm: Vec<u32> = init.labels().to_vec();
        let mut engine = Self {
            g,
            weights: initial_weights,
            comm,
            wdeg: Vec::new(),
            comm_deg: Vec::new(),
            total: 0.0,
            lambda,
            now: 0.0,
        };
        engine.recompute_aggregates();
        engine
    }

    fn recompute_aggregates(&mut self) {
        let n = self.g.n();
        self.wdeg = vec![0.0; n];
        self.total = 0.0;
        for (e, u, v) in self.g.iter_edges() {
            let w = self.weights[e as usize];
            self.wdeg[u as usize] += w;
            self.wdeg[v as usize] += w;
            self.total += w;
        }
        let k = self.comm.iter().copied().max().map_or(0, |m| m as usize + 1);
        self.comm_deg = vec![0.0; k.max(1)];
        for v in 0..n {
            self.comm_deg[self.comm[v] as usize] += self.wdeg[v];
        }
    }

    /// Current weights (exposed for metric computations).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Current partition.
    pub fn clustering(&self) -> Clustering {
        Clustering::from_labels(&self.comm)
    }

    /// Advances to time `t`, decaying **every** edge weight (the full-graph
    /// pass that makes DYNA expensive under time decay), then applies the
    /// activations (each adds 1 to its edge weight) and re-optimizes
    /// locally around the touched nodes.
    pub fn step(&mut self, t: f64, activations: &[EdgeId]) {
        let dt = (t - self.now).max(0.0);
        self.now = t;
        if dt > 0.0 && self.lambda > 0.0 {
            let f = (-self.lambda * dt).exp();
            for w in &mut self.weights {
                *w *= f;
            }
        }
        for &e in activations {
            self.weights[e as usize] += 1.0;
        }
        self.recompute_aggregates();

        // Local re-optimization seeded from the endpoints of activated
        // edges and their neighbors (DynaMo's affected-node set).
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut queued = vec![false; self.g.n()];
        for &e in activations {
            let (u, v) = self.g.endpoints(e);
            for x in [u, v] {
                if !queued[x as usize] {
                    queued[x as usize] = true;
                    queue.push_back(x);
                }
                for (y, _) in self.g.edges_of(x) {
                    if !queued[y as usize] {
                        queued[y as usize] = true;
                        queue.push_back(y);
                    }
                }
            }
        }
        let two_w = 2.0 * self.total;
        if two_w <= 0.0 {
            return;
        }
        let mut moves = 0usize;
        let move_cap = self.g.n() * 4; // bound incremental work
        while let Some(v) = queue.pop_front() {
            queued[v as usize] = false;
            if moves >= move_cap {
                break;
            }
            let cv = self.comm[v as usize] as usize;
            // Link weights to neighbor communities.
            let mut acc: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
            for (u, e) in self.g.edges_of(v) {
                *acc.entry(self.comm[u as usize]).or_insert(0.0) += self.weights[e as usize];
            }
            self.comm_deg[cv] -= self.wdeg[v as usize];
            let stay = acc.get(&(cv as u32)).copied().unwrap_or(0.0)
                - self.comm_deg[cv] * self.wdeg[v as usize] / two_w;
            let mut best = (cv as u32, stay);
            for (&c, &link) in &acc {
                if c as usize == cv {
                    continue;
                }
                let gain = link - self.comm_deg[c as usize] * self.wdeg[v as usize] / two_w;
                if gain > best.1 + 1e-12 {
                    best = (c, gain);
                }
            }
            self.comm_deg[best.0 as usize] += self.wdeg[v as usize];
            if best.0 as usize != cv {
                self.comm[v as usize] = best.0;
                moves += 1;
                // Moving v may improve its neighbors too.
                for (u, _) in self.g.edges_of(v) {
                    if !queued[u as usize] {
                        queued[u as usize] = true;
                        queue.push_back(u);
                    }
                }
            }
        }
    }

    /// Full Louvain refresh (used by the offline variant LOUV in the
    /// experiment harness and for drift measurements).
    pub fn refresh_full(&mut self) {
        let c = louvain::cluster(&self.g, &self.weights, &LouvainParams::default());
        self.comm = c.labels().to_vec();
        self.recompute_aggregates();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::connected_caveman;

    #[test]
    fn initial_partition_is_louvain() {
        let lg = connected_caveman(4, 6);
        let w = vec![1.0; lg.graph.m()];
        let engine = DynaEngine::new(lg.graph.clone(), w, 0.1);
        let truth = Clustering::from_labels(&lg.labels);
        assert!(anc_metrics::nmi(&engine.clustering(), &truth) > 0.9);
    }

    #[test]
    fn decay_pass_touches_all_edges() {
        let lg = connected_caveman(2, 4);
        let w = vec![1.0; lg.graph.m()];
        let mut engine = DynaEngine::new(lg.graph.clone(), w, 0.5);
        engine.step(2.0, &[]);
        let f = (-0.5f64 * 2.0).exp();
        for e in 0..lg.graph.m() {
            assert!((engine.weights()[e] - f).abs() < 1e-12);
        }
    }

    #[test]
    fn activations_bump_weights() {
        let lg = connected_caveman(2, 4);
        let w = vec![1.0; lg.graph.m()];
        let mut engine = DynaEngine::new(lg.graph.clone(), w, 0.0);
        engine.step(1.0, &[0, 0, 1]);
        assert!((engine.weights()[0] - 3.0).abs() < 1e-12);
        assert!((engine.weights()[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_moves_track_strong_shifts() {
        // Activate the bridge heavily and starve the cliques: the two
        // cliques should eventually merge across the hot bridge.
        let lg = connected_caveman(2, 4);
        let g = lg.graph.clone();
        let bridge = g
            .iter_edges()
            .find(|&(_, u, v)| lg.labels[u as usize] != lg.labels[v as usize])
            .map(|(e, _, _)| e)
            .unwrap();
        let w = vec![1.0; g.m()];
        let mut engine = DynaEngine::new(g, w, 0.3);
        let before = engine.clustering().num_clusters();
        for t in 1..=40 {
            engine.step(t as f64, &[bridge; 4]);
        }
        let after = engine.clustering().num_clusters();
        assert!(after <= before, "hot bridge should merge clusters: {before} → {after}");
    }

    #[test]
    fn refresh_full_restores_quality() {
        let lg = connected_caveman(4, 5);
        let w = vec![1.0; lg.graph.m()];
        let mut engine = DynaEngine::new(lg.graph.clone(), w, 0.1);
        // Drift with random-ish activations.
        for t in 1..=20 {
            let acts: Vec<u32> = (0..4).map(|i| ((t * 7 + i * 3) % lg.graph.m()) as u32).collect();
            engine.step(t as f64, &acts);
        }
        engine.refresh_full();
        let truth = Clustering::from_labels(&lg.labels);
        // A full refresh on near-uniform weights should still see cliques.
        assert!(anc_metrics::nmi(&engine.clustering(), &truth) > 0.5);
    }
}
