//! Louvain — fast unfolding of communities (Blondel et al., 2008).
//!
//! Greedy weighted-modularity maximization in two repeated phases:
//! local moves (each node greedily joins the neighboring community with the
//! best modularity gain until none improves) and aggregation (communities
//! collapse into super-nodes). Used by the paper both as the offline
//! baseline LOUV and as the base optimizer of DYNA.

use anc_graph::Graph;
use anc_metrics::Clustering;

/// Louvain parameters.
#[derive(Clone, Copy, Debug)]
pub struct LouvainParams {
    /// Maximum outer (level) iterations.
    pub max_levels: usize,
    /// Maximum local-move sweeps per level.
    pub max_sweeps: usize,
    /// Minimum total modularity gain per sweep to continue.
    pub min_gain: f64,
}

impl Default for LouvainParams {
    fn default() -> Self {
        Self { max_levels: 10, max_sweeps: 20, min_gain: 1e-7 }
    }
}

/// A flat weighted graph in adjacency-list form used for the aggregation
/// phase (meta graphs are dense in communities, not in original nodes).
struct MetaGraph {
    /// adj[v] = (neighbor, weight); parallel edges pre-merged.
    adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per node (internal weight of the collapsed group,
    /// counted once).
    selfw: Vec<f64>,
    /// Total edge weight `W` (each undirected edge once, self-loops once).
    total: f64,
}

impl MetaGraph {
    fn from_graph(g: &Graph, weights: &[f64]) -> Self {
        let mut adj = vec![Vec::new(); g.n()];
        let mut total = 0.0;
        for (e, u, v) in g.iter_edges() {
            let w = weights[e as usize];
            adj[u as usize].push((v, w));
            adj[v as usize].push((u, w));
            total += w;
        }
        Self { adj, selfw: vec![0.0; g.n()], total }
    }

    fn n(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree including twice the self-loop (standard convention).
    fn wdeg(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.selfw[v]
    }
}

/// One level of local moves. Returns (community labels, improved?).
fn local_moves(mg: &MetaGraph, params: &LouvainParams) -> (Vec<u32>, bool) {
    let n = mg.n();
    let two_w = 2.0 * mg.total;
    if two_w <= 0.0 {
        return ((0..n as u32).collect(), false);
    }
    let mut comm: Vec<u32> = (0..n as u32).collect();
    // Σ of weighted degrees per community.
    let mut comm_deg: Vec<f64> = (0..n).map(|v| mg.wdeg(v)).collect();
    let node_deg: Vec<f64> = comm_deg.clone();
    let mut improved_any = false;

    let mut neigh_w: Vec<f64> = vec![0.0; n];
    let mut touched: Vec<u32> = Vec::new();

    for _ in 0..params.max_sweeps {
        let mut gain_total = 0.0;
        for v in 0..n {
            let cv = comm[v] as usize;
            // Weights from v to each neighboring community.
            for &t in &touched {
                neigh_w[t as usize] = 0.0;
            }
            touched.clear();
            for &(u, w) in &mg.adj[v] {
                let cu = comm[u as usize] as usize;
                if neigh_w[cu] == 0.0 {
                    touched.push(cu as u32);
                }
                neigh_w[cu] += w;
            }
            // Remove v from its community.
            comm_deg[cv] -= node_deg[v];
            let base_links = neigh_w[cv];
            // Gain of joining community c: k_{v,c}/W − deg_c·deg_v/(2W²)
            // (constant factors dropped; compared relative to staying).
            let mut best_c = cv;
            let mut best_gain = base_links - comm_deg[cv] * node_deg[v] / two_w;
            for &t in &touched {
                let c = t as usize;
                if c == cv {
                    continue;
                }
                let gain = neigh_w[c] - comm_deg[c] * node_deg[v] / two_w;
                if gain > best_gain + 1e-12 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            comm_deg[best_c] += node_deg[v];
            if best_c != cv {
                comm[v] = best_c as u32;
                improved_any = true;
                gain_total += best_gain;
            }
        }
        if gain_total <= params.min_gain {
            break;
        }
    }
    (comm, improved_any)
}

/// Aggregates a meta graph by community labels (densified in the caller).
fn aggregate(mg: &MetaGraph, comm: &[u32], k: usize) -> MetaGraph {
    let mut edge_acc: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    let mut selfw = vec![0.0f64; k];
    for (v, c) in comm.iter().enumerate() {
        selfw[*c as usize] += mg.selfw[v];
    }
    for v in 0..mg.n() {
        let cv = comm[v];
        for &(u, w) in &mg.adj[v] {
            if (u as usize) < v {
                continue; // each undirected edge once
            }
            let cu = comm[u as usize];
            if cu == cv {
                selfw[cv as usize] += w;
            } else {
                let key = (cv.min(cu), cv.max(cu));
                *edge_acc.entry(key).or_insert(0.0) += w;
            }
        }
    }
    let mut adj = vec![Vec::new(); k];
    let mut total: f64 = selfw.iter().sum();
    for ((a, b), w) in edge_acc {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
        total += w;
    }
    MetaGraph { adj, selfw, total }
}

fn densify(comm: &mut [u32]) -> usize {
    let mut remap = std::collections::HashMap::new();
    let mut next = 0u32;
    for c in comm.iter_mut() {
        let e = remap.entry(*c).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        *c = *e;
    }
    next as usize
}

/// Runs Louvain over edge weights `weights`. Returns the final partition of
/// the original nodes.
pub fn cluster(g: &Graph, weights: &[f64], params: &LouvainParams) -> Clustering {
    let n = g.n();
    if n == 0 {
        return Clustering::from_labels(&[]);
    }
    let mut mg = MetaGraph::from_graph(g, weights);
    // node → current community of the ORIGINAL node.
    let mut assign: Vec<u32> = (0..n as u32).collect();
    for _ in 0..params.max_levels {
        let (mut comm, improved) = local_moves(&mg, params);
        if !improved {
            break;
        }
        let k = densify(&mut comm);
        for a in assign.iter_mut() {
            *a = comm[*a as usize];
        }
        if k == mg.n() {
            break; // no compression achieved
        }
        mg = aggregate(&mg, &comm, k);
    }
    Clustering::from_labels(&assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::{connected_caveman, planted_partition, PlantedConfig};
    use anc_graph::Graph;
    use anc_metrics::modularity;

    #[test]
    fn recovers_caveman_cliques() {
        let lg = connected_caveman(4, 8);
        let w = vec![1.0; lg.graph.m()];
        let c = cluster(&lg.graph, &w, &LouvainParams::default());
        let truth = Clustering::from_labels(&lg.labels);
        let score = anc_metrics::nmi(&c, &truth);
        assert!(score > 0.95, "Louvain should nail cliques, NMI = {score}");
    }

    #[test]
    fn achieves_high_modularity_on_planted() {
        let cfg = PlantedConfig {
            n: 300,
            communities: 6,
            avg_intra_degree: 10.0,
            mixing: 0.1,
            size_exponent: 0.0,
        };
        let lg = planted_partition(&cfg, 5);
        let w = vec![1.0; lg.graph.m()];
        let c = cluster(&lg.graph, &w, &LouvainParams::default());
        let q = modularity(&lg.graph, &c, |_| 1.0);
        let q_truth = modularity(&lg.graph, &Clustering::from_labels(&lg.labels), |_| 1.0);
        assert!(q > 0.6, "modularity {q}");
        assert!(q >= q_truth - 0.05, "Louvain ({q}) should match truth ({q_truth})");
    }

    #[test]
    fn weights_steer_partition() {
        // One clique with half its internal edges downweighted splits when
        // the cross weights dominate.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let mut w = vec![1.0; g.m()];
        let c1 = cluster(&g, &w, &LouvainParams::default());
        assert_eq!(c1.num_clusters(), 2);
        // Crank up the bridge: communities merge.
        w[g.edge_id(2, 3).unwrap() as usize] = 100.0;
        let c2 = cluster(&g, &w, &LouvainParams::default());
        assert!(c2.label(2) == c2.label(3));
    }

    #[test]
    fn handles_disconnected_and_empty() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let w = vec![1.0; g.m()];
        let c = cluster(&g, &w, &LouvainParams::default());
        assert_eq!(c.num_clusters(), 2);
        let g0 = Graph::from_edges(0, &[]);
        let c0 = cluster(&g0, &[], &LouvainParams::default());
        assert_eq!(c0.num_clusters(), 0);
    }

    #[test]
    fn tends_to_few_large_clusters() {
        // The paper criticizes LOUV for finding far fewer clusters than the
        // ground truth; verify the tendency on a many-small-communities graph.
        let cfg = PlantedConfig::default_for(800);
        let lg = planted_partition(&cfg, 9);
        let w = vec![1.0; lg.graph.m()];
        let c = cluster(&lg.graph, &w, &LouvainParams::default());
        let truth_k = lg.num_communities();
        assert!(c.num_clusters() < truth_k, "Louvain {} vs truth {truth_k}", c.num_clusters());
    }
}
