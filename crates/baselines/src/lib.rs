//! # anc-baselines
//!
//! From-scratch implementations of every method the paper compares against
//! (Section VI, "Baseline Methods"), plus spectral clustering, which the
//! paper uses as its ground-truth oracle on activation snapshots:
//!
//! * [`scan`] — SCAN (Xu et al., KDD 2007): ε-µ structural clustering with
//!   cores, hubs and outliers. Offline.
//! * [`attractor`] — Attractor (Shao et al., KDD 2015): distance dynamics
//!   iterated until edge distances polarize. Offline; the method whose
//!   ~50-iteration propagation ANC replaces with shortest distances.
//! * [`louvain`] — Louvain (Blondel et al. 2008): greedy weighted
//!   modularity maximization. Offline; also the base of DYNA.
//! * [`dyna`] — a DynaMo-style (Zhuang et al. 2021) incremental modularity
//!   maximizer over edge-weight updates. Online. See DESIGN.md §3 for the
//!   substitution notes.
//! * [`lwep`] — an LWEP-style (Wang, Lai, Yu 2013) weighted label
//!   propagation stream clusterer. Online; deliberately retains the
//!   reference method's expensive per-timestep global work.
//! * [`spectral`] — normalized spectral clustering (Ng, Jordan, Weiss 2001)
//!   with orthogonal iteration and k-means++, the paper's ground-truth
//!   generator for activation snapshots.
//!
//! All offline baselines share the signature
//! `fn cluster(g: &Graph, weights: &[f64], …) -> Clustering` where `weights`
//! is the current (decayed) edge activeness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attractor;
pub mod dyna;
pub mod louvain;
pub mod lwep;
pub mod scan;
pub mod spectral;
