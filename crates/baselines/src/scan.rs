//! SCAN — Structural Clustering Algorithm for Networks (Xu et al., KDD
//! 2007).
//!
//! Uses the structural similarity over closed neighborhoods
//! `σ(u,v) = |Γ(u) ∩ Γ(v)| / √(|Γ(u)|·|Γ(v)|)` with `Γ(v) = N(v) ∪ {v}`;
//! nodes with at least `µ` ε-similar neighbors are cores, cores grow
//! clusters over structure-reachable nodes, the rest become hubs/outliers
//! (noise here). A weighted variant substitutes edge weights for counts so
//! the baseline can track activation snapshots.

use anc_graph::{Graph, NodeId};
use anc_metrics::{Clustering, NOISE};

/// SCAN parameters.
#[derive(Clone, Copy, Debug)]
pub struct ScanParams {
    /// Similarity threshold ε ∈ (0, 1).
    pub epsilon: f64,
    /// Core threshold µ (number of ε-neighbors including the node itself).
    pub mu: usize,
}

impl Default for ScanParams {
    fn default() -> Self {
        Self { epsilon: 0.5, mu: 3 }
    }
}

/// Unweighted structural similarity over closed neighborhoods.
fn structural_similarity(g: &Graph, u: NodeId, v: NodeId) -> f64 {
    // |Γ(u) ∩ Γ(v)|: common open neighbors, plus u if u ∈ Γ(v) (adjacent),
    // plus v likewise. For an edge (u,v) both bonus terms apply.
    let mut common = g.common_neighbor_count(u, v);
    if g.has_edge(u, v) {
        common += 2; // u ∈ Γ(v) and v ∈ Γ(u)
    }
    let du = g.degree(u) + 1;
    let dv = g.degree(v) + 1;
    common as f64 / ((du as f64) * (dv as f64)).sqrt()
}

/// Weighted structural similarity: weighted common neighborhood over the
/// geometric mean of weighted degrees (self-weight 1 per node, mirroring the
/// closed neighborhood).
fn weighted_similarity(g: &Graph, weights: &[f64], wdeg: &[f64], u: NodeId, v: NodeId) -> f64 {
    let mut common = 0.0;
    g.for_common_neighbors(u, v, |_, e_ux, e_vx| {
        common += (weights[e_ux as usize] * weights[e_vx as usize]).sqrt();
    });
    if let Some(e) = g.edge_id(u, v) {
        common += 2.0 * weights[e as usize].sqrt();
    }
    let du = wdeg[u as usize] + 1.0;
    let dv = wdeg[v as usize] + 1.0;
    common / (du * dv).sqrt()
}

/// Runs SCAN on the unweighted structure.
pub fn cluster(g: &Graph, params: &ScanParams) -> Clustering {
    cluster_impl(g, params, |u, v| structural_similarity(g, u, v))
}

/// Runs weighted SCAN where edge weights are the current activeness.
pub fn cluster_weighted(g: &Graph, weights: &[f64], params: &ScanParams) -> Clustering {
    let mut wdeg = vec![0.0; g.n()];
    for (e, u, v) in g.iter_edges() {
        wdeg[u as usize] += weights[e as usize];
        wdeg[v as usize] += weights[e as usize];
    }
    cluster_impl(g, params, |u, v| weighted_similarity(g, weights, &wdeg, u, v))
}

/// Role of a node in a SCAN result (the paper's hubs-and-outliers
/// classification of non-members).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanRole {
    /// Belongs to a cluster.
    Member,
    /// Noise adjacent to two or more different clusters — a bridge.
    Hub,
    /// Noise adjacent to at most one cluster.
    Outlier,
}

/// Classifies every node of a SCAN clustering: members keep their cluster,
/// noise nodes split into hubs (neighbors in ≥ 2 clusters) and outliers.
pub fn classify_roles(g: &Graph, clustering: &Clustering) -> Vec<ScanRole> {
    (0..g.n() as NodeId)
        .map(|v| {
            if !clustering.is_noise(v) {
                return ScanRole::Member;
            }
            let mut seen = None;
            for &w in g.neighbors(v) {
                let l = clustering.label(w);
                if l == NOISE {
                    continue;
                }
                match seen {
                    None => seen = Some(l),
                    Some(prev) if prev != l => return ScanRole::Hub,
                    _ => {}
                }
            }
            ScanRole::Outlier
        })
        .collect()
}

fn cluster_impl<S: Fn(NodeId, NodeId) -> f64>(
    g: &Graph,
    params: &ScanParams,
    sim: S,
) -> Clustering {
    let n = g.n();
    // ε-neighborhood sizes (closed: the node counts as its own ε-neighbor).
    let mut eps_deg = vec![1usize; n];
    let mut eps_edge = vec![false; g.m()];
    for (e, u, v) in g.iter_edges() {
        if sim(u, v) >= params.epsilon {
            eps_edge[e as usize] = true;
            eps_deg[u as usize] += 1;
            eps_deg[v as usize] += 1;
        }
    }
    let is_core: Vec<bool> = (0..n).map(|v| eps_deg[v] >= params.mu).collect();

    // Grow clusters: BFS from each unvisited core over ε-edges; non-core
    // border members join but do not expand.
    let mut label = vec![NOISE; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as NodeId {
        if !is_core[s as usize] || label[s as usize] != NOISE {
            continue;
        }
        label[s as usize] = next;
        queue.push_back(s);
        while let Some(x) = queue.pop_front() {
            for (y, e) in g.edges_of(x) {
                if !eps_edge[e as usize] || label[y as usize] != NOISE {
                    continue;
                }
                label[y as usize] = next;
                if is_core[y as usize] {
                    queue.push_back(y);
                }
            }
        }
        next += 1;
    }
    // Hubs/outliers remain NOISE.
    Clustering::from_labels(&label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::connected_caveman;
    use anc_graph::Graph;

    #[test]
    fn similarity_range_and_symmetry() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        for u in 0..4u32 {
            for v in 0..4u32 {
                let s = structural_similarity(&g, u, v);
                assert!((0.0..=1.0 + 1e-12).contains(&s));
                assert!((s - structural_similarity(&g, v, u)).abs() < 1e-12);
            }
        }
        // Triangle edge is more similar than the pendant edge.
        assert!(structural_similarity(&g, 0, 1) > structural_similarity(&g, 2, 3));
    }

    #[test]
    fn recovers_caveman_cliques() {
        let lg = connected_caveman(4, 6);
        let c = cluster(&lg.graph, &ScanParams { epsilon: 0.6, mu: 3 });
        let truth = Clustering::from_labels(&lg.labels);
        let score = anc_metrics::nmi(&c, &truth);
        assert!(score > 0.9, "SCAN should nail cliques, NMI = {score}");
        assert_eq!(c.num_clusters(), 4);
    }

    #[test]
    fn extreme_epsilon_degenerates() {
        let lg = connected_caveman(3, 4);
        // ε > 1 keeps nothing (σ ≤ 1 even inside perfect cliques) → no cores.
        let strict = cluster(&lg.graph, &ScanParams { epsilon: 1.01, mu: 3 });
        assert_eq!(strict.num_clusters(), 0);
        // ε = 0 keeps everything → one cluster (connected graph, all cores).
        let loose = cluster(&lg.graph, &ScanParams { epsilon: 0.0, mu: 2 });
        assert_eq!(loose.num_clusters(), 1);
    }

    #[test]
    fn weighted_variant_tracks_activeness() {
        // Path community downweighted to near zero splits off.
        let lg = connected_caveman(2, 5);
        let g = &lg.graph;
        let hot: Vec<f64> =
            g.iter_edges()
                .map(|(_, u, v)| {
                    if lg.labels[u as usize] == 0 && lg.labels[v as usize] == 0 {
                        5.0
                    } else {
                        0.05
                    }
                })
                .collect();
        let c = cluster_weighted(g, &hot, &ScanParams { epsilon: 0.35, mu: 3 });
        // Clique 0 must survive as one cluster; clique 1's similarity shrinks.
        let c0: Vec<u32> = (0..5).map(|v| c.label(v)).collect();
        assert!(c0.iter().all(|&l| l == c0[0] && l != NOISE), "{c0:?}");
    }

    #[test]
    fn hubs_and_outliers() {
        // Two triangles bridged by a noise node 6; node 7 dangles off one
        // triangle; node 8 is isolated.
        let g = Graph::from_edges(
            9,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 6), (6, 3), (0, 7)],
        );
        let c = Clustering::from_groups(9, &[vec![0, 1, 2], vec![3, 4, 5]]);
        let roles = classify_roles(&g, &c);
        assert_eq!(roles[0], ScanRole::Member);
        assert_eq!(roles[6], ScanRole::Hub, "bridges two clusters");
        assert_eq!(roles[7], ScanRole::Outlier, "touches one cluster");
        assert_eq!(roles[8], ScanRole::Outlier, "isolated");
    }

    #[test]
    fn roles_on_real_scan_output() {
        let lg = connected_caveman(3, 5);
        let c = cluster(&lg.graph, &ScanParams { epsilon: 0.6, mu: 3 });
        let roles = classify_roles(&lg.graph, &c);
        assert_eq!(roles.len(), lg.graph.n());
        let members = roles.iter().filter(|&&r| r == ScanRole::Member).count();
        assert_eq!(members, c.num_assigned());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        let c = cluster(&g, &ScanParams::default());
        assert_eq!(c.num_clusters(), 0);
    }
}
