//! # anc-metrics
//!
//! Clustering-quality metrics used in the paper's evaluation (Section VI-A):
//!
//! * Ground-truth measures: **NMI** (Strehl & Ghosh normalization),
//!   **Purity**, **F1** (both best-match average-F1 à la Yang & Leskovec
//!   and pairwise F1), and the **Adjusted Rand Index**.
//! * Structural measures: weighted **Modularity** (Newman) and average
//!   **Conductance** (Yang & Leskovec).
//!
//! Plus the paper's evaluation conventions: clusters with fewer than 3 nodes
//! are treated as noise and removed ([`Clustering::filter_small`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustering;
mod ground_truth;
mod structural;

pub use clustering::{Clustering, NOISE};
pub use ground_truth::{ari, avg_f1, nmi, pairwise_f1, purity};
pub use structural::{avg_conductance, modularity};
