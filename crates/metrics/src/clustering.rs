//! The `Clustering` partition type shared by all algorithms and metrics.

use anc_graph::NodeId;

/// Cluster label marking a node as noise / unassigned.
///
/// The paper regards all clusters with fewer than 3 nodes as noise and
/// removes them before scoring (Section VI-A).
pub const NOISE: u32 = u32::MAX;

/// A (possibly partial) partition of `0..n` nodes into clusters.
///
/// Labels are dense in `0..num_clusters()` except for [`NOISE`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<u32>,
}

impl Clustering {
    /// Builds from raw labels; any label value is accepted and will be
    /// re-densified (NOISE is preserved).
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut c = Self { assignment: labels.to_vec() };
        c.densify();
        c
    }

    /// Builds from explicit member lists; unmentioned nodes become noise.
    ///
    /// # Panics
    /// Panics if a node appears in two groups or exceeds `n`.
    pub fn from_groups(n: usize, groups: &[Vec<NodeId>]) -> Self {
        let mut assignment = vec![NOISE; n];
        for (c, group) in groups.iter().enumerate() {
            for &v in group {
                assert!(assignment[v as usize] == NOISE, "node {v} assigned to multiple clusters");
                assignment[v as usize] = c as u32;
            }
        }
        Self { assignment }
    }

    /// The all-noise clustering over `n` nodes.
    pub fn all_noise(n: usize) -> Self {
        Self { assignment: vec![NOISE; n] }
    }

    /// Every node in its own singleton cluster.
    pub fn singletons(n: usize) -> Self {
        Self { assignment: (0..n as u32).collect() }
    }

    /// Number of nodes (including noise nodes).
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    /// Label of node `v` ([`NOISE`] if unassigned).
    #[inline]
    pub fn label(&self, v: NodeId) -> u32 {
        self.assignment[v as usize]
    }

    /// Whether node `v` is noise.
    #[inline]
    pub fn is_noise(&self, v: NodeId) -> bool {
        self.assignment[v as usize] == NOISE
    }

    /// Raw label slice.
    pub fn labels(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of clusters (excluding noise).
    pub fn num_clusters(&self) -> usize {
        self.assignment.iter().filter(|&&l| l != NOISE).max().map_or(0, |&m| m as usize + 1)
    }

    /// Number of non-noise nodes.
    pub fn num_assigned(&self) -> usize {
        self.assignment.iter().filter(|&&l| l != NOISE).count()
    }

    /// Sizes per cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_clusters()];
        for &l in &self.assignment {
            if l != NOISE {
                sizes[l as usize] += 1;
            }
        }
        sizes
    }

    /// Member lists per cluster id.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.num_clusters()];
        for (v, &l) in self.assignment.iter().enumerate() {
            if l != NOISE {
                groups[l as usize].push(v as NodeId);
            }
        }
        groups
    }

    /// Marks every cluster smaller than `min_size` as noise and re-densifies
    /// labels — the paper's "<3 nodes are noise" convention with
    /// `min_size = 3`.
    pub fn filter_small(&self, min_size: usize) -> Self {
        let sizes = self.sizes();
        let mut filtered = self.assignment.clone();
        for l in filtered.iter_mut() {
            if *l != NOISE && sizes[*l as usize] < min_size {
                *l = NOISE;
            }
        }
        let mut c = Self { assignment: filtered };
        c.densify();
        c
    }

    /// Remaps labels to a dense `0..k` range preserving noise.
    fn densify(&mut self) {
        let mut remap = std::collections::HashMap::new();
        let mut next = 0u32;
        for l in self.assignment.iter_mut() {
            if *l == NOISE {
                continue;
            }
            let entry = remap.entry(*l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *l = *entry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_densifies() {
        let c = Clustering::from_labels(&[5, 5, 9, NOISE, 9]);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(2), c.label(4));
        assert_ne!(c.label(0), c.label(2));
        assert!(c.is_noise(3));
        assert_eq!(c.num_assigned(), 4);
    }

    #[test]
    fn from_groups_and_back() {
        let c = Clustering::from_groups(5, &[vec![0, 2], vec![1, 3]]);
        assert_eq!(c.groups(), vec![vec![0, 2], vec![1, 3]]);
        assert!(c.is_noise(4));
        assert_eq!(c.sizes(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "multiple clusters")]
    fn overlapping_groups_panic() {
        Clustering::from_groups(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn filter_small_removes_and_densifies() {
        // cluster 0: 3 nodes, cluster 1: 2 nodes, cluster 2: 1 node
        let c = Clustering::from_labels(&[0, 0, 0, 1, 1, 2]);
        let f = c.filter_small(3);
        assert_eq!(f.num_clusters(), 1);
        assert_eq!(f.label(0), 0);
        assert!(f.is_noise(3));
        assert!(f.is_noise(5));
    }

    #[test]
    fn degenerate_constructors() {
        assert_eq!(Clustering::all_noise(3).num_clusters(), 0);
        let s = Clustering::singletons(3);
        assert_eq!(s.num_clusters(), 3);
        assert_eq!(s.sizes(), vec![1, 1, 1]);
    }
}
