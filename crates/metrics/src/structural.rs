//! Structural quality measures: modularity and conductance.

use anc_graph::{EdgeId, Graph};

use crate::{Clustering, NOISE};

/// Weighted Newman modularity
/// `Q = Σ_c [ W_in(c)/W  −  (vol(c) / 2W)² ]`
/// where `W` is the total edge weight, `W_in(c)` the weight inside cluster
/// `c`, and `vol(c)` the weighted degree sum of `c`'s members.
///
/// Noise nodes contribute to `W` and volumes but belong to no cluster —
/// matching how the paper's baselines are scored after noise filtering.
/// `weight(e)` must be non-negative; pass `|_| 1.0` for the unweighted case.
pub fn modularity<W: Fn(EdgeId) -> f64>(g: &Graph, c: &Clustering, weight: W) -> f64 {
    let k = c.num_clusters();
    if k == 0 {
        return 0.0;
    }
    let mut total = 0.0f64; // W: total weight over all edges
    let mut win = vec![0.0f64; k]; // intra-cluster weight
    let mut vol = vec![0.0f64; k]; // weighted volume per cluster
    for (e, u, v) in g.iter_edges() {
        let w = weight(e);
        debug_assert!(w >= 0.0, "modularity requires non-negative weights");
        total += w;
        let (lu, lv) = (c.label(u), c.label(v));
        if lu != NOISE {
            vol[lu as usize] += w;
        }
        if lv != NOISE {
            vol[lv as usize] += w;
        }
        if lu != NOISE && lu == lv {
            win[lu as usize] += w;
        }
    }
    if total <= 0.0 {
        return 0.0;
    }
    let two_w = 2.0 * total;
    (0..k).map(|i| win[i] / total - (vol[i] / two_w).powi(2)).sum()
}

/// Average weighted conductance over clusters:
/// `φ(c) = cut(c) / min(vol(c), vol(V \ c))`, averaged over non-noise
/// clusters. Lower is better. Clusters with zero volume score 1 (the
/// worst), matching the usual convention for degenerate clusters.
pub fn avg_conductance<W: Fn(EdgeId) -> f64>(g: &Graph, c: &Clustering, weight: W) -> f64 {
    let k = c.num_clusters();
    if k == 0 {
        return 1.0;
    }
    let mut cut = vec![0.0f64; k];
    let mut vol = vec![0.0f64; k];
    let mut total_vol = 0.0f64;
    for (e, u, v) in g.iter_edges() {
        let w = weight(e);
        total_vol += 2.0 * w;
        let (lu, lv) = (c.label(u), c.label(v));
        if lu != NOISE {
            vol[lu as usize] += w;
        }
        if lv != NOISE {
            vol[lv as usize] += w;
        }
        if lu != lv {
            if lu != NOISE {
                cut[lu as usize] += w;
            }
            if lv != NOISE {
                cut[lv as usize] += w;
            }
        }
    }
    let mut sum = 0.0;
    for i in 0..k {
        let denom = vol[i].min(total_vol - vol[i]);
        sum += if denom > 0.0 { (cut[i] / denom).min(1.0) } else { 1.0 };
    }
    sum / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::connected_caveman;
    use anc_graph::Graph;

    #[test]
    fn perfect_split_high_modularity_low_conductance() {
        let lg = connected_caveman(4, 6);
        let c = Clustering::from_labels(&lg.labels);
        let q = modularity(&lg.graph, &c, |_| 1.0);
        assert!(q > 0.6, "caveman modularity should be high, got {q}");
        let phi = avg_conductance(&lg.graph, &c, |_| 1.0);
        assert!(phi < 0.1, "caveman conductance should be low, got {phi}");
    }

    #[test]
    fn single_cluster_zero_modularity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = Clustering::from_labels(&[0, 0, 0, 0]);
        let q = modularity(&g, &c, |_| 1.0);
        assert!(q.abs() < 1e-12);
        // One cluster containing everything has zero cut.
        assert!(avg_conductance(&g, &c, |_| 1.0) <= 1.0);
    }

    #[test]
    fn random_split_near_zero_modularity() {
        let lg = connected_caveman(4, 6);
        // Assign nodes round-robin, ignoring structure.
        let labels: Vec<u32> = (0..lg.graph.n() as u32).map(|v| v % 4).collect();
        let c = Clustering::from_labels(&labels);
        let q = modularity(&lg.graph, &c, |_| 1.0);
        assert!(q < 0.2, "round-robin split should have low modularity, got {q}");
        let phi = avg_conductance(&lg.graph, &c, |_| 1.0);
        assert!(phi > 0.5, "round-robin split should have high conductance, got {phi}");
    }

    #[test]
    fn weights_matter() {
        // Two triangles joined by a heavy bridge: with the bridge weighted
        // heavily, the two-cluster split loses modularity.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let c = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let bridge = g.edge_id(2, 3).unwrap();
        let q_light = modularity(&g, &c, |e| if e == bridge { 0.1 } else { 1.0 });
        let q_heavy = modularity(&g, &c, |e| if e == bridge { 10.0 } else { 1.0 });
        assert!(q_light > q_heavy);
        let phi_light = avg_conductance(&g, &c, |e| if e == bridge { 0.1 } else { 1.0 });
        let phi_heavy = avg_conductance(&g, &c, |e| if e == bridge { 10.0 } else { 1.0 });
        assert!(phi_light < phi_heavy);
    }

    #[test]
    fn noise_only_is_degenerate() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let c = Clustering::all_noise(3);
        assert_eq!(modularity(&g, &c, |_| 1.0), 0.0);
        assert_eq!(avg_conductance(&g, &c, |_| 1.0), 1.0);
    }

    #[test]
    fn modularity_bounded() {
        let lg = connected_caveman(5, 4);
        let c = Clustering::from_labels(&lg.labels);
        let q = modularity(&lg.graph, &c, |_| 1.0);
        assert!((-0.5..=1.0).contains(&q));
    }
}
