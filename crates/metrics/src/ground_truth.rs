//! Ground-truth-based quality measures: NMI, Purity, F1.
//!
//! All measures are computed over the nodes that are non-noise in **both**
//! partitions (the paper filters sub-3-node clusters as noise before
//! scoring).

use crate::{Clustering, NOISE};

/// `(counts[ij], row_sums, col_sums, n)` of a contingency table.
type Contingency = (std::collections::HashMap<(u32, u32), f64>, Vec<f64>, Vec<f64>, f64);

/// Contingency table between two clusterings restricted to mutually assigned
/// nodes.
fn contingency(found: &Clustering, truth: &Clustering) -> Contingency {
    let kf = found.num_clusters();
    let kt = truth.num_clusters();
    let mut counts = std::collections::HashMap::new();
    let mut rows = vec![0.0; kf];
    let mut cols = vec![0.0; kt];
    let mut n = 0.0;
    for v in 0..found.n().min(truth.n()) {
        let (a, b) = (found.label(v as u32), truth.label(v as u32));
        if a == NOISE || b == NOISE {
            continue;
        }
        *counts.entry((a, b)).or_insert(0.0) += 1.0;
        rows[a as usize] += 1.0;
        cols[b as usize] += 1.0;
        n += 1.0;
    }
    (counts, rows, cols, n)
}

/// Normalized Mutual Information with the Strehl & Ghosh (2002) geometric
/// normalization: `NMI = I(X; Y) / sqrt(H(X) · H(Y))` ∈ [0, 1].
///
/// Returns 0 when either partition carries no information (a single cluster
/// or no assigned nodes).
pub fn nmi(found: &Clustering, truth: &Clustering) -> f64 {
    let (counts, rows, cols, n) = contingency(found, truth);
    if n == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (&(a, b), &c) in &counts {
        let pij = c / n;
        let pi = rows[a as usize] / n;
        let pj = cols[b as usize] / n;
        if pij > 0.0 {
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    let h = |sums: &[f64]| -> f64 {
        sums.iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| {
                let p = s / n;
                -p * p.ln()
            })
            .sum()
    };
    let (hx, hy) = (h(&rows), h(&cols));
    if hx <= 0.0 || hy <= 0.0 {
        return 0.0;
    }
    (mi / (hx * hy).sqrt()).clamp(0.0, 1.0)
}

/// Purity: each found cluster is credited with its majority ground-truth
/// label; `purity = (Σ_c max_t |c ∩ t|) / N` ∈ [0, 1].
pub fn purity(found: &Clustering, truth: &Clustering) -> f64 {
    let (counts, _, _, n) = contingency(found, truth);
    if n == 0.0 {
        return 0.0;
    }
    let mut best = std::collections::HashMap::<u32, f64>::new();
    for (&(a, _), &c) in &counts {
        let e = best.entry(a).or_insert(0.0);
        if c > *e {
            *e = c;
        }
    }
    best.values().sum::<f64>() / n
}

/// Best-match average F1 (Yang & Leskovec 2015): the average of
/// (i) the mean over found clusters of the best F1 against any truth cluster
/// and (ii) the symmetric mean over truth clusters.
pub fn avg_f1(found: &Clustering, truth: &Clustering) -> f64 {
    let (counts, rows, cols, n) = contingency(found, truth);
    if n == 0.0 || rows.is_empty() || cols.is_empty() {
        return 0.0;
    }
    // f1[(a,b)] = 2|a∩b| / (|a| + |b|)
    let mut best_for_found = vec![0.0f64; rows.len()];
    let mut best_for_truth = vec![0.0f64; cols.len()];
    for (&(a, b), &c) in &counts {
        let f1 = 2.0 * c / (rows[a as usize] + cols[b as usize]);
        if f1 > best_for_found[a as usize] {
            best_for_found[a as usize] = f1;
        }
        if f1 > best_for_truth[b as usize] {
            best_for_truth[b as usize] = f1;
        }
    }
    // Weight by cluster size so empty-after-filter clusters don't distort.
    let mean_found: f64 = best_for_found.iter().zip(&rows).map(|(f, r)| f * r).sum::<f64>() / n;
    let mean_truth: f64 = best_for_truth.iter().zip(&cols).map(|(f, c)| f * c).sum::<f64>() / n;
    0.5 * (mean_found + mean_truth)
}

/// Adjusted Rand Index (Hubert & Arabie 1985): pair-counting agreement
/// corrected for chance; 1 for identical partitions, ≈0 for independent
/// ones, can be negative for adversarial ones.
pub fn ari(found: &Clustering, truth: &Clustering) -> f64 {
    let (counts, rows, cols, n) = contingency(found, truth);
    if n < 2.0 {
        return 0.0;
    }
    let c2 = |x: f64| x * (x - 1.0) / 2.0;
    let sum_ij: f64 = counts.values().map(|&c| c2(c)).sum();
    let sum_i: f64 = rows.iter().map(|&r| c2(r)).sum();
    let sum_j: f64 = cols.iter().map(|&c| c2(c)).sum();
    let expected = sum_i * sum_j / c2(n);
    let max_index = 0.5 * (sum_i + sum_j);
    if (max_index - expected).abs() < 1e-300 {
        // Degenerate case (e.g. both partitions all singletons): perfect
        // agreement scores 1, anything else 0 — the sklearn convention.
        return if (sum_ij - sum_i).abs() < 1e-12 && (sum_ij - sum_j).abs() < 1e-12 {
            1.0
        } else {
            0.0
        };
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Pairwise F1: precision/recall over node pairs co-clustered in the found
/// vs. truth partitions.
pub fn pairwise_f1(found: &Clustering, truth: &Clustering) -> f64 {
    let (counts, rows, cols, n) = contingency(found, truth);
    if n == 0.0 {
        return 0.0;
    }
    let pairs = |x: f64| x * (x - 1.0) / 2.0;
    let tp: f64 = counts.values().map(|&c| pairs(c)).sum();
    let found_pairs: f64 = rows.iter().map(|&r| pairs(r)).sum();
    let truth_pairs: f64 = cols.iter().map(|&c| pairs(c)).sum();
    if found_pairs == 0.0 || truth_pairs == 0.0 || tp == 0.0 {
        return 0.0;
    }
    let precision = tp / found_pairs;
    let recall = tp / truth_pairs;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> (Clustering, Clustering) {
        let labels = [0u32, 0, 0, 1, 1, 1, 2, 2, 2];
        (Clustering::from_labels(&labels), Clustering::from_labels(&labels))
    }

    #[test]
    fn identical_partitions_score_one() {
        let (a, b) = perfect();
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        assert!((purity(&a, &b) - 1.0).abs() < 1e-12);
        assert!((avg_f1(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pairwise_f1(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_permutation_is_invariant() {
        let truth = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let permuted = Clustering::from_labels(&[7, 7, 7, 3, 3, 3]);
        assert!((nmi(&permuted, &truth) - 1.0).abs() < 1e-12);
        assert!((purity(&permuted, &truth) - 1.0).abs() < 1e-12);
        assert!((avg_f1(&permuted, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_has_zero_nmi() {
        let truth = Clustering::from_labels(&[0, 0, 1, 1]);
        let trivial = Clustering::from_labels(&[0, 0, 0, 0]);
        assert_eq!(nmi(&trivial, &truth), 0.0);
        // Purity of the trivial clustering is the largest class share.
        assert!((purity(&trivial, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn singletons_have_perfect_purity_but_poor_f1() {
        let truth = Clustering::from_labels(&[0, 0, 0, 1, 1, 1]);
        let single = Clustering::singletons(6);
        assert!((purity(&single, &truth) - 1.0).abs() < 1e-12);
        assert!(pairwise_f1(&single, &truth) < 0.01);
        assert!(avg_f1(&single, &truth) < 0.6);
    }

    #[test]
    fn noise_nodes_excluded() {
        let truth = Clustering::from_labels(&[0, 0, 1, 1, NOISE]);
        let found = Clustering::from_labels(&[0, 0, 1, 1, 0]);
        // Node 4 is noise in truth → ignored; scores are perfect.
        assert!((nmi(&found, &truth) - 1.0).abs() < 1e-12);
        assert!((purity(&found, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_half_scores_below_one() {
        let truth = Clustering::from_labels(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let found = Clustering::from_labels(&[0, 0, 1, 1, 0, 0, 1, 1]);
        assert!(nmi(&found, &truth) < 0.1);
        assert!((purity(&found, &truth) - 0.5).abs() < 1e-12);
        assert!(pairwise_f1(&found, &truth) < 0.5);
    }

    #[test]
    fn empty_inputs() {
        let a = Clustering::all_noise(4);
        let b = Clustering::from_labels(&[0, 0, 1, 1]);
        assert_eq!(nmi(&a, &b), 0.0);
        assert_eq!(purity(&a, &b), 0.0);
        assert_eq!(avg_f1(&a, &b), 0.0);
        assert_eq!(pairwise_f1(&a, &b), 0.0);
    }

    #[test]
    fn ari_identical_and_independent() {
        let truth = Clustering::from_labels(&[0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert!((ari(&truth, &truth) - 1.0).abs() < 1e-12);
        // Round robin splits every true pair — worse than chance, so the
        // chance-corrected index goes negative (here exactly −1/3).
        let rr = Clustering::from_labels(&[0, 1, 2, 0, 1, 2, 0, 1, 2]);
        let score = ari(&rr, &truth);
        assert!(score < 0.0, "adversarial partition must be below chance, got {score}");
        assert!((score + 1.0 / 3.0).abs() < 1e-12);
        // Permuted labels stay perfect.
        let perm = Clustering::from_labels(&[5, 5, 5, 9, 9, 9, 1, 1, 1]);
        assert!((ari(&perm, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_degenerate_inputs() {
        // Single cluster vs itself: agreement is trivially perfect.
        let a = Clustering::from_labels(&[0, 0, 0, 0]);
        assert_eq!(ari(&a, &a), 1.0);
        // All singletons vs themselves: likewise (sklearn convention).
        let s = Clustering::singletons(4);
        assert_eq!(ari(&s, &s), 1.0);
        // Singletons vs one block: zero pair agreement possible → 0.
        assert_eq!(ari(&s, &a), 0.0);
        let noise = Clustering::all_noise(4);
        assert_eq!(ari(&noise, &a), 0.0);
    }

    #[test]
    fn finer_partition_monotonicity_sanity() {
        // Splitting a true cluster in half retains purity 1 but lowers F1.
        let truth = Clustering::from_labels(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let split = Clustering::from_labels(&[0, 0, 2, 2, 1, 1, 3, 3]);
        assert!((purity(&split, &truth) - 1.0).abs() < 1e-12);
        assert!(avg_f1(&split, &truth) < 1.0);
        assert!(pairwise_f1(&split, &truth) < 1.0);
    }
}
