//! Property tests for the quality metrics: axioms that must hold for any
//! partition pair (ranges, symmetry where applicable, permutation
//! invariance, self-agreement).

use anc_metrics::{ari, avg_conductance, avg_f1, modularity, nmi, pairwise_f1, purity, Clustering};
use proptest::prelude::*;

fn labels_strategy() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (4usize..60).prop_flat_map(|n| {
        let a = prop::collection::vec(0u32..5, n);
        let b = prop::collection::vec(0u32..5, n);
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ranges_and_self_agreement((a, b) in labels_strategy()) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        for (name, v) in [
            ("nmi", nmi(&ca, &cb)),
            ("purity", purity(&ca, &cb)),
            ("avg_f1", avg_f1(&ca, &cb)),
            ("pairwise_f1", pairwise_f1(&ca, &cb)),
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{} = {} out of range", name, v);
        }
        let r = ari(&ca, &cb);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "ari = {}", r);
        // Self-agreement is maximal (when the partition is informative).
        if ca.num_clusters() >= 2 {
            prop_assert!((nmi(&ca, &ca) - 1.0).abs() < 1e-9);
            prop_assert!((ari(&ca, &ca) - 1.0).abs() < 1e-9);
            prop_assert!((avg_f1(&ca, &ca) - 1.0).abs() < 1e-9);
        }
        prop_assert!((purity(&ca, &ca) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nmi_is_symmetric((a, b) in labels_strategy()) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        prop_assert!((nmi(&ca, &cb) - nmi(&cb, &ca)).abs() < 1e-9);
        prop_assert!((ari(&ca, &cb) - ari(&cb, &ca)).abs() < 1e-9);
        prop_assert!((pairwise_f1(&ca, &cb) - pairwise_f1(&cb, &ca)).abs() < 1e-9);
        prop_assert!((avg_f1(&ca, &cb) - avg_f1(&cb, &ca)).abs() < 1e-9);
    }

    #[test]
    fn permutation_invariance((a, b) in labels_strategy()) {
        let ca = Clustering::from_labels(&a);
        let cb = Clustering::from_labels(&b);
        // Relabel `a` through a fixed permutation of label ids.
        let perm: Vec<u32> = a.iter().map(|&l| (l * 7 + 3) % 11).collect();
        let cp = Clustering::from_labels(&perm);
        // The permutation map l → (7l+3) mod 11 is injective on 0..5, so cp
        // is the same partition as ca.
        prop_assert!((nmi(&cp, &cb) - nmi(&ca, &cb)).abs() < 1e-9);
        prop_assert!((purity(&cp, &cb) - purity(&ca, &cb)).abs() < 1e-9);
        prop_assert!((ari(&cp, &cb) - ari(&ca, &cb)).abs() < 1e-9);
    }

    #[test]
    fn structural_metrics_bounded((a, _) in labels_strategy()) {
        let n = a.len();
        // A ring graph over the same node count.
        let edges: Vec<(u32, u32)> =
            (0..n as u32).map(|v| (v, (v + 1) % n as u32)).collect();
        let g = anc_graph::Graph::from_edges(n, &edges);
        let c = Clustering::from_labels(&a);
        let q = modularity(&g, &c, |_| 1.0);
        prop_assert!((-1.0..=1.0).contains(&q), "modularity {}", q);
        let phi = avg_conductance(&g, &c, |_| 1.0);
        prop_assert!((0.0..=1.0).contains(&phi), "conductance {}", phi);
    }

    #[test]
    fn filter_small_only_removes((a, _) in labels_strategy()) {
        let c = Clustering::from_labels(&a);
        let f = c.filter_small(3);
        prop_assert!(f.num_clusters() <= c.num_clusters());
        prop_assert!(f.num_assigned() <= c.num_assigned());
        // Every surviving cluster has >= 3 members.
        prop_assert!(f.sizes().iter().all(|&s| s >= 3));
        // Nodes that survive keep their co-membership.
        for u in 0..f.n() as u32 {
            for v in 0..f.n() as u32 {
                if !f.is_noise(u) && !f.is_noise(v) {
                    prop_assert_eq!(
                        f.label(u) == f.label(v),
                        c.label(u) == c.label(v)
                    );
                }
            }
        }
    }
}
