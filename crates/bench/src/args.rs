//! Minimal CLI argument parsing shared by the experiment binaries
//! (`--scale <f64>`, `--seed <u64>`, `--datasets A,B,C`, plus free-form
//! flags), avoiding an external dependency.

/// Parsed harness arguments.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Dataset size multiplier (default depends on the experiment).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Explicit dataset list (names from the registry); empty = default.
    pub datasets: Vec<String>,
    /// Remaining boolean flags (e.g. `--full`, `--quality`).
    pub flags: Vec<String>,
}

impl HarnessArgs {
    /// Parses `std::env::args` with the given default scale.
    pub fn parse(default_scale: f64) -> Self {
        Self::from_iter(std::env::args().skip(1), default_scale)
    }

    /// Parses an explicit iterator (testable).
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I, default_scale: f64) -> Self {
        let mut out =
            Self { scale: default_scale, seed: 42, datasets: Vec::new(), flags: Vec::new() };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a float"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a u64"));
                }
                "--datasets" => {
                    let list = it.next().unwrap_or_default();
                    out.datasets = list.split(',').map(|s| s.trim().to_string()).collect();
                }
                flag if flag.starts_with("--") => {
                    out.flags.push(flag.trim_start_matches("--").to_string())
                }
                other => panic!("unrecognized argument: {other}"),
            }
        }
        out
    }

    /// Whether a boolean flag was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = HarnessArgs::from_iter(Vec::<String>::new(), 0.5);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 42);
        assert!(a.datasets.is_empty());
    }

    #[test]
    fn full_parse() {
        let a = HarnessArgs::from_iter(
            ["--scale", "0.1", "--seed", "7", "--datasets", "CO,FB", "--quality"]
                .into_iter()
                .map(String::from),
            1.0,
        );
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.seed, 7);
        assert_eq!(a.datasets, vec!["CO", "FB"]);
        assert!(a.has("quality"));
        assert!(!a.has("full"));
    }
}
