//! Table printing and JSON result persistence for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// A simple fixed-width table printer (stdout), matching the row/column
/// shape of the paper's tables.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 fraction digits ("-" for NaN).
pub fn f3(x: f64) -> String {
    if x.is_nan() {
        "-".into()
    } else {
        format!("{x:.3}")
    }
}

/// Formats a duration in seconds with adaptive precision (matching the
/// paper's mixed-magnitude time tables).
pub fn secs(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.1}")
    } else if x >= 0.01 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

/// Writes a JSON value to `results/<name>.json` relative to the workspace
/// root (created on demand). Returns the path written.
pub fn write_json(name: &str, value: &serde_json::Value) -> std::io::Result<std::path::PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(serde_json::to_string_pretty(value).unwrap().as_bytes())?;
    Ok(path)
}

fn results_dir() -> std::path::PathBuf {
    // Prefer the workspace root (two levels above this crate's manifest at
    // runtime we only have CWD); fall back to ./results.
    let cwd = std::env::current_dir().unwrap_or_else(|_| Path::new(".").to_path_buf());
    cwd.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with('1'));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f3(f64::NAN), "-");
        assert_eq!(secs(123.456), "123.5");
        assert_eq!(secs(0.5), "0.5000");
        assert!(secs(1e-5).contains('e'));
    }
}
