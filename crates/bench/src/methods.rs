//! Method wrappers and scoring shared by the experiment binaries.

use anc_baselines::{attractor, louvain, scan};
use anc_core::{AncEngine, ClusterMode, Pyramids};
use anc_graph::Graph;
use anc_metrics::{avg_conductance, avg_f1, modularity, nmi, purity, Clustering};

/// The paper's five evaluation measures for one method on one snapshot.
#[derive(Clone, Copy, Debug, Default)]
pub struct Scores {
    /// Newman modularity (higher better).
    pub modularity: f64,
    /// Average conductance (lower better).
    pub conductance: f64,
    /// Normalized mutual information vs ground truth.
    pub nmi: f64,
    /// Purity vs ground truth.
    pub purity: f64,
    /// Best-match average F1 vs ground truth.
    pub f1: f64,
    /// Number of clusters after noise filtering.
    pub clusters: usize,
}

/// Scores a clustering against ground truth labels, applying the paper's
/// noise rule (clusters with < 3 nodes are removed, Section VI-A).
pub fn score(g: &Graph, weights: &[f64], found: &Clustering, truth: &[u32]) -> Scores {
    let found = found.filter_small(3);
    let truth_c = Clustering::from_labels(truth).filter_small(3);
    Scores {
        modularity: modularity(g, &found, |e| weights[e as usize]),
        conductance: avg_conductance(g, &found, |e| weights[e as usize]),
        nmi: nmi(&found, &truth_c),
        purity: purity(&found, &truth_c),
        f1: avg_f1(&found, &truth_c),
        clusters: found.num_clusters(),
    }
}

/// Picks the granularity level whose (noise-filtered) cluster count is
/// closest to `target_k` — the paper's protocol: "the cluster number of all
/// our methods will select to be close to the ground truth number among
/// granularities".
/// Only levels from the `Θ(√n)` entry granularity down to the finest are
/// considered — the operating window of Problem 1 (coarser levels vote
/// nearly every edge in, where DirectedCluster degenerates to a pure
/// degree-orientation artifact; the paper's own query experiments use the
/// same window, Fig. 7). Ties prefer the finer level.
/// Matching is by log-ratio `|ln(k / target)|` (cluster counts vary over
/// orders of magnitude across levels, so absolute differences would let a
/// degenerate near-empty level "win" against target counts below every
/// usable level's range). Levels whose filtered clustering is empty or
/// covers less than a tenth as many nodes as the best-covered candidate are
/// skipped — a level that assigns almost nobody can score spuriously well
/// on set-overlap measures. Ties prefer the finer level.
pub fn pick_level(g: &Graph, pyr: &Pyramids, target_k: usize, mode: ClusterMode) -> usize {
    let floor_level = pyr.default_level();
    let target = target_k.max(1) as f64;
    let candidates: Vec<(usize, usize, usize)> = (floor_level..pyr.num_levels())
        .map(|level| {
            let c = anc_core::cluster::cluster_all(g, pyr, level, mode).filter_small(3);
            (level, c.num_clusters(), c.num_assigned())
        })
        .collect();
    let max_assigned = candidates.iter().map(|&(_, _, a)| a).max().unwrap_or(0);
    let mut best = (pyr.num_levels() - 1, f64::INFINITY);
    for &(level, k, assigned) in candidates.iter().rev() {
        if k == 0 || assigned * 10 < max_assigned {
            continue;
        }
        let diff = (k as f64 / target).ln().abs();
        if diff < best.1 {
            best = (level, diff);
        }
    }
    best.0
}

/// Runs the ANC clustering at the level closest to `target_k`.
pub fn anc_cluster_near(
    g: &Graph,
    pyr: &Pyramids,
    target_k: usize,
    mode: ClusterMode,
) -> Clustering {
    let level = pick_level(g, pyr, target_k, mode);
    anc_core::cluster::cluster_all(g, pyr, level, mode)
}

/// Offline baselines of Table III / Table IV, run on a weighted snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Offline {
    /// SCAN (weighted variant for snapshots).
    Scan,
    /// Attractor.
    Attr,
    /// Louvain.
    Louv,
    /// ANCF with this many reinforcement repetitions.
    AncF(usize),
}

impl Offline {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Offline::Scan => "SCAN".into(),
            Offline::Attr => "ATTR".into(),
            Offline::Louv => "LOUV".into(),
            Offline::AncF(r) => format!("ANCF{r}"),
        }
    }

    /// Runs the method on the snapshot. For `AncF`, `engine` supplies the
    /// activeness state and `target_k` the granularity pick.
    pub fn run(
        &self,
        g: &Graph,
        weights: &[f64],
        engine: Option<&mut AncEngine>,
        target_k: usize,
    ) -> Clustering {
        match self {
            Offline::Scan => {
                scan::cluster_weighted(g, weights, &scan::ScanParams { epsilon: 0.4, mu: 3 })
            }
            Offline::Attr => {
                attractor::cluster(g, weights, &attractor::AttractorParams::default()).0
            }
            Offline::Louv => louvain::cluster(g, weights, &louvain::LouvainParams::default()),
            Offline::AncF(rep) => {
                let engine = engine.expect("ANCF needs the engine's activeness");
                let snap = engine.offline_snapshot(*rep);
                anc_cluster_near(g, &snap.pyramids, target_k, ClusterMode::Power)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_core::AncConfig;
    use anc_graph::gen::connected_caveman;

    #[test]
    fn score_clean_partition() {
        let lg = connected_caveman(4, 6);
        let w = vec![1.0; lg.graph.m()];
        let c = Clustering::from_labels(&lg.labels);
        let s = score(&lg.graph, &w, &c, &lg.labels);
        assert!(s.nmi > 0.99);
        assert!(s.purity > 0.99);
        assert!(s.f1 > 0.99);
        assert!(s.modularity > 0.5);
        assert!(s.conductance < 0.1);
        assert_eq!(s.clusters, 4);
    }

    #[test]
    fn pick_level_prefers_matching_granularity() {
        let lg = connected_caveman(8, 6);
        let w: Vec<f64> = lg
            .graph
            .iter_edges()
            .map(
                |(_, u, v)| if lg.labels[u as usize] == lg.labels[v as usize] { 0.2 } else { 60.0 },
            )
            .collect();
        let pyr = Pyramids::build(&lg.graph, &w, 4, 0.7, 5);
        let level = pick_level(&lg.graph, &pyr, 8, ClusterMode::Power);
        let c = anc_core::cluster::cluster_all(&lg.graph, &pyr, level, ClusterMode::Power)
            .filter_small(3);
        assert!(c.num_clusters() >= 4, "got {}", c.num_clusters());
    }

    #[test]
    fn offline_wrappers_run() {
        let lg = connected_caveman(3, 5);
        let w = vec![1.0; lg.graph.m()];
        let cfg = AncConfig { rep: 1, k: 2, ..Default::default() };
        let mut engine = AncEngine::new(lg.graph.clone(), cfg, 1);
        for method in [Offline::Scan, Offline::Attr, Offline::Louv, Offline::AncF(1)] {
            let c = method.run(&lg.graph, &w, Some(&mut engine), 3);
            assert!(c.n() == lg.graph.n(), "{} wrong n", method.name());
        }
        assert_eq!(Offline::AncF(7).name(), "ANCF7");
    }
}
