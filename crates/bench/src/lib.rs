//! # anc-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §5 for the experiment index) plus shared measurement and
//! reporting utilities.
//!
//! Binaries print the same rows/series the paper reports and additionally
//! write machine-readable JSON under `results/`. All binaries accept
//! `--scale <f>` to shrink the synthetic datasets (wall-clock vs fidelity)
//! and `--seed <u64>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod loadgen;
pub mod methods;
pub mod report;

use std::time::Instant;

/// Runs `f`, returning its result and elapsed seconds.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Percentile of a sample (p ∈ [0, 100]); sorts a copy.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p / 100.0) * (s.len() - 1) as f64).round() as usize;
    s[idx.min(s.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basic() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn time_measures() {
        let (v, secs) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
