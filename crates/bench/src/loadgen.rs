//! Closed-loop load generator for the serving layer (ISSUE 10).
//!
//! Drives a running `anc-server` TCP front end with a configurable number
//! of client connections, each issuing a fixed count of requests
//! back-to-back (closed loop: the next request leaves when the previous
//! response arrives, so offered load adapts to server speed and measured
//! latency is end-to-end, queueing included). The ingest:query mix is a
//! probability per request; queries split 60/30/10 between
//! `same_cluster`, cluster summaries, and member (zoom) listings.
//!
//! Activation timestamps come from one shared atomic tick, so
//! interleaving across connections keeps time approximately monotone (the
//! decay clock tolerates reordering — it only ever advances). Latencies
//! land in per-connection log-bucketed [`LatencyHistogram`]s merged into
//! one [`LoadReport`].

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use anc_core::ClusterMode;
use anc_server::{ErrorCode, LatencyHistogram, Request, Response, WireClient};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Workload shape for one [`closed_loop`] run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Concurrent client connections (one thread each).
    pub connections: usize,
    /// Requests per connection (closed loop).
    pub requests_per_conn: usize,
    /// Probability that a request is an ingest (the rest are queries).
    pub ingest_ratio: f64,
    /// Edges activated per ingest request.
    pub edges_per_ingest: usize,
    /// Ingests sharing one timestamp step (time advances every
    /// `ticks_per_step` ingests). Coarser time lets the writer merge
    /// same-timestamp runs into bigger coalesced batches.
    pub ticks_per_step: u64,
    /// Node count of the served network (query id range).
    pub n: u32,
    /// Edge count of the served network (ingest id range).
    pub m: u32,
    /// Level queried (must be in the server's published set).
    pub level: usize,
    /// Mode queried (must be in the server's published set).
    pub mode: ClusterMode,
    /// Base RNG seed (each connection derives its own).
    pub seed: u64,
}

/// Merged outcome of one [`closed_loop`] run.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Requests issued (ingests + queries).
    pub requests: u64,
    /// Ingest requests acknowledged.
    pub ingests: u64,
    /// Query requests answered.
    pub queries: u64,
    /// Ingests shed by backpressure (`Overloaded` replies — expected
    /// under saturation, reported separately from errors).
    pub shed: u64,
    /// Unexpected error replies or transport failures.
    pub errors: u64,
    /// Wall-clock of the whole run, seconds.
    pub wall_s: f64,
    /// End-to-end request latency (all request kinds), nanoseconds.
    pub latency: LatencyHistogram,
    /// End-to-end latency of query requests only, nanoseconds.
    pub query_latency: LatencyHistogram,
    /// End-to-end latency of ingest requests only, nanoseconds.
    pub ingest_latency: LatencyHistogram,
}

impl LoadReport {
    /// Completed requests per second over the run's wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.requests as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn merge_into(total: &mut LoadReport, part: &LoadReport) {
    total.requests += part.requests;
    total.ingests += part.ingests;
    total.queries += part.queries;
    total.shed += part.shed;
    total.errors += part.errors;
    total.latency.merge(&part.latency);
    total.query_latency.merge(&part.query_latency);
    total.ingest_latency.merge(&part.ingest_latency);
}

fn run_connection(
    addr: SocketAddr,
    cfg: &LoadConfig,
    conn_id: usize,
    tick: &AtomicU64,
) -> LoadReport {
    let mut report = LoadReport::default();
    let mut client = match WireClient::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            report.errors += 1;
            return report;
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (0x9E37_79B9 + conn_id as u64));
    for _ in 0..cfg.requests_per_conn {
        let is_ingest = rng.gen::<f64>() < cfg.ingest_ratio;
        let request = if is_ingest {
            let step = tick.fetch_add(1, Ordering::Relaxed) / cfg.ticks_per_step.max(1);
            let t = (step + 1) as f64 * 1e-2;
            let edges: Vec<u32> =
                (0..cfg.edges_per_ingest).map(|_| rng.gen_range(0..cfg.m)).collect();
            Request::Ingest { t, edges }
        } else {
            let kind = rng.gen_range(0u32..10);
            if kind < 6 {
                Request::SameCluster {
                    u: rng.gen_range(0..cfg.n),
                    v: rng.gen_range(0..cfg.n),
                    level: cfg.level,
                    mode: cfg.mode,
                }
            } else if kind < 9 {
                Request::ClusterSummary { level: cfg.level, mode: cfg.mode }
            } else {
                Request::Members { v: rng.gen_range(0..cfg.n), level: cfg.level, mode: cfg.mode }
            }
        };
        let start = Instant::now();
        let response = client.call(&request);
        let nanos = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        report.requests += 1;
        report.latency.record(nanos);
        if is_ingest {
            report.ingest_latency.record(nanos);
        } else {
            report.query_latency.record(nanos);
        }
        match response {
            Ok(Response::Error { code: ErrorCode::Overloaded, .. }) => report.shed += 1,
            Ok(Response::Error { .. }) | Err(_) => report.errors += 1,
            Ok(_) if is_ingest => report.ingests += 1,
            Ok(_) => report.queries += 1,
        }
    }
    report
}

/// Runs the closed-loop workload against a serving front end at `addr`
/// and returns the merged report.
pub fn closed_loop(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let tick = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut total = LoadReport::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|conn_id| {
                let tick = Arc::clone(&tick);
                scope.spawn(move || run_connection(addr, cfg, conn_id, &tick))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => merge_into(&mut total, &part),
                Err(_) => total.errors += 1,
            }
        }
    });
    total.wall_s = start.elapsed().as_secs_f64();
    total
}
