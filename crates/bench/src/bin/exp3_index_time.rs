//! **Exp 3 / Figure 5** — index construction time vs number of pyramids.
//!
//! Builds the pyramids index with k ∈ {2, 4, 8, 16} over the dataset ladder
//! and reports wall-clock seconds per build.
//!
//! Expected shape (paper): time grows linearly with k; denser graphs (MI,
//! OK stand-ins) cost more than equally-sized sparser ones, following the
//! `O(n log² n + m log n)` bound of Lemma 7.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp3_index_time
//! [--datasets CA,MI,...] [--scale f] [--seed s]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{write_json, Table};
use anc_bench::time;
use anc_core::Pyramids;
use anc_data::registry;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        ["CA", "MI", "LA", "CM", "IE", "GI", "EA", "DB"].iter().map(|s| s.to_string()).collect()
    } else {
        args.datasets.clone()
    };
    let ks = [2usize, 4, 8, 16];

    let mut table = Table::new({
        let mut h = vec!["dataset".to_string(), "n".to_string(), "m".to_string()];
        h.extend(ks.iter().map(|k| format!("k={k}")));
        h
    });
    let mut json = Vec::new();

    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let ds = spec.materialize_scaled(args.seed, args.scale);
        let g = &ds.graph;
        let w = vec![1.0f64; g.m()];
        let mut row = vec![name.clone(), g.n().to_string(), g.m().to_string()];
        for &k in &ks {
            let (pyr, secs) = time(|| Pyramids::build(g, &w, k, 0.7, args.seed));
            drop(pyr);
            eprintln!("[exp3] {name} k={k}: {secs:.3}s");
            row.push(format!("{secs:.3}"));
            json.push(serde_json::json!({
                "dataset": name, "n": g.n(), "m": g.m(), "k": k, "seconds": secs,
            }));
        }
        table.row(row);
    }

    println!("\n=== Figure 5: Index Time (seconds) ===");
    table.print();
    let path = write_json("exp3_index_time", &serde_json::json!(json)).unwrap();
    println!("\n[exp3] JSON written to {}", path.display());
}
