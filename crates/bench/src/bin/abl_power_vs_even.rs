//! **Ablation A1** — even vs power clustering under vote corruption.
//!
//! The paper motivates `DirectedCluster` (power clustering) by the error
//! amplification of even clustering: "a cluster can be over-expanded due to
//! any mis-clustering of two nodes of an edge". This ablation quantifies
//! that: starting from the true voted-edge set of a planted graph, flip a
//! growing fraction of edge votes at random and measure how NMI degrades
//! for each extraction mode.
//!
//! Expected shape: even clustering collapses quickly (a few false positive
//! votes merge whole communities); power clustering degrades gracefully.
//!
//! Usage: `cargo run --release -p anc-bench --bin abl_power_vs_even`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{f3, write_json, Table};
use anc_core::cluster::{even_clustering_with, power_clustering_with};
use anc_data::registry;
use anc_metrics::{nmi, Clustering};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let ds = registry::by_name("CA").unwrap().materialize_scaled(args.seed, args.scale);
    let g = &ds.graph;
    let truth = Clustering::from_labels(&ds.labels).filter_small(3);
    eprintln!("[ablA1] CA stand-in: n = {}, m = {}", g.n(), g.m());

    // Oracle votes: keep intra-community edges.
    let oracle: Vec<bool> =
        g.iter_edges().map(|(_, u, v)| ds.labels[u as usize] == ds.labels[v as usize]).collect();

    let mut table = Table::new(vec!["flip %", "even NMI", "power NMI", "even k", "power k"]);
    let mut json = Vec::new();
    for &flip_pct in &[0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ (flip_pct * 100.0) as u64);
        let mut votes = oracle.clone();
        let flips = ((g.m() as f64) * flip_pct / 100.0) as usize;
        for _ in 0..flips {
            let e = rng.gen_range(0..g.m());
            votes[e] = !votes[e];
        }
        let even = even_clustering_with(g, |e| votes[e as usize]).filter_small(3);
        let power = power_clustering_with(g, |e| votes[e as usize]).filter_small(3);
        let (ne, np) = (nmi(&even, &truth), nmi(&power, &truth));
        table.row(vec![
            format!("{flip_pct}"),
            f3(ne),
            f3(np),
            even.num_clusters().to_string(),
            power.num_clusters().to_string(),
        ]);
        json.push(serde_json::json!({
            "flip_pct": flip_pct, "even_nmi": ne, "power_nmi": np,
            "even_clusters": even.num_clusters(), "power_clusters": power.num_clusters(),
        }));
    }

    println!("\n=== Ablation A1: vote corruption (CA stand-in) ===");
    table.print();
    let path = write_json("abl_power_vs_even", &serde_json::json!(json)).unwrap();
    println!("\n[ablA1] JSON written to {}", path.display());
}
