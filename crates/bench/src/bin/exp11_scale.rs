//! **Exp 11** — million-node scale sweep: build, snapshot size, ingest,
//! query (DESIGN.md §11).
//!
//! Pushes n up to 10⁶ on the two synthetic families (planted-partition and
//! Barabási–Albert) and records, per (generator, n):
//!
//! * index build time and resident index bytes/node;
//! * snapshot bytes/node for every encoding — JSON (n ≤ 10⁵ only; the
//!   text encoding is infeasible at 10⁶), binary Exact, binary Compact —
//!   plus save/load wall times and the JSON/Exact compression ratio (the
//!   PR's ≥4× acceptance figure at n = 10⁵);
//! * ingest throughput through `activate_batch`;
//! * cold (`cluster_all` from scratch) and cached ([`ClusterCache`] hit)
//!   query latency.
//!
//! Everything lands in `results/BENCH_scale.json`.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp11_scale
//! [--smoke] [--scale f] [--seed u64]`
//!
//! `--smoke` shrinks the sweep to n = 2000 for CI; the full sweep is
//! n ∈ {10⁴, 10⁵, 10⁶}.

use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{cluster, AncConfig, AncEngine, ClusterCache, ClusterMode, SnapshotProfile};
use anc_data::stream;
use anc_graph::gen::{barabasi_albert, planted_partition, PlantedConfig};
use anc_graph::Graph;

/// JSON snapshots above this node count are skipped: the text encoding is
/// tens of bytes per float and the million-node row would serialize GBs.
const JSON_MAX_N: usize = 100_000;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn make_graph(family: &str, n: usize, seed: u64) -> Graph {
    match family {
        "planted" => planted_partition(&PlantedConfig::default_for(n), seed).graph,
        "ba" => barabasi_albert(n, 4, seed),
        other => panic!("unknown graph family {other}"),
    }
}

struct SnapshotStats {
    bytes: usize,
    save_s: f64,
    load_s: f64,
}

fn binary_stats(engine: &AncEngine, profile: SnapshotProfile) -> SnapshotStats {
    let mut buf = Vec::new();
    let (r, save_s) = time(|| engine.save_binary(&mut buf, profile));
    r.unwrap();
    let (restored, load_s) = time(|| AncEngine::load_binary(buf.as_slice()).unwrap());
    std::hint::black_box(restored.activations());
    SnapshotStats { bytes: buf.len(), save_s, load_s }
}

fn json_stats(engine: &AncEngine) -> SnapshotStats {
    let mut buf = Vec::new();
    let (r, save_s) = time(|| engine.save_json(&mut buf));
    r.unwrap();
    let (restored, load_s) = time(|| AncEngine::load_json(buf.as_slice()).unwrap());
    std::hint::black_box(restored.activations());
    SnapshotStats { bytes: buf.len(), save_s, load_s }
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    let smoke = args.has("smoke");
    let sizes: Vec<usize> = if smoke {
        vec![2_000]
    } else {
        [10_000usize, 100_000, 1_000_000]
            .iter()
            .map(|&n| ((n as f64 * args.scale) as usize).max(500))
            .collect()
    };
    let cfg = AncConfig { k: 2, rep: 1, ..Default::default() };

    let mut table = Table::new(vec![
        "family",
        "n",
        "build s",
        "index B/node",
        "json B/node",
        "exact B/node",
        "compact B/node",
        "json/exact",
        "acts/s",
        "cold q s",
        "cached q s",
    ]);
    let mut rows = Vec::new();
    let mut ratio_at_1e5 = f64::NAN;

    for &n in &sizes {
        for family in ["planted", "ba"] {
            let g = make_graph(family, n, args.seed);
            let m = g.m();
            eprintln!("[exp11] {family} n={n} m={m}: building index…");
            let (mut engine, build_s) = time(|| AncEngine::new(g, cfg.clone(), args.seed));
            let index_bytes = engine.memory_bytes();
            eprintln!(
                "[exp11] {family} n={n}: built in {build_s:.2}s, {:.1} B/node",
                index_bytes as f64 / n as f64
            );

            // --- Ingest: batched activations through the pipeline. -------
            let steps = 10usize;
            let target = if smoke { 5_000 } else { 50_000.min(10 * m) };
            let frac = (target as f64 / steps as f64 / m as f64).min(1.0);
            let s = stream::uniform_per_step(engine.graph(), steps, frac, args.seed ^ 0x11);
            let acts: usize = s.total_activations();
            let (_, ingest_s) = time(|| {
                for batch in &s.batches {
                    let _ = engine.activate_batch(&batch.edges, batch.time);
                }
            });
            let acts_per_s = acts as f64 / ingest_s;
            eprintln!("[exp11] {family} n={n}: {acts} acts in {ingest_s:.2}s ({acts_per_s:.0}/s)");

            // --- Snapshot encodings. -------------------------------------
            let exact = binary_stats(&engine, SnapshotProfile::Exact);
            let compact = binary_stats(&engine, SnapshotProfile::Compact);
            let json = if n <= JSON_MAX_N { Some(json_stats(&engine)) } else { None };
            let json_ratio = json.as_ref().map(|j| j.bytes as f64 / exact.bytes as f64);
            let compact_ratio = json.as_ref().map(|j| j.bytes as f64 / compact.bytes as f64);
            if let (Some(re), Some(rc)) = (json_ratio, compact_ratio) {
                eprintln!(
                    "[exp11] {family} n={n}: json {} B, exact {} B ({re:.2}x), compact {} B ({rc:.2}x)",
                    json.as_ref().map_or(0, |j| j.bytes),
                    exact.bytes,
                    compact.bytes
                );
                if n == 100_000 && family == "planted" {
                    ratio_at_1e5 = rc;
                }
            }

            // --- Query latency: cold vs cached. --------------------------
            let level = engine.default_level();
            let mut cold_samples = Vec::new();
            for _ in 0..3 {
                let (c, s) = time(|| {
                    cluster::cluster_all(
                        engine.graph(),
                        engine.pyramids(),
                        level,
                        ClusterMode::Power,
                    )
                });
                std::hint::black_box(c.num_clusters());
                cold_samples.push(s);
            }
            let cold_q = median(&mut cold_samples);
            let mut cache = ClusterCache::new(engine.num_levels());
            // First query fills the cache; the samples after it are hits.
            let (first, _) =
                cache.query(engine.graph(), engine.pyramids(), level, ClusterMode::Power);
            std::hint::black_box(first.num_clusters());
            let mut hit_samples = Vec::new();
            for _ in 0..5 {
                let ((c, stats), s) = time(|| {
                    cache.query(engine.graph(), engine.pyramids(), level, ClusterMode::Power)
                });
                std::hint::black_box((c.num_clusters(), stats.decision));
                hit_samples.push(s);
            }
            let cached_q = median(&mut hit_samples);

            let bpn = |b: usize| b as f64 / n as f64;
            table.row(vec![
                family.to_string(),
                n.to_string(),
                secs(build_s),
                format!("{:.1}", bpn(index_bytes)),
                json.as_ref().map_or("-".into(), |j| format!("{:.1}", bpn(j.bytes))),
                format!("{:.1}", bpn(exact.bytes)),
                format!("{:.1}", bpn(compact.bytes)),
                json_ratio.map_or("-".into(), |r| format!("{r:.2}x")),
                format!("{acts_per_s:.0}"),
                secs(cold_q),
                secs(cached_q),
            ]);
            rows.push(serde_json::json!({
                "family": family,
                "n": n,
                "m": m,
                "build_seconds": build_s,
                "index_bytes": index_bytes,
                "index_bytes_per_node": bpn(index_bytes),
                "json_bytes": json.as_ref().map_or(serde_json::Value::Null, |j| serde_json::json!(j.bytes)),
                "json_save_seconds": json.as_ref().map_or(serde_json::Value::Null, |j| serde_json::json!(j.save_s)),
                "json_load_seconds": json.as_ref().map_or(serde_json::Value::Null, |j| serde_json::json!(j.load_s)),
                "binary_exact_bytes": exact.bytes,
                "binary_exact_save_seconds": exact.save_s,
                "binary_exact_load_seconds": exact.load_s,
                "binary_compact_bytes": compact.bytes,
                "binary_compact_save_seconds": compact.save_s,
                "binary_compact_load_seconds": compact.load_s,
                "json_over_exact_ratio": json_ratio.map_or(serde_json::Value::Null, |r| serde_json::json!(r)),
                "json_over_compact_ratio": compact_ratio.map_or(serde_json::Value::Null, |r| serde_json::json!(r)),
                "ingest_activations": acts,
                "ingest_seconds": ingest_s,
                "ingest_acts_per_second": acts_per_s,
                "query_cold_seconds": cold_q,
                "query_cached_seconds": cached_q,
            }));
        }
    }

    println!("\n=== Exp 11: Scale Sweep ===");
    table.print();
    if ratio_at_1e5.is_finite() {
        println!("\n[exp11] JSON/Compact ratio at n=100000 (planted): {ratio_at_1e5:.2}x");
        assert!(
            ratio_at_1e5 >= 4.0,
            "binary snapshot must be >= 4x smaller than JSON at n=1e5, got {ratio_at_1e5:.2}x"
        );
    }
    let path = write_json(
        "BENCH_scale",
        &serde_json::json!({
            "smoke": smoke,
            "seed": args.seed,
            "rows": rows,
        }),
    )
    .unwrap();
    println!("[exp11] JSON written to {}", path.display());
}
