//! **Exp 10** — batch-ingestion pipeline throughput (DESIGN.md §7).
//!
//! Streams ~100k activations into the engine three ways and reports
//! ingest throughput plus the pipeline's [`BatchStats`] counters:
//!
//! * `serial` — the per-activation ANCO path (`activate` in a loop), the
//!   pre-pipeline baseline;
//! * `exact`  — `activate_batch` in [`BatchMode::Exact`]: bit-identical
//!   results, repairs grouped into one parallel fan-out per batch;
//! * `fused`  — `activate_batch` in [`BatchMode::Fused`]: σ deduplicated
//!   across the batch and recomputed in parallel.
//!
//! The batch modes are swept over `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8}; the
//! serial baseline is thread-independent. Results land in
//! `results/BENCH_update.json`.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp10_batch_ingest
//! [--scale f] [--seed s]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine, BatchMode, BatchStats};
use anc_data::stream;
use anc_graph::gen::{planted_partition, PlantedConfig};

fn main() {
    let args = HarnessArgs::parse(1.0);
    let n = ((4000.0 * args.scale) as usize).max(200);
    let lg = planted_partition(&PlantedConfig::default_for(n), args.seed);
    let g = lg.graph;
    let steps = 100usize;
    // ~100k activations at scale 1 (frac is per-step fraction of edges).
    let target = (100_000.0 * args.scale) as usize;
    let frac = (target as f64 / steps as f64 / g.m() as f64).min(1.0);
    let s = stream::uniform_per_step(&g, steps, frac, args.seed ^ 0x2a);
    let acts = s.total_activations();
    let cfg = AncConfig { rep: 1, ..Default::default() };
    eprintln!("[exp10] n={} m={} stream={} activations in {} batches", g.n(), g.m(), acts, steps);

    let mut table = Table::new(vec!["mode", "threads", "total sec", "acts/sec", "speedup"]);
    let mut runs = Vec::new();

    // Baseline: the per-activation path (repairs after every activation).
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let mut baseline = AncEngine::new(g.clone(), cfg.clone(), args.seed);
    let (_, serial_total) = time(|| {
        for batch in &s.batches {
            for &e in &batch.edges {
                baseline.activate(e, batch.time);
            }
        }
    });
    eprintln!("[exp10] serial: {serial_total:.3}s ({:.0} acts/s)", acts as f64 / serial_total);
    table.row(vec![
        "serial".into(),
        "-".into(),
        secs(serial_total),
        format!("{:.0}", acts as f64 / serial_total),
        "1.00x".into(),
    ]);
    runs.push(serde_json::json!({
        "mode": "serial", "threads": 1, "secs": serial_total,
        "acts_per_sec": acts as f64 / serial_total, "speedup_vs_serial": 1.0,
    }));

    for mode in [BatchMode::Exact, BatchMode::Fused] {
        for threads in [1usize, 2, 4, 8] {
            std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
            let cfg = AncConfig { batch: mode, ..cfg.clone() };
            let mut engine = AncEngine::new(g.clone(), cfg, args.seed);
            let mut agg = BatchStats::default();
            let (_, total) = time(|| {
                for batch in &s.batches {
                    let st = engine.activate_batch(&batch.edges, batch.time);
                    agg.dirty_edges += st.dirty_edges;
                    agg.sigma_recomputes += st.sigma_recomputes;
                    agg.repair_updates += st.repair_updates;
                    agg.repair_skips += st.repair_skips;
                }
            });
            // Honesty check: the exact mode must reproduce the baseline
            // similarities bit for bit.
            if mode == BatchMode::Exact {
                let identical = engine
                    .sim_anchored()
                    .iter()
                    .zip(baseline.sim_anchored())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(identical, "exact batch diverged from serial baseline");
            }
            let name = match mode {
                BatchMode::Exact => "exact",
                BatchMode::Fused => "fused",
            };
            let speedup = serial_total / total;
            eprintln!(
                "[exp10] {name} t={threads}: {total:.3}s ({speedup:.2}x) — σ {} repairs {} skips {}",
                agg.sigma_recomputes, agg.repair_updates, agg.repair_skips
            );
            table.row(vec![
                name.into(),
                threads.to_string(),
                secs(total),
                format!("{:.0}", acts as f64 / total),
                format!("{speedup:.2}x"),
            ]);
            runs.push(serde_json::json!({
                "mode": name, "threads": threads, "secs": total,
                "acts_per_sec": acts as f64 / total, "speedup_vs_serial": speedup,
                "stats": serde_json::json!({
                    "edges_in": acts, "dirty_edges": agg.dirty_edges,
                    "sigma_recomputes": agg.sigma_recomputes,
                    "repair_updates": agg.repair_updates, "repair_skips": agg.repair_skips,
                }),
            }));
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    println!("\n=== Exp 10: batch-ingestion throughput ===");
    table.print();
    let payload = serde_json::json!({
        "experiment": "batch_ingest",
        "graph": serde_json::json!({ "n": g.n(), "m": g.m() }),
        "stream": serde_json::json!({ "activations": acts, "batches": steps }),
        "hardware_threads": std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        "runs": runs,
    });
    let path = write_json("BENCH_update", &payload).unwrap();
    println!("\n[exp10] JSON written to {}", path.display());
}
