//! **Thread-scaling sweep** — speedup-vs-threads for the three parallel
//! pipelines the work-stealing pool (DESIGN.md §10) actually backs:
//!
//! * `batch_ingest` — `activate_batch` in [`BatchMode::Exact`] (grouped
//!   index repair fan-out), whole-stream wall time;
//! * `fused_sigma`  — `activate_batch` in [`BatchMode::Fused`]
//!   (deduplicated parallel σ recomputation), whole-stream wall time;
//! * `cache_cold_fill` — the cluster cache's parallel cold voting pass,
//!   median of repeated single fills.
//!
//! Each workload runs at `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8} and reports
//! speedup vs its own 1-thread time. The JSON records the container's
//! hardware thread count: on a single-core host the curves cannot rise
//! above ~1× — the acceptance figure there is *no regression* at higher
//! thread counts (the persistent pool's dispatch overhead stays flat,
//! where the old per-call spawn shim got slower with every extra thread).
//! Results land in `results/BENCH_threads.json`.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp_threads
//! [--scale f] [--seed u64]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine, BatchMode, ClusterCache, ClusterMode};
use anc_data::stream;
use anc_graph::gen::{planted_partition, PlantedConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    let n = ((4000.0 * args.scale) as usize).max(200);
    let lg = planted_partition(&PlantedConfig::default_for(n), args.seed);
    let g = lg.graph;
    let hardware = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    eprintln!("[expT] n={} m={} hardware_threads={}", g.n(), g.m(), hardware);

    let mut table = Table::new(vec!["workload", "threads", "median s", "speedup vs 1t"]);
    let mut workloads = Vec::new();

    // --- Batch ingest (Exact) and fused σ (Fused): stream wall time. ---
    let steps = 60usize;
    let target = (40_000.0 * args.scale) as usize;
    let frac = (target as f64 / steps as f64 / g.m() as f64).min(1.0);
    let s = stream::uniform_per_step(&g, steps, frac, args.seed ^ 0x2a);
    let acts = s.total_activations();
    eprintln!("[expT] stream: {acts} activations in {steps} batches");
    for (name, mode) in [("batch_ingest", BatchMode::Exact), ("fused_sigma", BatchMode::Fused)] {
        let mut runs: Vec<(usize, f64)> = Vec::new();
        for threads in THREADS {
            std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
            let cfg = AncConfig { rep: 1, batch: mode, ..Default::default() };
            let mut samples = Vec::new();
            for _ in 0..3 {
                let mut engine = AncEngine::new(g.clone(), cfg.clone(), args.seed);
                let (_, total) = time(|| {
                    for batch in &s.batches {
                        let _ =
                            std::hint::black_box(engine.activate_batch(&batch.edges, batch.time));
                    }
                });
                samples.push(total);
            }
            runs.push((threads, median(&mut samples)));
        }
        report(name, &runs, &mut table, &mut workloads);
    }

    // --- Cache cold fill: a warmed engine, fresh cache per sample. ---
    let cfg = AncConfig { k: 4, rep: 1, ..Default::default() };
    let mut engine = AncEngine::new(g.clone(), cfg, args.seed);
    let m = engine.graph().m() as u32;
    for i in 0..1_000u32 {
        engine.activate((i * 13 + 7) % m, 0.02 * (i + 1) as f64);
    }
    let level = engine.default_level();
    let mut runs: Vec<(usize, f64)> = Vec::new();
    for threads in THREADS {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let mut samples = Vec::new();
        for _ in 0..7 {
            let mut cache = ClusterCache::new(engine.num_levels());
            let ((c, stats), sec) =
                time(|| cache.query(engine.graph(), engine.pyramids(), level, ClusterMode::Power));
            std::hint::black_box((c.num_clusters(), stats.decision));
            samples.push(sec);
        }
        runs.push((threads, median(&mut samples)));
    }
    report("cache_cold_fill", &runs, &mut table, &mut workloads);
    std::env::remove_var("RAYON_NUM_THREADS");

    println!("\n=== Thread-scaling sweep (pool-backed pipelines) ===");
    println!("hardware threads: {hardware}");
    table.print();
    let payload = serde_json::json!({
        "experiment": "thread_scaling",
        "graph": serde_json::json!({ "n": g.n(), "m": g.m() }),
        "hardware_threads": hardware,
        "single_core_host": hardware == 1,
        "note": if hardware == 1 {
            "container exposes a single hardware thread; speedup above 1x is impossible — \
             the acceptance figure on this host is no regression at higher thread counts"
        } else {
            "multi-core host; speedup at 4 threads vs 1 is the acceptance figure"
        },
        "workloads": workloads,
    });
    let path = write_json("BENCH_threads", &payload).unwrap();
    println!("\n[expT] JSON written to {}", path.display());
}

/// Prints one workload's sweep and appends its JSON record.
fn report(
    name: &str,
    runs: &[(usize, f64)],
    table: &mut Table,
    workloads: &mut Vec<serde_json::Value>,
) {
    let base = runs[0].1;
    let mut entries = Vec::new();
    for &(threads, sec) in runs {
        let speedup = base / sec.max(1e-12);
        eprintln!("[expT] {name} t={threads}: {sec:.4}s ({speedup:.2}x)");
        table.row(vec![name.to_string(), threads.to_string(), secs(sec), format!("{speedup:.2}x")]);
        entries.push(serde_json::json!({
            "threads": threads, "secs": sec, "speedup_vs_1t": speedup,
        }));
    }
    workloads.push(serde_json::json!({ "workload": name, "runs": entries }));
}
