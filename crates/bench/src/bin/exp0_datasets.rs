//! **Exp 0 / Table I** — the dataset roster.
//!
//! Prints the registry of synthetic stand-ins next to the original datasets
//! they replace (vertex/edge counts, type), plus measured structural
//! statistics of the generated graphs — the reproduction's version of the
//! paper's Table I with full provenance for every substitution.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp0_datasets
//! [--datasets ...] [--scale f]` (defaults to the small/mid entries; the
//! web-scale stand-ins take a while to generate and analyze).

use anc_bench::args::HarnessArgs;
use anc_bench::report::{write_json, Table};
use anc_data::registry;
use anc_graph::{algo, traverse};

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        ["CO", "FB", "CA", "MI", "LA", "CM", "IE", "GI"].iter().map(|s| s.to_string()).collect()
    } else {
        args.datasets.clone()
    };

    let mut table = Table::new(vec![
        "name",
        "stands for",
        "orig n",
        "orig m",
        "gen n",
        "gen m",
        "communities",
        "avg deg",
        "clustering",
        "components",
    ]);
    let mut json = Vec::new();
    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let ds = spec.materialize_scaled(args.seed, args.scale);
        let g = &ds.graph;
        let cc = algo::average_clustering(g);
        let comps = traverse::connected_components(g).count;
        let communities = ds.labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        table.row(vec![
            spec.name.to_string(),
            spec.stands_for.to_string(),
            spec.original_n.to_string(),
            spec.original_m.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            communities.to_string(),
            format!("{:.1}", 2.0 * g.m() as f64 / g.n() as f64),
            format!("{cc:.3}"),
            comps.to_string(),
        ]);
        json.push(serde_json::json!({
            "name": spec.name, "stands_for": spec.stands_for,
            "original_n": spec.original_n, "original_m": spec.original_m,
            "n": g.n(), "m": g.m(), "communities": communities,
            "avg_clustering": cc, "components": comps,
        }));
    }

    println!("\n=== Table I: Data Set Description (synthetic stand-ins) ===");
    table.print();
    println!("(originals are SNAP / network-repository graphs; see DESIGN.md §3)");
    let path = write_json("exp0_datasets", &serde_json::json!(json)).unwrap();
    println!("\n[exp0] JSON written to {}", path.display());
}
