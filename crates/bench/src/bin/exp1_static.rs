//! **Exp 1 / Table III** — clustering quality on static networks.
//!
//! Reproduces the paper's Table III: Modularity, Conductance, NMI, Purity
//! and F1-Measure for {SCAN, ATTR, LOUV, ANCF1, ANCF5, ANCF9} on the
//! LA/DB/AM/YT stand-ins (static graphs, all activeness 1). LWEP is
//! approximated by its initial label propagation (its stream machinery is
//! exercised in Exp 2).
//!
//! Expected shape (paper): ANCF dominates all baselines on the ground-truth
//! measures (NMI/Purity), LOUV wins Modularity (it optimizes it directly)
//! with ANCF close behind and far above SCAN/ATTR; increasing `rep`
//! monotonically improves ANCF.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp1_static [--scale f]
//! [--datasets LA,DB,AM,YT] [--seed s]`

use anc_baselines::lwep::LwepEngine;
use anc_bench::args::HarnessArgs;
use anc_bench::methods::{score, Offline, Scores};
use anc_bench::report::{f3, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine};
use anc_data::registry;

fn main() {
    // Default scale 0.12 keeps DB/AM/YT stand-ins ≈10k nodes so the whole
    // table builds in minutes; pass --scale 1 for the full-size run.
    let args = HarnessArgs::parse(0.12);
    let names: Vec<String> = if args.datasets.is_empty() {
        vec!["LA".into(), "DB".into(), "AM".into(), "YT".into()]
    } else {
        args.datasets.clone()
    };

    let methods: Vec<&str> = vec!["SCAN", "ATTR", "LOUV", "LWEP", "ANCF1", "ANCF5", "ANCF9"];
    let mut per_measure: std::collections::HashMap<String, Table> = Default::default();
    for measure in ["Modularity", "Conductance", "NMI", "Purity", "F1-Measure"] {
        let mut headers = vec!["method".to_string()];
        headers.extend(names.iter().cloned());
        per_measure.insert(measure.into(), Table::new(headers));
    }
    let mut json_rows = Vec::new();

    // method → dataset → Scores
    let mut all: Vec<Vec<Scores>> = vec![Vec::new(); methods.len()];

    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        // LA keeps full size (it is small); larger graphs scale.
        let factor = if spec.n <= 10_000 { 1.0 } else { args.scale };
        let ds = spec.materialize_scaled(args.seed, factor);
        let g = &ds.graph;
        let w = vec![1.0f64; g.m()];
        let truth_k = ds.labels.iter().copied().max().map_or(1, |m| m as usize + 1);
        // The paper's protocol: on LA/AM/YT the ground-truth count is beyond
        // the range of cluster numbers the pyramids produce, so the target is
        // the number SCAN finds instead (Section VI-A).
        let scan_k = Offline::Scan.run(g, &w, None, truth_k).filter_small(3).num_clusters();
        let target_k = if matches!(name.as_str(), "LA" | "AM" | "YT") && scan_k > 0 {
            scan_k
        } else {
            truth_k
        };
        eprintln!(
            "[exp1] {name}: n = {}, m = {}, ground-truth clusters = {truth_k}, target = {target_k}",
            g.n(),
            g.m()
        );

        // One engine per dataset provides the activeness state for ANCF.
        let cfg = AncConfig { rep: 0, ..Default::default() };
        let (mut engine, build_secs) = time(|| AncEngine::new(g.clone(), cfg, args.seed));
        eprintln!("[exp1] {name}: index scaffold built in {build_secs:.2}s");

        for (mi, method) in methods.iter().enumerate() {
            let (clustering, secs) = match *method {
                "LWEP" => time(|| LwepEngine::new(g.clone(), w.clone(), 0.1).clustering()),
                "SCAN" => time(|| Offline::Scan.run(g, &w, None, target_k)),
                "ATTR" => time(|| Offline::Attr.run(g, &w, None, target_k)),
                "LOUV" => time(|| Offline::Louv.run(g, &w, None, target_k)),
                m => {
                    let rep: usize = m.trim_start_matches("ANCF").parse().unwrap();
                    time(|| Offline::AncF(rep).run(g, &w, Some(&mut engine), target_k))
                }
            };
            let s = score(g, &w, &clustering, &ds.labels);
            eprintln!(
                "[exp1] {name} {method}: NMI {:.3} purity {:.3} F1 {:.3} Q {:.3} φ {:.3} ({} clusters, {secs:.2}s)",
                s.nmi, s.purity, s.f1, s.modularity, s.conductance, s.clusters
            );
            all[mi].push(s);
            json_rows.push(serde_json::json!({
                "dataset": name, "method": method,
                "modularity": s.modularity, "conductance": s.conductance,
                "nmi": s.nmi, "purity": s.purity, "f1": s.f1,
                "clusters": s.clusters, "seconds": secs,
            }));
        }
    }

    println!("\n=== Table III: Performance on Static Networks ===");
    for (measure, get) in [
        ("Modularity", (|s: &Scores| s.modularity) as fn(&Scores) -> f64),
        ("Conductance", |s| s.conductance),
        ("NMI", |s| s.nmi),
        ("Purity", |s| s.purity),
        ("F1-Measure", |s| s.f1),
    ] {
        let t = per_measure.get_mut(measure).unwrap();
        for (mi, method) in methods.iter().enumerate() {
            let mut row = vec![method.to_string()];
            row.extend(all[mi].iter().map(|s| f3(get(s))));
            t.row(row);
        }
        println!("\n--- {measure} ---");
        t.print();
    }

    let path = write_json("exp1_static", &serde_json::json!(json_rows)).unwrap();
    println!("\n[exp1] JSON written to {}", path.display());
}
