//! **Ablation A4** — the batched-rescale policy of the global decay factor.
//!
//! Measures (1) the end-to-end throughput of the online engine under
//! different rescale cadences, (2) how many rescales each policy performs,
//! and (3) the necessity of the exponent guard: with λ·t far beyond 709,
//! `1/g = e^{λ(t−t*)}` overflows `f64` without periodic re-anchoring.
//! Also cross-checks that every policy produces the same final clustering —
//! the rescale must be unobservable (Lemma 10).
//!
//! Usage: `cargo run --release -p anc-bench --bin abl_rescale`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_data::{registry, stream};
use anc_decay::RescaleConfig;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let ds = registry::by_name("CA").unwrap().materialize_scaled(args.seed, args.scale);
    let g = ds.graph.clone();
    eprintln!("[ablA4] CA stand-in: n = {}, m = {}", g.n(), g.m());

    // A long stream: 500 steps, λ = 1.0 → λ·t reaches 500; without the
    // guard and without count-based rescales this is within 209 of f64
    // overflow, and doubling the stream would cross it.
    let lambda = 1.0;
    let s = stream::uniform_per_step(&g, 500, 0.02, args.seed ^ 0xabc);
    let policies: Vec<(&str, RescaleConfig)> = vec![
        ("every 64 acts", RescaleConfig { every_activations: 64, exponent_guard: 200.0 }),
        ("every 4096 acts", RescaleConfig { every_activations: 4096, exponent_guard: 200.0 }),
        (
            "guard-only (200)",
            RescaleConfig { every_activations: usize::MAX, exponent_guard: 200.0 },
        ),
        ("guard-only (50)", RescaleConfig { every_activations: usize::MAX, exponent_guard: 50.0 }),
    ];

    let mut table = Table::new(vec!["policy", "rescales", "stream s", "acts/s"]);
    let mut clusterings = Vec::new();
    let mut json = Vec::new();
    for (label, rescale) in &policies {
        let cfg = AncConfig { lambda, rep: 1, rescale: *rescale, ..Default::default() };
        let mut engine = AncEngine::new(g.clone(), cfg, args.seed);
        let (_, secs) = time(|| {
            for batch in &s.batches {
                let _ = engine.activate_batch(&batch.edges, batch.time);
            }
        });
        engine.check_invariants().expect("invariants hold");
        let acts = s.total_activations();
        table.row(vec![
            label.to_string(),
            engine.rescales().to_string(),
            format!("{secs:.2}"),
            format!("{:.0}", acts as f64 / secs),
        ]);
        json.push(serde_json::json!({
            "policy": label, "rescales": engine.rescales(), "seconds": secs,
        }));
        clusterings.push(engine.cluster_all(engine.default_level(), ClusterMode::Power));
    }

    // Lemma 10: the rescale cadence is unobservable in exact arithmetic. In
    // f64 each policy applies a different sequence of global multiplications
    // (here spanning e^200 per rescale at λ = 1), so microscopic rounding
    // drift can flip a borderline vote after ~10⁵ activations — the
    // clusterings must still be near-identical.
    let mut min_agreement = 1.0f64;
    for c in &clusterings[1..] {
        let agreement = anc_metrics::nmi(c, &clusterings[0]);
        min_agreement = min_agreement.min(agreement);
        assert!(agreement > 0.98, "rescale policies diverged beyond float noise: NMI {agreement}");
    }

    println!("\n=== Ablation A4: batched-rescale policy (CA stand-in, λ = 1.0, 500 steps) ===");
    table.print();
    println!(
        "all policies produced near-identical clusterings ✓ (Lemma 10; min NMI {min_agreement:.4} — \
         exact equality holds in exact arithmetic, f64 rounding drifts microscopically)"
    );
    let path = write_json("abl_rescale", &serde_json::json!(json)).unwrap();
    println!("\n[ablA4] JSON written to {}", path.display());
}
