//! **Ablation A2** — sensitivity to the reinforcement repetition count
//! `rep` (the paper's Table II sweep: rep ∈ {0, 1, 3, 5, 7, 9}).
//!
//! Expected shape (paper): quality improves (or holds) as rep grows, with
//! diminishing returns; initialization cost grows linearly with rep.
//!
//! Usage: `cargo run --release -p anc-bench --bin abl_rep_sweep
//! [--datasets CO,CA,LA]`

use anc_bench::args::HarnessArgs;
use anc_bench::methods::{anc_cluster_near, score};
use anc_bench::report::{f3, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_data::registry;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        vec!["CO".into(), "CA".into(), "LA".into()]
    } else {
        args.datasets.clone()
    };
    let reps = [0usize, 1, 3, 5, 7, 9];

    let mut table =
        Table::new(vec!["dataset", "rep", "NMI", "Purity", "F1", "Modularity", "init s"]);
    let mut json = Vec::new();
    for name in &names {
        let ds = registry::by_name(name).unwrap().materialize_scaled(args.seed, args.scale);
        let g = ds.graph.clone();
        let w = vec![1.0f64; g.m()];
        let target_k = ds.labels.iter().copied().max().map_or(1, |m| m as usize + 1);
        for &rep in &reps {
            let cfg = AncConfig { rep, ..Default::default() };
            let (engine, init_secs) = time(|| AncEngine::new(g.clone(), cfg, args.seed));
            let c = anc_cluster_near(&g, engine.pyramids(), target_k, ClusterMode::Power);
            let s = score(&g, &w, &c, &ds.labels);
            table.row(vec![
                name.clone(),
                rep.to_string(),
                f3(s.nmi),
                f3(s.purity),
                f3(s.f1),
                f3(s.modularity),
                format!("{init_secs:.2}"),
            ]);
            json.push(serde_json::json!({
                "dataset": name, "rep": rep, "nmi": s.nmi, "purity": s.purity,
                "f1": s.f1, "modularity": s.modularity, "init_seconds": init_secs,
            }));
        }
    }

    println!("\n=== Ablation A2: rep sweep ===");
    table.print();
    let path = write_json("abl_rep_sweep", &serde_json::json!(json)).unwrap();
    println!("\n[ablA2] JSON written to {}", path.display());
}
