//! **Exp 5 / Figure 7** — cluster-extraction time at granularity levels
//! 4–8.
//!
//! Runs `DirectedCluster` (power clustering) at levels 4..=8 over the
//! larger stand-ins and reports wall-clock per extraction.
//!
//! Expected shape (paper): extraction time grows linearly with the edge
//! count (`O(m log n)`, Lemma 8) and is essentially flat across levels.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp5_query_time
//! [--datasets DB,YT,...] [--scale f]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{write_json, Table};
use anc_bench::time;
use anc_core::{cluster, ClusterMode, Pyramids};
use anc_data::registry;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        vec!["DB".into(), "YT".into()]
    } else {
        args.datasets.clone()
    };
    let levels = 4usize..=8;

    let mut table = Table::new({
        let mut h = vec!["dataset".to_string(), "m".to_string()];
        h.extend(levels.clone().map(|l| format!("level {l}")));
        h
    });
    let mut json = Vec::new();

    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let ds = spec.materialize_scaled(args.seed, args.scale);
        let g = &ds.graph;
        let w = vec![1.0f64; g.m()];
        let pyr = Pyramids::build(g, &w, 4, 0.7, args.seed);
        let mut row = vec![name.clone(), g.m().to_string()];
        for level in levels.clone() {
            let level = level.min(pyr.num_levels() - 1);
            // Median of 3 runs for stability.
            let mut samples = Vec::new();
            for _ in 0..3 {
                let (c, secs) = time(|| cluster::cluster_all(g, &pyr, level, ClusterMode::Power));
                std::hint::black_box(c.num_clusters());
                samples.push(secs);
            }
            samples.sort_by(|a, b| a.total_cmp(b));
            let secs = samples[1];
            eprintln!("[exp5] {name} level {level}: {secs:.4}s");
            row.push(format!("{secs:.4}"));
            json.push(serde_json::json!({
                "dataset": name, "m": g.m(), "level": level, "seconds": secs,
            }));
        }
        table.row(row);
    }

    println!("\n=== Figure 7: Cluster Extraction Time (seconds) ===");
    table.print();
    let path = write_json("exp5_query_time", &serde_json::json!(json)).unwrap();
    println!("\n[exp5] JSON written to {}", path.display());
}
