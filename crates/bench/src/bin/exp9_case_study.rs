//! **Exp 9 / Figure 11 + Section VI-C** — the collaboration-network case
//! study.
//!
//! Mirrors the paper's 29-node DB2 subgraph observed over 30 yearly time
//! steps: focal author v8 collaborates with v7's group in years 5–11, with
//! v11's group in 11–22, with v0's group in 11–30, with v5's group in 17–26
//! and with v26's group from year 23 on, while each community keeps
//! collaborating internally every year. As in real co-authorship data, v8
//! is linked to *two* members of each highlighted community, so the pairs
//! share common neighbors and the triadic machinery of the local
//! reinforcement has signal to work with.
//!
//! We track (1) the dis-similarity `1/S_t` between v8 and its five
//! highlighted neighbors and (2) the cluster containing v8 at granularity
//! levels l2 and l3, at years 10, 20 and 30.
//!
//! Expected shape (paper): at t10 v8 clusters with v7 only; by t20 it has
//! moved to {v0, v11}; by t30 v26 is in while v7/v11 have drifted away; the
//! coarser level l2 reacts more slowly than l3.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp9_case_study`

use anc_bench::args::HarnessArgs;
use anc_bench::report::write_json;
use anc_core::{AncConfig, AncEngine};
use anc_graph::GraphBuilder;

/// The five communities around v8's highlighted neighbors, plus filler.
const GROUPS: &[&[u32]] = &[
    &[0, 1, 2, 3],             // v0's community
    &[5, 4, 6, 9],             // v5's community
    &[7, 10, 12, 13],          // v7's community
    &[11, 14, 15, 16],         // v11's community
    &[26, 25, 24, 23],         // v26's community
    &[17, 18, 19, 20, 21, 22], // background community
    &[27, 28],                 // v8's long-term co-authors
];

/// v8 collaborates with (primary, secondary) members of each community over
/// the year range [from, to]; the primary is the paper's highlighted node.
const SCHEDULE: &[(u32, u32, u32, u32)] = &[
    (7, 10, 5, 11),   // v7's group, years 5–11
    (11, 14, 11, 22), // v11's group, years 11–22
    (0, 1, 11, 30),   // v0's group, years 11–30
    (5, 4, 17, 26),   // v5's group, years 17–26
    (26, 25, 23, 30), // v26's group, years 23–30
];

fn main() {
    let args = HarnessArgs::parse(1.0);
    let n = 29usize;
    let mut b = GraphBuilder::new(n);
    for group in GROUPS {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                b.add_edge(group[i], group[j]);
            }
        }
    }
    // v8's co-author pair and its links into each highlighted community.
    for x in [27u32, 28] {
        b.add_edge(8, x);
    }
    for &(primary, secondary, _, _) in SCHEDULE {
        b.add_edge(8, primary);
        b.add_edge(8, secondary);
    }
    // Light background connectivity between communities.
    for (a, c) in [(3u32, 4u32), (9, 10), (13, 14), (16, 17), (22, 23), (28, 0)] {
        b.add_edge(a, c);
    }
    let g = b.build();
    eprintln!("[exp9] case-study graph: n = {}, m = {}", g.n(), g.m());

    let cfg = AncConfig { lambda: 0.1, rep: 3, mu: 2, epsilon: 0.2, ..Default::default() };
    let mut engine = AncEngine::new(g.clone(), cfg, args.seed);

    let mut activations = 0usize;
    let mut json_snapshots = Vec::new();
    for year in 1..=30u32 {
        // Background: every community collaborates internally each year.
        for group in GROUPS {
            for i in 0..group.len() {
                for j in (i + 1)..group.len() {
                    let e = g.edge_id(group[i], group[j]).unwrap();
                    engine.activate(e, year as f64);
                    activations += 1;
                }
            }
        }
        // v8's own pair stays active.
        for x in [27u32, 28] {
            engine.activate(g.edge_id(8, x).unwrap(), year as f64);
            activations += 1;
        }
        for &(primary, secondary, from, to) in SCHEDULE {
            if (from..=to).contains(&year) {
                for nbr in [primary, secondary] {
                    engine.activate(g.edge_id(8, nbr).unwrap(), year as f64);
                    activations += 1;
                }
            }
        }

        if year % 10 != 0 {
            continue;
        }
        println!("\n=== Year t{year} ===");
        println!("dis-similarity 1/S_t between v8 and its highlighted neighbors:");
        for &(nbr, _, _, _) in SCHEDULE {
            let e = g.edge_id(8, nbr).unwrap();
            let dis = 1.0 / engine.similarity(e);
            println!("  v8 -- v{nbr}: {dis:.3e}");
        }
        let mut snapshot = serde_json::json!({ "year": year });
        for level in [1usize, 2] {
            let cluster = engine.local_cluster(8, level);
            let highlighted: Vec<u32> =
                SCHEDULE.iter().map(|&(p, _, _, _)| p).filter(|v| cluster.contains(v)).collect();
            println!(
                "cluster of v8 at level l{}: {} nodes, highlighted members {:?}",
                level + 1,
                cluster.len(),
                highlighted
            );
            snapshot[format!("l{}", level + 1)] = serde_json::json!({
                "size": cluster.len(),
                "highlighted": highlighted,
                "members": cluster,
            });
        }
        json_snapshots.push(snapshot);
    }
    println!("\ntotal activations streamed: {activations}");
    engine.check_invariants().expect("index consistent after the case study");

    let path = write_json("exp9_case_study", &serde_json::json!(json_snapshots)).unwrap();
    println!("[exp9] JSON written to {}", path.display());
}
