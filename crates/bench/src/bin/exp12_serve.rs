//! **Exp 12** — serving-path benchmark: closed-loop mixed ingest/query
//! traffic against the `anc-server` TCP front end (DESIGN.md §14).
//!
//! For each ingest:query mix (1:9, 1:1, 9:1) a fresh server is started on
//! the n=4000 planted-partition workload, driven by the closed-loop load
//! generator, and torn down gracefully. Recorded per mix:
//!
//! * client-side throughput and p50/p99/p999 end-to-end latency (overall
//!   plus the ingest and query splits), from hand-rolled log-bucketed
//!   histograms;
//! * server-side cumulative counters fetched over the wire `stats`
//!   request: applied batches, coalescing (jobs merged per batch, max
//!   batch), Exact/Fused split, shed submissions, cache hit/miss, and
//!   enqueue-to-apply p50/p99/p999.
//!
//! Everything lands in `results/BENCH_serve.json` — the repo's first
//! serving-path perf trajectory.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp12_serve
//! [--smoke] [--scale f] [--seed u64]`
//!
//! `--smoke` shrinks to n = 400 and a short fixed request budget for CI.

use anc_bench::args::HarnessArgs;
use anc_bench::loadgen::{closed_loop, LoadConfig};
use anc_bench::report::{write_json, Table};
use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_graph::gen::{planted_partition, PlantedConfig};
use anc_server::{EngineBackend, Request, Response, ServeConfig, ServerCore, TcpServer};

const MIXES: &[(&str, f64)] = &[("1:9", 0.1), ("1:1", 0.5), ("9:1", 0.9)];

fn main() {
    let args = HarnessArgs::parse(1.0);
    let smoke = args.has("smoke");
    let n = if smoke { 400 } else { ((4000.0 * args.scale) as usize).max(400) };
    let connections = if smoke { 2 } else { 4 };
    let requests_per_conn = if smoke { 150 } else { 2_500 };

    let planted = planted_partition(&PlantedConfig::default_for(n), args.seed);
    let g = planted.graph;
    let m = g.m();
    let cfg = AncConfig { k: 2, rep: 1, ..Default::default() };
    eprintln!("[exp12] planted n={n} m={m}: building index…");

    let mut table = Table::new(vec![
        "mix",
        "reqs",
        "rps",
        "p50 µs",
        "p99 µs",
        "p999 µs",
        "q p99 µs",
        "in p99 µs",
        "shed",
        "batches",
        "max batch",
        "fused",
    ]);
    let mut rows = Vec::new();

    for &(mix_name, ingest_ratio) in MIXES {
        // Fresh server per mix: mixes stay independent and comparable.
        let engine = AncEngine::new(g.clone(), cfg.clone(), args.seed);
        let level = engine.default_level();
        let core = ServerCore::start(
            EngineBackend::Volatile(engine),
            ServeConfig {
                queue_capacity: 1024,
                coalesce_max: 256,
                fused_min_batch: Some(64),
                levels: vec![level],
                modes: vec![ClusterMode::Even],
            },
        )
        .expect("server core");
        let server = TcpServer::start(core, "127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let load = LoadConfig {
            connections,
            requests_per_conn,
            ingest_ratio,
            edges_per_ingest: 16,
            ticks_per_step: 8,
            n: n as u32,
            m: m as u32,
            level,
            mode: ClusterMode::Even,
            seed: args.seed ^ 0x12,
        };
        eprintln!(
            "[exp12] mix {mix_name}: {} conns x {} reqs (ingest ratio {ingest_ratio})…",
            load.connections, load.requests_per_conn
        );
        let report = closed_loop(addr, &load);

        // Server-side counters over the wire, then graceful teardown. Under
        // saturation the flush itself can be shed off the full queue —
        // retry until it lands so the stats read is final.
        let mut client = anc_server::WireClient::connect(addr).expect("stats client");
        loop {
            match client.call(&Request::Flush).expect("flush") {
                Response::Flushed { .. } => break,
                Response::Error { code: anc_server::ErrorCode::Overloaded, .. } => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                other => panic!("expected Flushed, got {other:?}"),
            }
        }
        let stats = match client.call(&Request::Stats).expect("stats") {
            Response::Stats(s) => s,
            other => panic!("expected Stats, got {other:?}"),
        };
        drop(client);
        let shutdown = server.shutdown();

        assert_eq!(report.errors, 0, "mix {mix_name}: unexpected errors");
        assert!(report.queries > 0, "mix {mix_name}: no queries served");
        assert!(
            report.ingests > 0 || report.shed > 0,
            "mix {mix_name}: no ingest traffic reached the server"
        );
        assert!(shutdown.wal_error.is_none(), "mix {mix_name}: unclean shutdown");
        assert_eq!(
            shutdown.stats.ingested_jobs, stats.ingested_jobs,
            "post-flush stats must already be final"
        );

        let us = |ns: u64| ns as f64 / 1_000.0;
        table.row(vec![
            mix_name.to_string(),
            report.requests.to_string(),
            format!("{:.0}", report.throughput_rps()),
            format!("{:.1}", us(report.latency.quantile(0.50))),
            format!("{:.1}", us(report.latency.quantile(0.99))),
            format!("{:.1}", us(report.latency.quantile(0.999))),
            format!("{:.1}", us(report.query_latency.quantile(0.99))),
            format!("{:.1}", us(report.ingest_latency.quantile(0.99))),
            report.shed.to_string(),
            stats.applied_batches.to_string(),
            stats.max_batch_edges.to_string(),
            stats.fused_batches.to_string(),
        ]);
        let client_latency = serde_json::json!({
            "p50_ns": report.latency.quantile(0.50),
            "p99_ns": report.latency.quantile(0.99),
            "p999_ns": report.latency.quantile(0.999),
            "max_ns": report.latency.max(),
            "count": report.latency.count(),
        });
        let client_query_latency = serde_json::json!({
            "p50_ns": report.query_latency.quantile(0.50),
            "p99_ns": report.query_latency.quantile(0.99),
            "p999_ns": report.query_latency.quantile(0.999),
        });
        let client_ingest_latency = serde_json::json!({
            "p50_ns": report.ingest_latency.quantile(0.50),
            "p99_ns": report.ingest_latency.quantile(0.99),
            "p999_ns": report.ingest_latency.quantile(0.999),
        });
        let apply_latency = serde_json::json!({
            "p50_ns": stats.apply_p50_ns,
            "p99_ns": stats.apply_p99_ns,
            "p999_ns": stats.apply_p999_ns,
            "max_ns": stats.apply_max_ns,
            "count": stats.apply_count,
        });
        let server_json = serde_json::json!({
            "epoch": stats.epoch,
            "applied_seq": stats.applied_seq,
            "generation": stats.generation,
            "ingested_jobs": stats.ingested_jobs,
            "ingested_edges": stats.ingested_edges,
            "applied_batches": stats.applied_batches,
            "coalesced_jobs": stats.coalesced_jobs,
            "max_batch_edges": stats.max_batch_edges,
            "exact_batches": stats.exact_batches,
            "fused_batches": stats.fused_batches,
            "shed": stats.shed,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "apply_latency": apply_latency,
        });
        rows.push(serde_json::json!({
            "mix": mix_name,
            "ingest_ratio": ingest_ratio,
            "connections": load.connections,
            "requests_per_conn": load.requests_per_conn,
            "requests": report.requests,
            "ingests": report.ingests,
            "queries": report.queries,
            "shed": report.shed,
            "errors": report.errors,
            "wall_seconds": report.wall_s,
            "throughput_rps": report.throughput_rps(),
            "client_latency": client_latency,
            "client_query_latency": client_query_latency,
            "client_ingest_latency": client_ingest_latency,
            "server": server_json,
        }));
    }

    println!("\n=== Exp 12: Serving Layer (closed-loop) ===");
    table.print();
    let path = write_json(
        "BENCH_serve",
        &serde_json::json!({
            "smoke": smoke,
            "seed": args.seed,
            "n": n,
            "m": m,
            "connections": connections,
            "requests_per_conn": requests_per_conn,
            "mixes": rows,
        }),
    )
    .unwrap();
    println!("[exp12] JSON written to {}", path.display());
}
