//! **Exp 6 / Figure 8** — UPDATE vs RECONSTRUCT across batch sizes.
//!
//! For batch sizes 2^0 .. 2^10: apply the batch of random activations with
//! the bounded incremental UPDATE (Algorithms 1–3 per partition), and
//! compare against RECONSTRUCT (rebuilding the whole index from the same
//! weights).
//!
//! Expected shape (paper): UPDATE grows linearly with batch size while
//! RECONSTRUCT is flat; at batch 1 the gap peaks — up to six orders of
//! magnitude on the paper's largest graphs (the gap here is bounded by the
//! laptop-scaled stand-ins, but grows visibly with graph size).
//!
//! Usage: `cargo run --release -p anc-bench --bin exp6_update_time
//! [--datasets DB,YT] [--scale f]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine};
use anc_data::registry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        vec!["DB".into(), "YT".into()]
    } else {
        args.datasets.clone()
    };
    let batch_pows = 0u32..=10;

    let mut table = Table::new({
        let mut h = vec!["dataset".to_string(), "series".to_string()];
        h.extend(batch_pows.clone().map(|p| format!("2^{p}")));
        h
    });
    let mut json = Vec::new();

    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let ds = spec.materialize_scaled(args.seed, args.scale);
        let g = ds.graph.clone();
        let m = g.m();
        eprintln!("[exp6] {name}: n = {}, m = {m}", g.n());
        let cfg = AncConfig { rep: 1, ..Default::default() };
        let mut engine = AncEngine::new(g, cfg, args.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(args.seed ^ 0xfeed);

        let mut update_row = vec![name.clone(), "UPDATE".to_string()];
        let mut recon_row = vec![name.clone(), "RECONSTRUCT".to_string()];
        let mut t = engine.now();
        for p in batch_pows.clone() {
            let batch: Vec<u32> = (0..(1usize << p)).map(|_| rng.gen_range(0..m as u32)).collect();
            t += 1.0;
            let (_, secs_update) = time(|| engine.activate_batch(&batch, t));
            let (_, secs_recon) = time(|| engine.reconstruct_index());
            eprintln!(
                "[exp6] {name} batch 2^{p}: UPDATE {secs_update:.5}s RECONSTRUCT {secs_recon:.3}s ({:.0}x)",
                secs_recon / secs_update.max(1e-12)
            );
            update_row.push(secs(secs_update));
            recon_row.push(secs(secs_recon));
            json.push(serde_json::json!({
                "dataset": name, "batch": 1usize << p,
                "update_seconds": secs_update, "reconstruct_seconds": secs_recon,
            }));
        }
        table.row(update_row);
        table.row(recon_row);
    }

    println!("\n=== Figure 8: Update Time (seconds per batch) ===");
    table.print();
    let path = write_json("exp6_update_time", &serde_json::json!(json)).unwrap();
    println!("\n[exp6] JSON written to {}", path.display());
}
