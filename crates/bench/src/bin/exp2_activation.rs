//! **Exp 2 / Table IV + Figure 4** — time and quality on activation
//! networks.
//!
//! Reproduces the paper's activation-network protocol: 100 timestamps, each
//! activating a uniform 5% of the edges (λ = 0.1). Eight methods run over
//! the stream:
//!
//! * offline, recomputed per evaluated snapshot: SCAN, ATTR, LOUV, ANCF;
//! * online, incrementally updated: DYNA, LWEP, ANCOR, ANCO.
//!
//! Outputs (a) the Table IV amortized per-activation time costs and (b) the
//! Figure 4 quality-over-time series (NMI / Purity / F1 against spectral
//! ground truth with `2√n` clusters, evaluated every 10 timestamps).
//!
//! Expected shape (paper): ANCO fastest, ANCOR second, both orders of
//! magnitude below DYNA/LWEP; quality of online methods decays over time
//! with ANCOR above ANCO; ANCF stays the best offline method.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp2_activation
//! [--datasets CO,FB,CA,LA] [--steps n] [--seed s]`
//! (MI is included via `--datasets CO,FB,CA,MI,LA`; it is the densest and
//! slowest stand-in.)

use anc_baselines::{dyna::DynaEngine, lwep::LwepEngine, spectral};
use anc_bench::args::HarnessArgs;
use anc_bench::methods::{anc_cluster_near, score, Offline};
use anc_bench::report::{f3, secs, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_data::{registry, stream};

const STEPS: usize = 100;
const FRAC: f64 = 0.05;
const LAMBDA: f64 = 0.1;
const EVAL_EVERY: usize = 10;
const ANCOR_INTERVAL: usize = 5;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        vec!["CO".into(), "FB".into(), "CA".into(), "LA".into()]
    } else {
        args.datasets.clone()
    };

    let mut time_table = Table::new({
        let mut h = vec!["class".to_string(), "method".to_string()];
        h.extend(names.iter().cloned());
        h
    });
    // method → dataset → amortized seconds per activation.
    let mut amortized: std::collections::HashMap<&'static str, Vec<f64>> = Default::default();
    let mut quality_json = Vec::new();

    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let ds = spec.materialize_scaled(args.seed, args.scale);
        let g = ds.graph.clone();
        let s = stream::uniform_per_step(&g, STEPS, FRAC, args.seed ^ 0x5eed);
        let total_acts = s.total_activations();
        let target_k = (2.0 * (g.n() as f64).sqrt()).round() as usize;
        eprintln!(
            "[exp2] {name}: n = {}, m = {}, {total_acts} activations over {STEPS} steps, target k = {target_k}",
            g.n(), g.m()
        );

        let cfg = AncConfig { lambda: LAMBDA, ..Default::default() };

        // --- engines -------------------------------------------------------
        let mut anco = AncEngine::new(g.clone(), cfg.clone(), args.seed);
        let mut ancor = AncEngine::new(g.clone(), cfg.clone(), args.seed);
        let init_w = vec![1.0f64; g.m()];
        let mut dyna = DynaEngine::new(g.clone(), init_w.clone(), LAMBDA);
        let mut lwep = LwepEngine::new(g.clone(), init_w.clone(), LAMBDA);

        // Plain decayed weights for the offline baselines and ground truth.
        let mut weights = init_w;

        let mut t_anco = 0.0f64;
        let mut t_ancor = 0.0f64;
        let mut t_dyna = 0.0f64;
        let mut t_lwep = 0.0f64;
        let mut t_offline: std::collections::HashMap<&'static str, f64> = Default::default();
        let mut ancor_window: Vec<u32> = Vec::new();
        let mut evals = 0usize;
        let mut baseline_sampled_acts = 0usize;

        // t = 0 evaluation, then the stream.
        for (step_idx, batch) in std::iter::once(None).chain(s.batches.iter().map(Some)).enumerate()
        {
            if let Some(batch) = batch {
                // Decay + activate the shared weight view.
                let f = (-LAMBDA).exp(); // Δt = 1 between steps
                for w in weights.iter_mut() {
                    *w *= f;
                }
                for &e in &batch.edges {
                    weights[e as usize] += 1.0;
                }

                let (_, dt) = time(|| anco.activate_batch(&batch.edges, batch.time));
                t_anco += dt;
                let (_, dt) = time(|| {
                    let _ = ancor.activate_batch(&batch.edges, batch.time);
                    ancor_window.extend_from_slice(&batch.edges);
                    if step_idx % ANCOR_INTERVAL == 0 {
                        ancor_window.sort_unstable();
                        ancor_window.dedup();
                        let w = std::mem::take(&mut ancor_window);
                        ancor.reinforce_edges(&w);
                    }
                });
                t_ancor += dt;
                // Online baselines handle each arriving activation
                // individually (the paper's online protocol). Per-activation
                // handling is *timed* on a sample of the steps and the rest
                // are batch-stepped, mirroring the paper's sampling of
                // timestamps when a baseline cannot finish the stream.
                if step_idx % EVAL_EVERY == 1 {
                    let (_, dt) = time(|| {
                        for &e in &batch.edges {
                            dyna.step(batch.time, &[e]);
                        }
                    });
                    t_dyna += dt;
                    let (_, dt) = time(|| {
                        for &e in &batch.edges {
                            lwep.step(batch.time, &[e]);
                        }
                    });
                    t_lwep += dt;
                    baseline_sampled_acts += batch.edges.len();
                } else {
                    dyna.step(batch.time, &batch.edges);
                    lwep.step(batch.time, &batch.edges);
                }
            }

            // --- quality snapshot every EVAL_EVERY steps --------------------
            if step_idx % EVAL_EVERY != 0 {
                continue;
            }
            evals += 1;
            let truth = spectral::cluster(
                &g,
                &weights,
                &spectral::SpectralParams { k: target_k, power_iters: 15, kmeans_iters: 15 },
                args.seed ^ 0x67,
            );
            let truth_labels = truth.labels().to_vec();

            let mut snapshot_scores: Vec<(String, anc_bench::methods::Scores)> = Vec::new();
            // Online methods read their current state.
            let c = anc_cluster_near(&g, anco.pyramids(), target_k, ClusterMode::Power);
            snapshot_scores.push(("ANCO".into(), score(&g, &weights, &c, &truth_labels)));
            let c = anc_cluster_near(&g, ancor.pyramids(), target_k, ClusterMode::Power);
            snapshot_scores.push(("ANCOR".into(), score(&g, &weights, &c, &truth_labels)));
            snapshot_scores
                .push(("DYNA".into(), score(&g, &weights, &dyna.clustering(), &truth_labels)));
            snapshot_scores
                .push(("LWEP".into(), score(&g, &weights, &lwep.clustering(), &truth_labels)));
            // Offline methods recompute from the snapshot (timed).
            for method in [Offline::Scan, Offline::Attr, Offline::Louv, Offline::AncF(cfg.rep)] {
                let label: &'static str = match method {
                    Offline::Scan => "SCAN",
                    Offline::Attr => "ATTR",
                    Offline::Louv => "LOUV",
                    Offline::AncF(_) => "ANCF",
                };
                let (c, dt) = time(|| method.run(&g, &weights, Some(&mut anco), target_k));
                *t_offline.entry(label).or_insert(0.0) += dt;
                snapshot_scores.push((label.into(), score(&g, &weights, &c, &truth_labels)));
            }
            for (method, sc) in &snapshot_scores {
                eprintln!(
                    "[exp2] {name} t={step_idx:3} {method:6} NMI {:.3} purity {:.3} F1 {:.3} ({} clusters)",
                    sc.nmi, sc.purity, sc.f1, sc.clusters
                );
                quality_json.push(serde_json::json!({
                    "dataset": name, "t": step_idx, "method": method,
                    "nmi": sc.nmi, "purity": sc.purity, "f1": sc.f1,
                    "clusters": sc.clusters,
                }));
            }
        }

        // --- Table IV rows ---------------------------------------------------
        let per_act = |total: f64| total / total_acts as f64;
        let per_sampled = |total: f64| total / baseline_sampled_acts.max(1) as f64;
        amortized.entry("ANCO").or_default().push(per_act(t_anco));
        amortized.entry("ANCOR").or_default().push(per_act(t_ancor));
        amortized.entry("DYNA").or_default().push(per_sampled(t_dyna));
        amortized.entry("LWEP").or_default().push(per_sampled(t_lwep));
        // Offline: total snapshot recomputation divided by the activations
        // those snapshots absorb (the paper's amortized convention).
        let acts_per_eval = total_acts as f64 / evals.max(1) as f64;
        for key in ["SCAN", "ATTR", "LOUV", "ANCF"] {
            let avg_snapshot = t_offline.get(key).copied().unwrap_or(0.0) / evals.max(1) as f64;
            amortized
                .entry(Box::leak(key.to_string().into_boxed_str()))
                .or_default()
                .push(avg_snapshot / acts_per_eval);
        }
    }

    println!("\n=== Table IV: Time Costs on Activation Networks (sec/activation) ===");
    for (class, methods) in [
        ("offline", vec!["SCAN", "ATTR", "LOUV", "ANCF"]),
        ("online", vec!["DYNA", "LWEP", "ANCOR", "ANCO"]),
    ] {
        for m in methods {
            let mut row = vec![class.to_string(), m.to_string()];
            if let Some(vals) = amortized.get(m) {
                row.extend(vals.iter().map(|v| secs(*v)));
            } else {
                row.extend(names.iter().map(|_| "-".to_string()));
            }
            time_table.row(row);
        }
    }
    time_table.print();

    // Figure 4 summary: average score over time per method/dataset.
    println!("\n=== Figure 4 (series in results/exp2_quality.json; final-t summary below) ===");
    let mut fin = Table::new(vec!["dataset", "method", "NMI", "Purity", "F1"]);
    for name in &names {
        for method in ["ANCF", "ANCOR", "ANCO", "DYNA", "LWEP", "SCAN", "ATTR", "LOUV"] {
            let last =
                quality_json.iter().rfind(|j| j["dataset"] == *name && j["method"] == method);
            if let Some(j) = last {
                fin.row(vec![
                    name.clone(),
                    method.to_string(),
                    f3(j["nmi"].as_f64().unwrap()),
                    f3(j["purity"].as_f64().unwrap()),
                    f3(j["f1"].as_f64().unwrap()),
                ]);
            }
        }
    }
    fin.print();

    write_json("exp2_quality", &serde_json::json!(quality_json)).unwrap();
    let amort_json: serde_json::Value = serde_json::json!(amortized
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect::<std::collections::HashMap<String, Vec<f64>>>());
    write_json("exp2_time", &serde_json::json!({"datasets": names, "per_activation": amort_json}))
        .unwrap();
    println!("\n[exp2] JSON written to results/exp2_quality.json and results/exp2_time.json");
}
