//! **Exp 8 / Figure 10** — mixed query/update workloads on the TW2
//! stand-in.
//!
//! Replaces 1%–32% of a day-trace's activations with local-cluster queries
//! and measures the total time each online method needs to process the
//! whole workload. For DYNA and LWEP, a sample of the minutes is measured
//! and extrapolated (the paper likewise sampled 100 of 1440 timestamps
//! because neither baseline finishes the day).
//!
//! Expected shape (paper): ANCO is orders of magnitude faster than both
//! baselines at every mix, and its total time *decreases* as the query
//! share grows (queries are cheaper than updates).
//!
//! Usage: `cargo run --release -p anc-bench --bin exp8_workload [--scale f]`

use anc_baselines::{dyna::DynaEngine, lwep::LwepEngine};
use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine};
use anc_data::{registry, stream, WorkItem, Workload};

fn main() {
    let args = HarnessArgs::parse(0.15);
    let spec = registry::by_name("TW2").unwrap();
    let ds = spec.materialize_scaled(args.seed, args.scale);
    let g = ds.graph.clone();
    eprintln!("[exp8] TW2 stand-in: n = {}, m = {}", g.n(), g.m());

    let base_rate = (g.m() / 2000).max(10);
    let day = stream::bursty_day(&g, base_rate, 0.05, 10.0, args.seed ^ 0xdab);
    let fractions = [0.01, 0.02, 0.04, 0.08, 0.16, 0.32];
    // The paper samples 100 of 1440 timestamps for DYNA/LWEP.
    let sample_every = 14;

    let mut table = Table::new({
        let mut h = vec!["method".to_string()];
        h.extend(fractions.iter().map(|f| format!("{}%", (f * 100.0) as u32)));
        h
    });
    let mut rows: std::collections::HashMap<&str, Vec<f64>> = Default::default();
    let mut json = Vec::new();

    for &frac in &fractions {
        let wl = Workload::from_stream(&g, &day, frac, args.seed ^ 0x10ad);
        let (acts, queries) = wl.counts();
        eprintln!("[exp8] {}% queries: {acts} activations, {queries} queries", frac * 100.0);

        // --- ANCO: full run --------------------------------------------------
        let cfg = AncConfig { lambda: 0.01, rep: 1, ..Default::default() };
        let mut engine = AncEngine::new(g.clone(), cfg, args.seed);
        let level = engine.default_level();
        let (_, anco_total) = time(|| {
            for (t, items) in &wl.batches {
                for item in items {
                    match *item {
                        WorkItem::Activate(e) => engine.activate(e, *t),
                        WorkItem::Query(v) => {
                            std::hint::black_box(engine.local_cluster(v, level));
                        }
                    }
                }
            }
        });
        rows.entry("ANCO").or_default().push(anco_total);

        // --- DYNA / LWEP: sampled minutes, extrapolated ----------------------
        let mut dyna = DynaEngine::new(g.clone(), vec![1.0; g.m()], 0.01);
        let mut lwep = LwepEngine::new(g.clone(), vec![1.0; g.m()], 0.01);
        let mut dyna_sampled = 0.0;
        let mut lwep_sampled = 0.0;
        let mut sampled = 0usize;
        for (i, (t, items)) in wl.batches.iter().enumerate() {
            if i % sample_every != 0 {
                continue;
            }
            sampled += 1;
            let edges: Vec<u32> = items
                .iter()
                .filter_map(|it| match it {
                    WorkItem::Activate(e) => Some(*e),
                    WorkItem::Query(_) => None,
                })
                .collect();
            let queries: Vec<u32> = items
                .iter()
                .filter_map(|it| match it {
                    WorkItem::Query(v) => Some(*v),
                    WorkItem::Activate(_) => None,
                })
                .collect();
            let (_, dt) = time(|| {
                for &e in &edges {
                    dyna.step(*t, &[e]);
                }
                for &v in &queries {
                    let c = dyna.clustering();
                    std::hint::black_box(c.label(v));
                }
            });
            dyna_sampled += dt;
            let (_, dt) = time(|| {
                for &e in &edges {
                    lwep.step(*t, &[e]);
                }
                for &v in &queries {
                    std::hint::black_box(lwep.clustering().label(v));
                }
            });
            lwep_sampled += dt;
        }
        let scale_up = wl.batches.len() as f64 / sampled as f64;
        rows.entry("DYNA").or_default().push(dyna_sampled * scale_up);
        rows.entry("LWEP").or_default().push(lwep_sampled * scale_up);

        json.push(serde_json::json!({
            "query_frac": frac, "anco": anco_total,
            "dyna_extrapolated": dyna_sampled * scale_up,
            "lwep_extrapolated": lwep_sampled * scale_up,
        }));
        eprintln!(
            "[exp8] {}%: ANCO {anco_total:.1}s, DYNA ~{:.0}s, LWEP ~{:.0}s",
            frac * 100.0,
            dyna_sampled * scale_up,
            lwep_sampled * scale_up
        );
    }

    println!("\n=== Figure 10: Workload Time on TW2 stand-in (seconds, whole day) ===");
    for method in ["ANCO", "DYNA", "LWEP"] {
        let mut row = vec![method.to_string()];
        row.extend(rows[method].iter().map(|v| secs(*v)));
        table.row(row);
    }
    table.print();
    println!("(DYNA/LWEP extrapolated from 1-in-{sample_every} sampled minutes, as in the paper)");
    let path = write_json("exp8_workload", &serde_json::json!(json)).unwrap();
    println!("\n[exp8] JSON written to {}", path.display());
}
