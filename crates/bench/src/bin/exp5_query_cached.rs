//! **Exp 5 companion** — the incremental cluster-query cache on the
//! planted-partition workload.
//!
//! Measures, on one engine streaming activations:
//!
//! * `cold` — a from-scratch `cluster_all` (the seed's only query path);
//! * `cold_fill` — the cache's first query per level, i.e. the *parallel*
//!   voting pass, swept over `RAYON_NUM_THREADS` ∈ {1, 2, 4, 8};
//! * `cached_hit` — a repeat query with no intervening update;
//! * `post_single` — a query right after one activation (dirty-edge
//!   repair of the edges incident to the affected sets);
//! * `post_batch` — a query right after a 16-edge batch (grouped traced
//!   repair feeding the same dirty translation).
//!
//! Reports the `post_single` speedup over `cold` (the PR's acceptance
//! figure) and writes everything to `results/BENCH_query.json`.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp5_query_cached
//! [--scale f] [--seed u64]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{cluster, AncConfig, AncEngine, ClusterCache, ClusterMode};
use anc_graph::gen::{planted_partition, PlantedConfig};

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let args = HarnessArgs::parse(1.0);
    let n = ((4000.0 * args.scale) as usize).max(64);
    let lg = planted_partition(&PlantedConfig::default_for(n), args.seed);
    let cfg = AncConfig { k: 4, rep: 1, ..Default::default() };
    let mut engine = AncEngine::new(lg.graph, cfg, args.seed);
    let m = engine.graph().m() as u32;
    // Stream a warm-up of activations biased toward intra-community edges
    // so the voting pass has structural signal, as in Exp 5.
    let intra: Vec<u32> = engine
        .graph()
        .iter_edges()
        .filter(|&(_, u, v)| lg.labels[u as usize] == lg.labels[v as usize])
        .map(|(e, _, _)| e)
        .collect();
    let mut t = 0.0;
    for i in 0..1_000u32 {
        t += 0.02;
        let e =
            if i % 5 == 0 { (i * 13 + 7) % m } else { intra[(i as usize * 17 + 3) % intra.len()] };
        engine.activate(e, t);
    }
    let level = engine.default_level();
    eprintln!("[exp5c] n={n} m={m} level={level} levels={}", engine.num_levels());

    // --- Cold baseline: the seed's only way to answer a cluster query. ---
    let mut cold_samples = Vec::new();
    for _ in 0..9 {
        let (c, s) = time(|| {
            cluster::cluster_all(engine.graph(), engine.pyramids(), level, ClusterMode::Power)
        });
        std::hint::black_box(c.num_clusters());
        cold_samples.push(s);
    }
    let cold = median(&mut cold_samples);

    // --- Parallel cold-fill sweep over the shim's thread count. ---
    let mut fill_by_threads = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let mut samples = Vec::new();
        for _ in 0..5 {
            let mut cache = ClusterCache::new(engine.num_levels());
            let ((c, stats), s) =
                time(|| cache.query(engine.graph(), engine.pyramids(), level, ClusterMode::Power));
            std::hint::black_box((c.num_clusters(), stats.decision));
            samples.push(s);
        }
        fill_by_threads.push((threads, median(&mut samples)));
    }
    std::env::remove_var("RAYON_NUM_THREADS");

    // --- Cached paths on the live engine. ---
    engine.cluster_all_cached(level, ClusterMode::Power);
    let mut hit_samples = Vec::new();
    for _ in 0..9 {
        let (r, s) = time(|| engine.cluster_all_cached(level, ClusterMode::Power));
        std::hint::black_box(r.1.generation);
        hit_samples.push(s);
    }
    let cached_hit = median(&mut hit_samples);

    let mut single_samples = Vec::new();
    for i in 0..50u32 {
        t += 0.02;
        engine.activate((i * 7 + 1) % m, t);
        let (r, s) = time(|| engine.cluster_all_cached(level, ClusterMode::Power));
        std::hint::black_box(r.1.dirty_edges);
        single_samples.push(s);
    }
    let post_single = median(&mut single_samples);

    let mut batch_samples = Vec::new();
    for i in 0..25u32 {
        t += 0.02;
        let batch: Vec<u32> = (0..16u32).map(|j| (i * 31 + j * 7) % m).collect();
        let _ = engine.activate_batch(&batch, t);
        let (r, s) = time(|| engine.cluster_all_cached(level, ClusterMode::Power));
        std::hint::black_box(r.1.dirty_edges);
        batch_samples.push(s);
    }
    let post_batch = median(&mut batch_samples);

    let speedup_single = cold / post_single.max(1e-12);
    let speedup_batch = cold / post_batch.max(1e-12);
    let qs = engine.cluster_all_cached(level, ClusterMode::Power).1;

    let mut table = Table::new(vec!["path", "median s", "speedup vs cold"]);
    table.row(vec!["cold cluster_all".to_string(), secs(cold), "1.0x".to_string()]);
    for (threads, s) in &fill_by_threads {
        table.row(vec![
            format!("cold fill ({threads} thr)"),
            secs(*s),
            format!("{:.1}x", cold / s.max(1e-12)),
        ]);
    }
    table.row(vec![
        "cached hit".to_string(),
        secs(cached_hit),
        format!("{:.1}x", cold / cached_hit.max(1e-12)),
    ]);
    table.row(vec![
        "post single update".to_string(),
        secs(post_single),
        format!("{speedup_single:.1}x"),
    ]);
    table.row(vec![
        "post 16-edge batch".to_string(),
        secs(post_batch),
        format!("{speedup_batch:.1}x"),
    ]);
    println!("\n=== Exp 5 companion: incremental cluster-query cache ===");
    table.print();

    let json = serde_json::json!({
        "n": n, "m": m, "level": level,
        "cold_secs": cold,
        "cold_fill_secs_by_threads": fill_by_threads
            .iter()
            .map(|(t, s)| serde_json::json!({"threads": t, "secs": s}))
            .collect::<Vec<_>>(),
        "cached_hit_secs": cached_hit,
        "post_single_update_secs": post_single,
        "post_batch_secs": post_batch,
        "speedup_single_vs_cold": speedup_single,
        "speedup_batch_vs_cold": speedup_batch,
        "final_generation": qs.generation,
        "hits": qs.hits,
        "misses": qs.misses,
    });
    let path = write_json("BENCH_query", &json).unwrap();
    println!("\n[exp5c] post-single speedup {speedup_single:.1}x (acceptance floor 5x)");
    println!("[exp5c] JSON written to {}", path.display());
}
