//! **Ablation A6** — time-decay vs sliding-window activeness.
//!
//! The paper's Section II contrasts the adopted time-decay scheme with the
//! sliding-window models of prior work. This ablation quantifies the two
//! properties that motivated the choice:
//!
//! 1. **Temporal smoothness** — under a steady stream, how much do edge
//!    weights and the induced clustering jump between consecutive
//!    timestamps? Window weights drop by whole units when activations
//!    expire (cliffs); decayed weights change continuously.
//! 2. **Memory** — the window model must retain every in-window activation;
//!    the anchored decay store is O(1) per edge regardless of rate.
//!
//! Usage: `cargo run --release -p anc-bench --bin abl_window_vs_decay`

use anc_baselines::louvain;
use anc_bench::args::HarnessArgs;
use anc_bench::report::{f3, write_json, Table};
use anc_data::{registry, stream};
use anc_decay::{ActivenessStore, DecayClock, Rescalable, SlidingWindow};
use anc_metrics::nmi;

fn main() {
    let args = HarnessArgs::parse(0.5);
    let ds = registry::by_name("CO").unwrap().materialize_scaled(args.seed, args.scale);
    let g = ds.graph.clone();
    eprintln!("[ablA6] CO stand-in: n = {}, m = {}", g.n(), g.m());

    // Window length chosen so both models have the same effective horizon:
    // a window of W keeps what exp decay at λ weighs ≥ e^{-λW}; with λ = 0.1
    // and W = 20, expired activations would have decayed to 0.135.
    let lambda = 0.1;
    let window = 20.0;
    let steps = 80usize;
    let s = stream::community_biased(&g, &ds.labels, steps, 0.05, 6.0, args.seed ^ 0x99);

    let mut clock = DecayClock::new(lambda);
    let mut decay = ActivenessStore::new(g.m(), 1.0);
    let mut win = SlidingWindow::new(g.m(), window);

    let mut prev_decay_w: Option<Vec<f64>> = None;
    let mut prev_win_w: Option<Vec<f64>> = None;
    let mut prev_decay_c = None;
    let mut prev_win_c = None;

    let mut decay_jump = 0.0f64;
    let mut win_jump = 0.0f64;
    let mut decay_churn = Vec::new();
    let mut win_churn = Vec::new();
    let mut max_retained = 0usize;

    for batch in &s.batches {
        clock.advance_to(batch.time);
        win.advance_to(batch.time);
        for &e in &batch.edges {
            decay.activate(e, &clock);
            win.activate(e, batch.time);
        }
        if clock.needs_rescale() {
            let gf = clock.take_rescale();
            decay.rescale(gf);
        }
        max_retained = max_retained.max(win.retained());

        // Normalized weight vectors for comparability.
        let norm = |mut w: Vec<f64>| {
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            if mean > 0.0 {
                for x in &mut w {
                    *x /= mean;
                }
            }
            w
        };
        let dw = norm((0..g.m() as u32).map(|e| decay.current(e, &clock)).collect());
        let ww = norm(win.weights());

        if let (Some(pd), Some(pw)) = (&prev_decay_w, &prev_win_w) {
            let l1 = |a: &[f64], b: &[f64]| {
                a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
            };
            decay_jump += l1(&dw, pd);
            win_jump += l1(&ww, pw);
        }

        // Cluster churn every 10 steps (Louvain on each weighting).
        if (batch.time as usize).is_multiple_of(10) {
            let dc = louvain::cluster(&g, &dw, &louvain::LouvainParams::default());
            let wc = louvain::cluster(&g, &ww, &louvain::LouvainParams::default());
            if let (Some(pdc), Some(pwc)) = (&prev_decay_c, &prev_win_c) {
                decay_churn.push(1.0 - nmi(&dc, pdc));
                win_churn.push(1.0 - nmi(&wc, pwc));
            }
            prev_decay_c = Some(dc);
            prev_win_c = Some(wc);
        }
        prev_decay_w = Some(dw);
        prev_win_w = Some(ww);
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut table = Table::new(vec!["metric", "time-decay", "sliding-window"]);
    table.row(vec![
        "mean per-step weight jump (L1, normalized)".to_string(),
        format!("{:.5}", decay_jump / (steps - 1) as f64),
        format!("{:.5}", win_jump / (steps - 1) as f64),
    ]);
    table.row(vec![
        "mean cluster churn (1 - NMI between snapshots)".to_string(),
        f3(mean(&decay_churn)),
        f3(mean(&win_churn)),
    ]);
    table.row(vec![
        "state kept per edge".to_string(),
        "1 anchored f64".to_string(),
        format!("all in-window activations (peak {} total)", max_retained),
    ]);

    println!("\n=== Ablation A6: time-decay vs sliding-window activeness (CO stand-in) ===");
    table.print();
    let smoother = decay_jump < win_jump;
    println!(
        "time-decay weights are {} smoother per step; window weights cliff when activations expire",
        if smoother { "strictly" } else { "not" }
    );
    let json = serde_json::json!({
        "decay_jump_per_step": decay_jump / (steps - 1) as f64,
        "window_jump_per_step": win_jump / (steps - 1) as f64,
        "decay_churn": decay_churn,
        "window_churn": win_churn,
        "window_peak_retained": max_retained,
    });
    let path = write_json("abl_window_vs_decay", &json).unwrap();
    println!("\n[ablA6] JSON written to {}", path.display());
}
