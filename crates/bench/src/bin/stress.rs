//! Full-scale stress run: builds the largest registry stand-in (TW,
//! 200k nodes / ~4.6M edges at `--scale 1`), streams activations, and
//! verifies every index invariant at the end. This is the scalability
//! smoke test behind the paper's billion-edge claims, sized to one machine.
//!
//! Usage: `cargo run --release -p anc-bench --bin stress [--scale f]
//! [--steps n]` — default scale 0.25 (≈50k nodes) keeps the run under a few
//! minutes; `--scale 1` exercises the full stand-in.

use anc_bench::args::HarnessArgs;
use anc_bench::time;
use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_data::{registry, stream};

fn main() {
    let args = HarnessArgs::parse(0.25);
    let steps: usize = if args.has("long") { 50 } else { 10 };
    let spec = registry::by_name("TW").unwrap();
    let (ds, gen_secs) = time(|| spec.materialize_scaled(args.seed, args.scale));
    let g = ds.graph.clone();
    println!(
        "[stress] TW stand-in at scale {}: n = {}, m = {} (generated in {gen_secs:.1}s)",
        args.scale,
        g.n(),
        g.m()
    );

    let cfg = AncConfig { rep: 0, lambda: 0.1, ..Default::default() };
    let (mut engine, build_secs) = time(|| AncEngine::new(g.clone(), cfg, args.seed));
    println!(
        "[stress] index built in {build_secs:.1}s ({} levels × 4 pyramids, {:.0} MB)",
        engine.num_levels(),
        engine.memory_bytes() as f64 / 1048576.0
    );

    let s = stream::uniform_per_step(&g, steps, 0.002, args.seed ^ 0x57);
    let total = s.total_activations();
    let (repairs, stream_secs) = time(|| {
        let mut repairs = 0usize;
        for batch in &s.batches {
            repairs += engine.activate_batch(&batch.edges, batch.time).repair_updates;
        }
        repairs
    });
    println!(
        "[stress] {total} activations in {stream_secs:.1}s ({:.0} act/s, {:.1} µs/act, {repairs} index repairs)",
        total as f64 / stream_secs,
        stream_secs / total as f64 * 1e6
    );

    let (c, extract_secs) = time(|| engine.cluster_all(engine.default_level(), ClusterMode::Power));
    println!(
        "[stress] extraction at level {}: {} clusters in {extract_secs:.2}s",
        engine.default_level(),
        c.filter_small(3).num_clusters()
    );

    let (q, query_secs) = time(|| engine.local_cluster(0, engine.default_level()));
    println!("[stress] local query: {} nodes in {query_secs:.4}s", q.len());

    let (check, check_secs) = time(|| engine.check_invariants());
    check.expect("all invariants hold after the stress run");
    println!("[stress] full invariant check passed in {check_secs:.1}s ✓");
}
