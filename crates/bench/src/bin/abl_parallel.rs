//! **Ablation A5 / Lemma 13** — parallel vs serial partition repair.
//!
//! The `k·⌈log₂ n⌉` Voronoi partitions are mutually independent, so one
//! edge-weight change can repair them in parallel. This ablation measures
//! when that pays: per-activation repairs touch tiny regions (fork/join
//! overhead dominates), while large-swing updates on big graphs amortize
//! the overhead.
//!
//! Usage: `cargo run --release -p anc-bench --bin abl_parallel [--scale f]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{secs, write_json, Table};
use anc_bench::time;
use anc_core::{AncConfig, AncEngine};
use anc_data::{registry, stream};

fn main() {
    let args = HarnessArgs::parse(0.5);
    let mut table = Table::new(vec!["dataset", "k", "mode", "sec/activation"]);
    let mut json = Vec::new();
    for name in ["CA", "CM"] {
        let ds = registry::by_name(name).unwrap().materialize_scaled(args.seed, args.scale);
        let g = ds.graph.clone();
        let s = stream::uniform_per_step(&g, 10, 0.05, args.seed ^ 0x11);
        let acts = s.total_activations();
        for k in [4usize, 16] {
            for parallel in [false, true] {
                let cfg = AncConfig { k, rep: 1, parallel_updates: parallel, ..Default::default() };
                let mut engine = AncEngine::new(g.clone(), cfg, args.seed);
                let (_, total) = time(|| {
                    for batch in &s.batches {
                        let _ = engine.activate_batch(&batch.edges, batch.time);
                    }
                });
                let per_act = total / acts as f64;
                eprintln!(
                    "[ablA5] {name} k={k} {}: {per_act:.2e} s/act",
                    if parallel { "parallel" } else { "serial" }
                );
                table.row(vec![
                    name.to_string(),
                    k.to_string(),
                    if parallel { "parallel" } else { "serial" }.to_string(),
                    secs(per_act),
                ]);
                json.push(serde_json::json!({
                    "dataset": name, "k": k, "parallel": parallel, "sec_per_activation": per_act,
                }));
            }
        }
    }

    println!("\n=== Ablation A5: parallel vs serial index repair (Lemma 13) ===");
    table.print();
    let path = write_json("abl_parallel", &serde_json::json!(json)).unwrap();
    println!("\n[ablA5] JSON written to {}", path.display());
}
