//! **Exp 7 / Figure 9** — UPDATE latency over a simulated day on the TW2
//! stand-in.
//!
//! Streams 1440 per-minute bursty batches (λ = 0.01, matching the paper's
//! day-trace setting) through the online engine on a single core and
//! reports the per-minute batch latency series with p50/p95/max.
//!
//! Expected shape (paper): the vast majority of minutes process within a
//! small bound (the paper: 95% within 6.5 s on full Twitter); bursts form
//! visible spikes; no latency accumulation over the day.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp7_day_trace
//! [--scale f] [--rate r]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::write_json;
use anc_bench::{percentile, time};
use anc_core::{AncConfig, AncEngine};
use anc_data::{registry, stream};

fn main() {
    let args = HarnessArgs::parse(0.2);
    let spec = registry::by_name("TW2").unwrap();
    let ds = spec.materialize_scaled(args.seed, args.scale);
    let g = ds.graph.clone();
    eprintln!("[exp7] TW2 stand-in: n = {}, m = {}", g.n(), g.m());

    // Base rate scales with the graph so the day covers a similar fraction
    // of edges as the paper's trace.
    let base_rate = (g.m() / 2000).max(10);
    let day = stream::bursty_day(&g, base_rate, 0.05, 10.0, args.seed ^ 0xdab);
    eprintln!(
        "[exp7] {} activations over 1440 minutes (base rate {base_rate}/min)",
        day.total_activations()
    );

    let cfg = AncConfig { lambda: 0.01, rep: 1, ..Default::default() };
    let mut engine = AncEngine::new(g, cfg, args.seed);

    let mut latencies = Vec::with_capacity(1440);
    for batch in &day.batches {
        let (_, secs) = time(|| engine.activate_batch(&batch.edges, batch.time));
        latencies.push(secs);
    }

    let p50 = percentile(&latencies, 50.0);
    let p95 = percentile(&latencies, 95.0);
    let max = percentile(&latencies, 100.0);
    let total: f64 = latencies.iter().sum();
    println!("\n=== Figure 9: Update Time over a Simulated Day (TW2 stand-in) ===");
    println!("minutes processed : 1440");
    println!("activations       : {}", day.total_activations());
    println!("total update time : {total:.2}s");
    println!("p50 batch latency : {p50:.4}s");
    println!("p95 batch latency : {p95:.4}s  (95% of minutes complete within this)");
    println!("max batch latency : {max:.4}s");
    // Compact ASCII series: max latency per 2-hour bucket.
    println!("\nper-2h max latency (s):");
    for (i, chunk) in latencies.chunks(120).enumerate() {
        let mx = chunk.iter().cloned().fold(0.0f64, f64::max);
        let bars = ((mx / max.max(1e-12)) * 40.0) as usize;
        println!("  {:02}:00  {:>8.4}  {}", i * 2, mx, "#".repeat(bars.max(1)));
    }

    let json = serde_json::json!({
        "n": engine.graph().n(), "m": engine.graph().m(),
        "activations": day.total_activations(),
        "p50": p50, "p95": p95, "max": max, "total": total,
        "latencies": latencies,
    });
    let path = write_json("exp7_day_trace", &json).unwrap();
    println!("\n[exp7] JSON written to {}", path.display());
}
