//! **Ablation A3** — sensitivity to the core parameters ε and µ (the
//! paper's Table II ranges: ε ∈ {0.2..0.7}, µ ∈ {2..9}; per-dataset values
//! live in the technical report, so this sweep takes its place).
//!
//! Expected shape: a broad plateau of good quality for mid-range ε/µ;
//! extreme ε classifies everything as periphery (wedge stretch dominates),
//! extreme µ removes all cores.
//!
//! Usage: `cargo run --release -p anc-bench --bin abl_eps_mu [--datasets CO]`

use anc_bench::args::HarnessArgs;
use anc_bench::methods::{anc_cluster_near, score};
use anc_bench::report::{f3, write_json, Table};
use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_data::registry;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let name = args.datasets.first().cloned().unwrap_or_else(|| "CO".into());
    let ds = registry::by_name(&name).unwrap().materialize_scaled(args.seed, args.scale);
    let g = ds.graph.clone();
    let w = vec![1.0f64; g.m()];
    let target_k = ds.labels.iter().copied().max().map_or(1, |m| m as usize + 1);
    eprintln!("[ablA3] {name}: n = {}, m = {}", g.n(), g.m());

    let epsilons = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
    let mus = [2usize, 3, 4, 5, 6, 7, 8, 9];

    let mut table = Table::new({
        let mut h = vec!["NMI: ε \\ µ".to_string()];
        h.extend(mus.iter().map(|m| m.to_string()));
        h
    });
    let mut json = Vec::new();
    for &eps in &epsilons {
        let mut row = vec![format!("{eps}")];
        for &mu in &mus {
            let cfg = AncConfig { epsilon: eps, mu, rep: 3, ..Default::default() };
            let engine = AncEngine::new(g.clone(), cfg, args.seed);
            let c = anc_cluster_near(&g, engine.pyramids(), target_k, ClusterMode::Power);
            let s = score(&g, &w, &c, &ds.labels);
            row.push(f3(s.nmi));
            json.push(serde_json::json!({
                "dataset": name, "epsilon": eps, "mu": mu,
                "nmi": s.nmi, "purity": s.purity, "f1": s.f1,
            }));
        }
        table.row(row);
    }

    println!("\n=== Ablation A3: ε/µ sensitivity on {name} (NMI) ===");
    table.print();
    let path = write_json("abl_eps_mu", &serde_json::json!(json)).unwrap();
    println!("\n[ablA3] JSON written to {}", path.display());
}
