//! **Exp 4 / Figure 6** — index memory vs number of pyramids.
//!
//! Deep-byte accounting of the pyramids index for k ∈ {2, 4, 8, 16}
//! (graph storage excluded, matching the paper's convention), plus the
//! dataset-size/index-size ratio the paper reports (average 0.53 on graphs
//! with > 1M edges).
//!
//! Also reports, at k = 4, the on-disk snapshot cost per node for each
//! persistence encoding (DESIGN.md §11): JSON, binary Exact, and binary
//! Compact.
//!
//! Expected shape (paper): memory linear in k and driven by the vertex
//! count (`O(n log² n)`, Lemma 7), largely independent of m.
//!
//! Usage: `cargo run --release -p anc-bench --bin exp4_index_size
//! [--datasets ...] [--scale f]`

use anc_bench::args::HarnessArgs;
use anc_bench::report::{write_json, Table};
use anc_core::{AncConfig, AncEngine, Pyramids, SnapshotProfile};
use anc_data::registry;

fn main() {
    let args = HarnessArgs::parse(1.0);
    let names: Vec<String> = if args.datasets.is_empty() {
        ["CA", "MI", "LA", "CM", "IE", "GI", "EA", "DB"].iter().map(|s| s.to_string()).collect()
    } else {
        args.datasets.clone()
    };
    let ks = [2usize, 4, 8, 16];

    let mut table = Table::new({
        let mut h = vec!["dataset".to_string(), "n".to_string(), "graph MB".to_string()];
        h.extend(ks.iter().map(|k| format!("k={k} MB")));
        h.push("data/index (k=4)".into());
        h.push("json B/n".into());
        h.push("exact B/n".into());
        h.push("compact B/n".into());
        h
    });
    let mut json = Vec::new();

    for name in &names {
        let spec = registry::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let ds = spec.materialize_scaled(args.seed, args.scale);
        let g = &ds.graph;
        let w = vec![1.0f64; g.m()];
        let graph_mb = g.memory_bytes() as f64 / (1024.0 * 1024.0);
        let mut row = vec![name.clone(), g.n().to_string(), format!("{graph_mb:.1}")];
        let mut ratio_k4 = f64::NAN;
        for &k in &ks {
            let pyr = Pyramids::build(g, &w, k, 0.7, args.seed);
            let mb = pyr.memory_bytes() as f64 / (1024.0 * 1024.0);
            if k == 4 {
                ratio_k4 = graph_mb / mb;
            }
            eprintln!("[exp4] {name} k={k}: {mb:.1} MB");
            row.push(format!("{mb:.1}"));
            json.push(serde_json::json!({
                "dataset": name, "n": g.n(), "m": g.m(), "k": k,
                "index_bytes": pyr.memory_bytes(), "graph_bytes": g.memory_bytes(),
            }));
        }
        row.push(format!("{ratio_k4:.2}"));

        // Snapshot cost per node at k = 4, one row per encoding.
        let cfg = AncConfig { k: 4, rep: 1, ..Default::default() };
        let engine = AncEngine::new(g.clone(), cfg, args.seed);
        let mut json_buf = Vec::new();
        engine.save_json(&mut json_buf).unwrap();
        let mut exact_buf = Vec::new();
        engine.save_binary(&mut exact_buf, SnapshotProfile::Exact).unwrap();
        let mut compact_buf = Vec::new();
        engine.save_binary(&mut compact_buf, SnapshotProfile::Compact).unwrap();
        let bpn = |b: usize| b as f64 / g.n() as f64;
        eprintln!(
            "[exp4] {name} snapshots: json {} B, exact {} B, compact {} B",
            json_buf.len(),
            exact_buf.len(),
            compact_buf.len()
        );
        row.push(format!("{:.1}", bpn(json_buf.len())));
        row.push(format!("{:.1}", bpn(exact_buf.len())));
        row.push(format!("{:.1}", bpn(compact_buf.len())));
        json.push(serde_json::json!({
            "dataset": name, "n": g.n(), "m": g.m(), "k": 4,
            "snapshot_json_bytes": json_buf.len(),
            "snapshot_binary_exact_bytes": exact_buf.len(),
            "snapshot_binary_compact_bytes": compact_buf.len(),
            "snapshot_json_bytes_per_node": bpn(json_buf.len()),
            "snapshot_binary_exact_bytes_per_node": bpn(exact_buf.len()),
            "snapshot_binary_compact_bytes_per_node": bpn(compact_buf.len()),
        }));
        table.row(row);
    }

    println!("\n=== Figure 6: Index Memory Cost ===");
    table.print();
    let path = write_json("exp4_index_size", &serde_json::json!(json)).unwrap();
    println!("\n[exp4] JSON written to {}", path.display());
}
