//! Criterion micro-benchmarks for the baseline methods (Table III/IV
//! companion): one full offline run each, plus per-step costs of the online
//! baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anc_baselines::{attractor, dyna::DynaEngine, louvain, lwep::LwepEngine, scan, spectral};
use anc_graph::gen::{planted_partition, PlantedConfig};

fn bench_offline(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(1000), 13);
    let g = &lg.graph;
    let w = vec![1.0f64; g.m()];
    let mut group = c.benchmark_group("baselines_offline");
    group.sample_size(10);

    group.bench_function("scan", |b| {
        b.iter(|| black_box(scan::cluster(g, &scan::ScanParams::default())))
    });
    group.bench_function("louvain", |b| {
        b.iter(|| black_box(louvain::cluster(g, &w, &louvain::LouvainParams::default())))
    });
    group.bench_function("attractor_5iter", |b| {
        b.iter(|| {
            black_box(attractor::cluster(
                g,
                &w,
                &attractor::AttractorParams { lambda: 0.5, max_iter: 5 },
            ))
        })
    });
    group.bench_function("spectral_k16", |b| {
        b.iter(|| {
            black_box(spectral::cluster(
                g,
                &w,
                &spectral::SpectralParams { k: 16, power_iters: 10, kmeans_iters: 10 },
                5,
            ))
        })
    });
    group.finish();
}

fn bench_online(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(1000), 17);
    let g = lg.graph.clone();
    let mut group = c.benchmark_group("baselines_online_step");
    group.sample_size(10);

    group.bench_function("dyna_step", |b| {
        let mut engine = DynaEngine::new(g.clone(), vec![1.0; g.m()], 0.1);
        let mut t = 1.0;
        let mut e = 0u32;
        b.iter(|| {
            t += 0.01;
            e = (e + 31) % g.m() as u32;
            engine.step(t, &[e]);
        })
    });
    group.bench_function("lwep_step", |b| {
        let mut engine = LwepEngine::new(g.clone(), vec![1.0; g.m()], 0.1);
        let mut t = 1.0;
        let mut e = 0u32;
        b.iter(|| {
            t += 0.01;
            e = (e + 31) % g.m() as u32;
            engine.step(t, &[e]);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_offline, bench_online);
criterion_main!(benches);
