//! Criterion micro-benchmarks for the incremental update path (Exp 6 /
//! Figure 8 companion): single-activation UPDATE vs full RECONSTRUCT, and
//! the raw Voronoi repair algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anc_core::voronoi::VoronoiPartition;
use anc_core::{AncConfig, AncEngine, BatchMode};
use anc_graph::gen::{planted_partition, PlantedConfig};

fn bench_engine_update(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(2000), 5);
    let cfg = AncConfig { rep: 1, ..Default::default() };
    let mut group = c.benchmark_group("engine_update");
    group.sample_size(10);

    group.bench_function("activate_one", |b| {
        let mut engine = AncEngine::new(lg.graph.clone(), cfg.clone(), 1);
        let m = engine.graph().m() as u32;
        let mut e = 0u32;
        let mut t = 1.0;
        b.iter(|| {
            e = (e + 101) % m;
            t += 0.01;
            engine.activate(black_box(e), t);
        })
    });

    group.bench_function("reconstruct", |b| {
        let mut engine = AncEngine::new(lg.graph.clone(), cfg.clone(), 1);
        b.iter(|| engine.reconstruct_index())
    });
    group.finish();
}

/// The batch-ingestion pipeline (DESIGN.md §7): a 256-activation batch
/// through the serial loop vs the exact and fused batch paths. The fused
/// run also prints one `BatchStats` line so σ-dedup and repair-skip
/// counters are visible alongside the timings.
fn bench_batch_ingest(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(2000), 5);
    let m = lg.graph.m() as u32;
    let batch: Vec<u32> = (0..256u32).map(|i| (i * 101) % m).collect();
    let mut group = c.benchmark_group("batch_ingest");
    group.sample_size(10);

    group.bench_function("serial_loop_256", |b| {
        let cfg = AncConfig { rep: 1, ..Default::default() };
        let mut engine = AncEngine::new(lg.graph.clone(), cfg, 1);
        let mut t = 1.0;
        b.iter(|| {
            t += 0.01;
            for &e in &batch {
                engine.activate(black_box(e), t);
            }
        })
    });

    for (name, mode) in
        [("exact_batch_256", BatchMode::Exact), ("fused_batch_256", BatchMode::Fused)]
    {
        group.bench_function(name, |b| {
            let cfg = AncConfig { rep: 1, batch: mode, ..Default::default() };
            let mut engine = AncEngine::new(lg.graph.clone(), cfg, 1);
            let mut t = 1.0;
            let mut reported = false;
            b.iter(|| {
                t += 0.01;
                let stats = engine.activate_batch(black_box(&batch), t);
                if !reported {
                    reported = true;
                    eprintln!(
                        "[{name}] stats: dirty={} sigma={} repairs={} skips={}",
                        stats.dirty_edges,
                        stats.sigma_recomputes,
                        stats.repair_updates,
                        stats.repair_skips
                    );
                }
                black_box(stats.dirty_edges)
            })
        });
    }
    group.finish();
}

fn bench_voronoi_repair(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(2000), 9);
    let g = &lg.graph;
    let mut w = vec![1.0f64; g.m()];
    let seeds: Vec<u32> = (0..32u32)
        .map(|i| i * 53 % g.n() as u32)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut group = c.benchmark_group("voronoi_repair");
    group.sample_size(20);

    group.bench_function("decrease_then_increase", |b| {
        let mut p = VoronoiPartition::build(g, &w, seeds.clone());
        let mut e = 0usize;
        b.iter(|| {
            e = (e + 211) % g.m();
            let old = w[e];
            w[e] = old * 0.5;
            p.on_weight_change(g, &w, e as u32, old);
            let old = w[e];
            w[e] = old * 2.0;
            p.on_weight_change(g, &w, e as u32, old);
        })
    });

    group.bench_function("full_build", |b| {
        b.iter(|| black_box(VoronoiPartition::build(g, &w, seeds.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench_engine_update, bench_batch_ingest, bench_voronoi_repair);
criterion_main!(benches);
