//! Criterion micro-benchmarks for incremental vote maintenance (the paper's
//! Section V-C Remarks): cache build, per-update repair, and monitored
//! activation overhead vs the bare engine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anc_core::{AncConfig, AncEngine, ClusterMonitor, VoteCache};
use anc_graph::gen::{planted_partition, PlantedConfig};

fn bench_vote(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(2000), 3);
    let cfg = AncConfig { rep: 1, ..Default::default() };
    let mut group = c.benchmark_group("vote_maintenance");
    group.sample_size(10);

    group.bench_function("cache_build", |b| {
        let engine = AncEngine::new(lg.graph.clone(), cfg.clone(), 1);
        b.iter(|| black_box(VoteCache::build(engine.graph(), engine.pyramids())))
    });

    group.bench_function("activate_bare", |b| {
        let mut engine = AncEngine::new(lg.graph.clone(), cfg.clone(), 1);
        let m = engine.graph().m() as u32;
        let (mut e, mut t) = (0u32, 1.0);
        b.iter(|| {
            e = (e + 101) % m;
            t += 0.01;
            engine.activate(e, t);
        })
    });

    group.bench_function("activate_monitored", |b| {
        let mut engine = AncEngine::new(lg.graph.clone(), cfg.clone(), 1);
        let g = engine.graph().clone();
        let level = engine.default_level();
        let mut monitor = ClusterMonitor::new(&g, engine.pyramids(), &[0, 1, 2, 3], level);
        let m = g.m() as u32;
        let (mut e, mut t) = (0u32, 1.0);
        b.iter(|| {
            e = (e + 101) % m;
            t += 0.01;
            let trace = engine.activate_traced(e, t);
            if !trace.is_empty() {
                black_box(monitor.apply_update(&g, engine.pyramids(), e, &trace));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vote);
criterion_main!(benches);
