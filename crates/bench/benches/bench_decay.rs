//! Criterion micro-benchmarks for the decay layer (Lemma 1 / Ablation A4
//! companion): per-activation anchored maintenance vs the naive Eq. 1
//! evaluation, and the batched-rescale sweep cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anc_decay::{ActivenessStore, DecayClock, RawActivations, Rescalable};

fn bench_decay(c: &mut Criterion) {
    let m = 100_000usize;
    let mut group = c.benchmark_group("decay");

    group.bench_function("anchored_activate", |b| {
        let mut clock = DecayClock::new(0.1);
        let mut store = ActivenessStore::new(m, 1.0);
        let mut t = 0.0;
        let mut e = 0u32;
        b.iter(|| {
            t += 0.001;
            e = (e + 7919) % m as u32;
            clock.advance_to(t);
            store.activate(e, &clock);
        })
    });

    group.bench_function("anchored_read", |b| {
        let mut clock = DecayClock::new(0.1);
        let store = ActivenessStore::new(m, 1.0);
        clock.advance_to(10.0);
        let mut e = 0u32;
        b.iter(|| {
            e = (e + 7919) % m as u32;
            black_box(store.current(e, &clock))
        })
    });

    group.bench_function("raw_eq1_read_100_activations", |b| {
        let mut raw = RawActivations::new(1, 0.1);
        for i in 0..100 {
            raw.activate(0, i as f64 * 0.1);
        }
        b.iter(|| black_box(raw.activeness_at(0, 50.0)))
    });

    group.bench_function("batched_rescale_100k_edges", |b| {
        let mut clock = DecayClock::new(0.1);
        let mut store = ActivenessStore::new(m, 1.0);
        let mut t = 0.0;
        b.iter(|| {
            t += 1.0;
            clock.advance_to(t);
            let g = clock.take_rescale();
            store.rescale(g);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decay);
criterion_main!(benches);
