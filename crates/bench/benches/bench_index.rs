//! Criterion micro-benchmarks for index construction (Exp 3/4 companion):
//! pyramids build time scaling in k and in graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anc_core::Pyramids;
use anc_graph::gen::{planted_partition, PlantedConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pyramids_build");
    group.sample_size(10);
    for &n in &[1000usize, 4000] {
        let lg = planted_partition(&PlantedConfig::default_for(n), 7);
        let w = vec![1.0f64; lg.graph.m()];
        for &k in &[2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), format!("k{k}")),
                &k,
                |b, &k| {
                    b.iter(|| {
                        black_box(Pyramids::build(&lg.graph, &w, k, 0.7, 42));
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
