//! Criterion micro-benchmarks for cluster extraction and local queries
//! (Exp 5 / Figure 7 companion): global even/power clustering per level,
//! and local-cluster queries whose cost tracks the result size (Lemma 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anc_core::{cluster, query, AncConfig, AncEngine, ClusterMode, Pyramids};
use anc_graph::gen::{planted_partition, PlantedConfig};

fn fixture() -> (anc_graph::Graph, Pyramids) {
    let lg = planted_partition(&PlantedConfig::default_for(4000), 11);
    // Weight by community structure so voting has signal.
    let w: Vec<f64> = lg
        .graph
        .iter_edges()
        .map(|(_, u, v)| if lg.labels[u as usize] == lg.labels[v as usize] { 0.3 } else { 10.0 })
        .collect();
    let pyr = Pyramids::build(&lg.graph, &w, 4, 0.7, 3);
    (lg.graph, pyr)
}

fn bench_extraction(c: &mut Criterion) {
    let (g, pyr) = fixture();
    let mut group = c.benchmark_group("cluster_extraction");
    group.sample_size(10);
    for level in [4usize, 6, 8] {
        let level = level.min(pyr.num_levels() - 1);
        group.bench_with_input(BenchmarkId::new("even", level), &level, |b, &l| {
            b.iter(|| black_box(cluster::cluster_all(&g, &pyr, l, ClusterMode::Even)))
        });
        group.bench_with_input(BenchmarkId::new("power", level), &level, |b, &l| {
            b.iter(|| black_box(cluster::cluster_all(&g, &pyr, l, ClusterMode::Power)))
        });
    }
    group.finish();
}

fn bench_local_query(c: &mut Criterion) {
    let (g, pyr) = fixture();
    let mut group = c.benchmark_group("local_query");
    group.sample_size(20);
    let level = pyr.default_level();
    group.bench_function("local_cluster", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 37) % g.n() as u32;
            black_box(query::local_cluster(&g, &pyr, v, level))
        })
    });
    group.bench_function("local_cluster_power", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 37) % g.n() as u32;
            black_box(query::local_cluster_power(&g, &pyr, v, level))
        })
    });
    group.bench_function("smallest_cluster", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 37) % g.n() as u32;
            black_box(query::smallest_cluster(&g, &pyr, v))
        })
    });
    group.finish();
}

/// Cold recompute vs the incremental cluster-query cache: a pointer hit,
/// a query right after one activation (dirty-edge repair), and a query
/// right after a 16-edge batch (grouped repair).
fn bench_cluster_query(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(2000), 11);
    let cfg = AncConfig { k: 3, rep: 1, ..Default::default() };
    let mut engine = AncEngine::new(lg.graph, cfg, 11);
    let m = engine.graph().m() as u32;
    let mut t = 0.0;
    for i in 0..200u32 {
        t += 0.05;
        engine.activate((i * 13 + 5) % m, t);
    }
    let level = engine.default_level();

    let mut group = c.benchmark_group("cluster_query");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            black_box(cluster::cluster_all(
                engine.graph(),
                engine.pyramids(),
                level,
                ClusterMode::Power,
            ))
        })
    });
    group.bench_function("cached_hit", |b| {
        engine.cluster_all_cached(level, ClusterMode::Power);
        b.iter(|| black_box(engine.cluster_all_cached(level, ClusterMode::Power)))
    });
    group.bench_function("cached_post_single_update", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            t += 0.05;
            engine.activate((i * 7 + 1) % m, t);
            black_box(engine.cluster_all_cached(level, ClusterMode::Power))
        })
    });
    group.bench_function("cached_post_batch", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            t += 0.05;
            let batch: Vec<u32> = (0..16u32).map(|j| (i * 31 + j * 7) % m).collect();
            let _ = engine.activate_batch(&batch, t);
            black_box(engine.cluster_all_cached(level, ClusterMode::Power))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction, bench_local_query, bench_cluster_query);
criterion_main!(benches);
