//! Criterion micro-benchmarks for the similarity layer (Lemma 5
//! companion): σ evaluation, whole-neighborhood σ, node classification and
//! one local-reinforcement application.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anc_core::reinforce::{apply_reinforcement, ReinforceParams};
use anc_core::similarity::{Scratch, SimilarityCtx};
use anc_graph::gen::{planted_partition, PlantedConfig};

fn bench_similarity(c: &mut Criterion) {
    let lg = planted_partition(&PlantedConfig::default_for(2000), 3);
    let g = &lg.graph;
    let act = vec![1.0f64; g.m()];
    let mut node_sum = vec![0.0f64; g.n()];
    for (e, u, v) in g.iter_edges() {
        node_sum[u as usize] += act[e as usize];
        node_sum[v as usize] += act[e as usize];
    }
    let ctx = SimilarityCtx { g, act: &act, node_sum: &node_sum };
    let mut scratch = Scratch::new(g.n());
    let mut group = c.benchmark_group("similarity");

    group.bench_function("sigma_edge", |b| {
        let mut e = 0u32;
        b.iter(|| {
            e = (e + 97) % g.m() as u32;
            let (u, v) = g.endpoints(e);
            black_box(ctx.sigma(u, v))
        })
    });

    group.bench_function("sigma_all_node", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 61) % g.n() as u32;
            ctx.sigma_all(v, &mut scratch);
            black_box(scratch.sigmas.len())
        })
    });

    group.bench_function("node_type", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 61) % g.n() as u32;
            black_box(ctx.node_type(v, 0.3, 3, &mut scratch))
        })
    });

    group.bench_function("apply_reinforcement", |b| {
        let params = ReinforceParams { epsilon: 0.3, mu: 3, floor_anchored: 1e-9 };
        let mut sim = vec![1.0f64; g.m()];
        let mut e = 0u32;
        b.iter(|| {
            e = (e + 97) % g.m() as u32;
            black_box(apply_reinforcement(&ctx, &mut sim, e, &params, &mut scratch))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
