//! End-to-end checks for the audit pass, per the acceptance criteria:
//!
//! 1. the real workspace scans clean (exit 0 / no findings), and
//! 2. re-seeding a violation — HashMap iteration in `core`'s `vote.rs` —
//!    is caught (nonzero verdict).
//!
//! The seeded case runs against a synthetic tree in a temp directory so the
//! real sources are never touched.

use std::path::{Path, PathBuf};

use anc_audit::{parse_baseline, ratchet, ratchet_a7, scan_tree};

fn repo_root() -> PathBuf {
    // crates/audit → crates → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).unwrap().to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    let root = repo_root();
    let report = scan_tree(&root).expect("scan the real tree");
    assert!(
        report.findings.is_empty(),
        "workspace must be audit-clean, found:\n{}",
        report.findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    let baseline_text =
        std::fs::read_to_string(root.join(anc_audit::BASELINE_PATH)).expect("baseline file");
    let (errors, _notes) = ratchet(&parse_baseline(&baseline_text), &report.unwrap_counts);
    assert!(errors.is_empty(), "unwrap counts must be within baseline: {errors:?}");
    let a7_text =
        std::fs::read_to_string(root.join(anc_audit::BASELINE_A7_PATH)).expect("A7 baseline file");
    let (a7_errors, _notes) = ratchet_a7(&parse_baseline(&a7_text), &report.alloc_counts);
    assert!(a7_errors.is_empty(), "hot-alloc counts must be within baseline: {a7_errors:?}");
}

#[test]
fn seeded_hash_iteration_fails_the_audit() {
    let tmp = std::env::temp_dir().join(format!("anc-audit-seeded-{}", std::process::id()));
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).unwrap();
    // A vote.rs with the exact anti-pattern the lint exists to keep out:
    // iterating a HashSet while mutating deterministic state.
    std::fs::write(
        core_src.join("vote.rs"),
        "use std::collections::HashSet;\n\
         pub fn drain_watched(watched: &HashSet<u32>, out: &mut Vec<u32>) {\n\
         \x20   for v in watched.iter() {\n\
         \x20       out.push(*v);\n\
         \x20   }\n\
         }\n",
    )
    .unwrap();
    std::fs::write(core_src.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod vote;\n").unwrap();

    let report = scan_tree(&tmp).expect("scan the seeded tree");
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "hash-iter");
    assert_eq!(f.file, "crates/core/src/vote.rs");
    assert_eq!(f.line, 3);
}

#[test]
fn seeded_unwrap_over_baseline_fails_the_ratchet() {
    let tmp = std::env::temp_dir().join(format!("anc-audit-ratchet-{}", std::process::id()));
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).unwrap();
    std::fs::write(
        core_src.join("lib.rs"),
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    )
    .unwrap();
    let report = scan_tree(&tmp).expect("scan");
    std::fs::remove_dir_all(&tmp).unwrap();

    assert!(report.findings.is_empty(), "{:?}", report.findings);
    // Empty baseline: the new unwrap must trip the ratchet.
    let (errors, _) = ratchet(&std::collections::BTreeMap::new(), &report.unwrap_counts);
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert_eq!(errors[0].rule, "unwrap-budget");
}
