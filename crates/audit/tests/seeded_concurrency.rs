//! Seeded-violation tests for the concurrency rules A9/A10/A11, driving the
//! **binary** end to end (exit code + JSON attribution), mirroring
//! `seeded_reachability.rs`:
//!
//! * **A9 `lock-order`**: two functions acquiring the same two mutexes in
//!   opposite orders must fail the audit with the full acquisition chain;
//! * **A10 `atomic-ordering`**: a `Relaxed` store publishing a flag that is
//!   consumed with `Acquire` must fail attributed to the Relaxed site;
//! * **A11 `blocking-in-reader`**: a lock acquisition reachable from
//!   `AncEngine::cluster_all_cached` must fail with the reader chain.
//!
//! Each rule also has a justified-`audit:allow` variant proving the
//! suppression path (exit 0), and the `--explain` surface is covered for
//! both lookup forms plus the unknown-rule error.
//!
//! Fixture lock/unwrap lines carry `audit:allow(panic-path, unwrap-budget)`
//! where needed so only the rule under test can fire.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Lays down a minimal workspace at `tmp` with empty A5/A7 baselines and
/// the given `crates/core/src/engine.rs` body.
fn seed_tree(tmp: &Path, engine_src: &str) {
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).unwrap();
    std::fs::write(core_src.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod engine;\n").unwrap();
    std::fs::write(core_src.join("engine.rs"), engine_src).unwrap();
    let audit_dir = tmp.join("crates/audit");
    std::fs::create_dir_all(&audit_dir).unwrap();
    std::fs::write(audit_dir.join("baseline_a5.txt"), "# empty A5 baseline\n").unwrap();
    std::fs::write(audit_dir.join("baseline_a7.txt"), "# empty A7 baseline\n").unwrap();
}

/// Runs the audit binary on `root` with `--format json`, returning
/// `(exit code, stdout)`.
fn run_audit(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--root", root.to_str().unwrap(), "--format", "json"])
        .output()
        .expect("run anc-audit");
    (out.status.code().expect("exit code"), String::from_utf8(out.stdout).expect("utf8 stdout"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anc-audit-{tag}-{}", std::process::id()))
}

/// Two mutexes acquired in opposite orders; `allow_rev` suppresses the
/// cycle-closing acquisition with a justified `audit:allow(lock-order)`.
fn deadlock_src(allow_rev: bool) -> String {
    let allow = if allow_rev {
        "// audit:allow(lock-order) -- fixture: reverse order is proven unreachable here\n  "
    } else {
        ""
    };
    format!(
        "pub struct Pair {{\n\
           a: std::sync::Mutex<u32>,\n\
           b: std::sync::Mutex<u32>,\n\
         }}\n\
         impl Pair {{\n\
           pub fn forward(&self) {{\n\
             let ga = self.a.lock().unwrap(); // audit:allow(unwrap-budget) -- fixture\n\
             let gb = self.b.lock().unwrap(); // audit:allow(unwrap-budget) -- fixture\n\
             drop(gb);\n\
             drop(ga);\n\
           }}\n\
           pub fn reverse(&self) {{\n\
             let gb = self.b.lock().unwrap(); // audit:allow(unwrap-budget) -- fixture\n\
             {allow}let ga = self.a.lock().unwrap(); // audit:allow(unwrap-budget) -- fixture\n\
             drop(ga);\n\
             drop(gb);\n\
           }}\n\
         }}\n"
    )
}

#[test]
fn seeded_lock_order_cycle_exits_nonzero_with_the_chain() {
    let tmp = tmp_dir("a9");
    seed_tree(&tmp, &deadlock_src(false));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "an acquisition cycle must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"lock-order\""), "must attribute to A9: {stdout}");
    assert!(stdout.contains("potential deadlock"), "{stdout}");
    assert!(
        stdout.contains("Pair::forward") && stdout.contains("Pair::reverse"),
        "the chain must name both witnesses: {stdout}"
    );
    // Both lock-graph edges are reported alongside the finding.
    assert!(
        stdout.contains("\"from\":\"a\",\"to\":\"b\"")
            && stdout.contains("\"from\":\"b\",\"to\":\"a\""),
        "lock_edges must carry the cycle: {stdout}"
    );
}

#[test]
fn seeded_lock_order_allow_clears_the_cycle() {
    let tmp = tmp_dir("a9-allow");
    seed_tree(&tmp, &deadlock_src(true));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "a justified allow must clear A9; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}

#[test]
fn seeded_relaxed_publish_exits_nonzero_at_the_relaxed_site() {
    let tmp = tmp_dir("a10");
    seed_tree(
        &tmp,
        "use std::sync::atomic::{AtomicBool, Ordering};\n\
         pub struct Flag {\n\
           ready: AtomicBool,\n\
         }\n\
         impl Flag {\n\
           pub fn publish(&self) {\n\
             self.ready.store(true, Ordering::Relaxed);\n\
           }\n\
           pub fn consume(&self) -> bool {\n\
             self.ready.load(Ordering::Acquire)\n\
           }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a Relaxed publish must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"atomic-ordering\""), "must attribute to A10: {stdout}");
    // Attributed to the store line (7), not the Acquire side.
    assert!(stdout.contains("\"line\":7"), "must flag the Relaxed site: {stdout}");
    assert!(stdout.contains("Flag::publish") && stdout.contains("Acquire"), "{stdout}");
}

#[test]
fn seeded_relaxed_publish_allow_clears_it() {
    let tmp = tmp_dir("a10-allow");
    seed_tree(
        &tmp,
        "use std::sync::atomic::{AtomicBool, Ordering};\n\
         pub struct Flag {\n\
           ready: AtomicBool,\n\
         }\n\
         impl Flag {\n\
           pub fn publish(&self) {\n\
             // audit:allow(atomic-ordering) -- fixture: no data is guarded by this flag\n\
             self.ready.store(true, Ordering::Relaxed);\n\
           }\n\
           pub fn consume(&self) -> bool {\n\
             self.ready.load(Ordering::Acquire)\n\
           }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "a justified allow must clear A10; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}

/// A lock two calls below the wait-free root; `allowed` suppresses it (the
/// allow must sit on the line directly above the lock, so all suppressed
/// rules share one comment).
fn reader_src(allowed: bool) -> String {
    let rules = if allowed {
        "blocking-in-reader, panic-path, unwrap-budget"
    } else {
        "panic-path, unwrap-budget"
    };
    format!(
        "pub struct AncEngine {{\n\
           state: std::sync::Mutex<u32>,\n\
         }}\n\
         impl AncEngine {{\n\
           pub fn cluster_all_cached(&self) -> u32 {{\n\
             self.read_state()\n\
           }}\n\
           fn read_state(&self) -> u32 {{\n\
             // audit:allow({rules}) -- fixture: cold path, pre-publication\n\
             *self.state.lock().unwrap()\n\
           }}\n\
         }}\n"
    )
}

#[test]
fn seeded_lock_under_query_root_exits_nonzero_with_the_chain() {
    let tmp = tmp_dir("a11");
    seed_tree(&tmp, &reader_src(false));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a blocking reader must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"blocking-in-reader\""), "must attribute to A11: {stdout}");
    assert!(
        stdout.contains("AncEngine::cluster_all_cached → AncEngine::read_state")
            || stdout.contains("AncEngine::cluster_all_cached \\u2192 AncEngine::read_state"),
        "the finding must carry the reader chain: {stdout}"
    );
}

#[test]
fn seeded_lock_under_query_root_allow_clears_it() {
    let tmp = tmp_dir("a11-allow");
    seed_tree(&tmp, &reader_src(true));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "a justified allow must clear A11; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}

#[test]
fn explain_prints_rules_by_name_and_id() {
    let by_name = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--explain", "lock-order"])
        .output()
        .expect("run anc-audit");
    assert!(by_name.status.success());
    let text = String::from_utf8(by_name.stdout).unwrap();
    assert!(text.contains("A9") && text.contains("deadlock"), "{text}");
    assert!(text.contains("suppression"), "{text}");

    let by_id = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--explain", "a10"])
        .output()
        .expect("run anc-audit");
    assert!(by_id.status.success());
    let text = String::from_utf8(by_id.stdout).unwrap();
    assert!(text.contains("atomic-ordering"), "{text}");

    let all = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--explain", "all"])
        .output()
        .expect("run anc-audit");
    assert!(all.status.success());
    let text = String::from_utf8(all.stdout).unwrap();
    for id in ["A1", "A5", "A9", "A10", "A11"] {
        assert!(text.contains(&format!("{id} `")), "missing {id}: {text}");
    }

    let unknown = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("run anc-audit");
    assert_eq!(unknown.status.code(), Some(2), "unknown rule is a usage error");
}

/// Lays down a minimal workspace whose code lives in the **server** crate,
/// covering the serving reader roots added in ISSUE 10.
fn seed_server_tree(tmp: &Path, server_src: &str) {
    let server_dir = tmp.join("crates/server/src");
    std::fs::create_dir_all(&server_dir).unwrap();
    std::fs::write(server_dir.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod snapshot;\n")
        .unwrap();
    std::fs::write(server_dir.join("snapshot.rs"), server_src).unwrap();
    let audit_dir = tmp.join("crates/audit");
    std::fs::create_dir_all(&audit_dir).unwrap();
    std::fs::write(audit_dir.join("baseline_a5.txt"), "# empty A5 baseline\n").unwrap();
    std::fs::write(audit_dir.join("baseline_a7.txt"), "# empty A7 baseline\n").unwrap();
}

/// A lock one call below the wait-free serving root
/// `ServeSnapshot::same_cluster_at` (no unwrap: only A11 may fire).
fn serve_reader_src(allowed: bool) -> String {
    let allow = if allowed {
        "// audit:allow(blocking-in-reader) -- fixture: provably uncontended here\n      "
    } else {
        ""
    };
    format!(
        "pub struct ServeSnapshot {{\n\
           labels: std::sync::Mutex<Vec<u32>>,\n\
         }}\n\
         impl ServeSnapshot {{\n\
           pub fn same_cluster_at(&self, u: u32, v: u32) -> Option<bool> {{\n\
             self.lookup(u, v)\n\
           }}\n\
           fn lookup(&self, u: u32, v: u32) -> Option<bool> {{\n\
             {allow}if let Ok(l) = self.labels.lock() {{\n\
               return Some(l.get(u as usize) == l.get(v as usize));\n\
             }}\n\
             None\n\
           }}\n\
         }}\n"
    )
}

#[test]
fn seeded_lock_under_serving_reader_root_exits_nonzero() {
    let tmp = tmp_dir("a11-serve");
    seed_server_tree(&tmp, &serve_reader_src(false));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a blocking serving reader must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"blocking-in-reader\""), "must attribute to A11: {stdout}");
    assert!(
        stdout.contains("ServeSnapshot::same_cluster_at → ServeSnapshot::lookup")
            || stdout.contains("ServeSnapshot::same_cluster_at \\u2192 ServeSnapshot::lookup"),
        "the finding must carry the serving reader chain: {stdout}"
    );
}

#[test]
fn seeded_lock_under_serving_reader_root_allow_clears_it() {
    let tmp = tmp_dir("a11-serve-allow");
    seed_server_tree(&tmp, &serve_reader_src(true));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "a justified allow must clear the serving A11; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}
