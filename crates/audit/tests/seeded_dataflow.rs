//! Seeded-violation tests for the stage-4 dataflow rules, driving the
//! **binary** end to end (exit code + JSON report), mirroring
//! `seeded_reachability.rs`:
//!
//! * **A12 nondet-taint**: an env-dependent thread count flowing through an
//!   intermediate binding into a `save_binary` sink must fail the audit
//!   with the source→…→sink chain in the message;
//! * **A13 lossy-persist**: a narrowing `as u8` cast reachable from a
//!   serialization root must fail attributed to `lossy-persist`;
//! * **A14 swallowed-error**: a `let _ =` over a fallible call on a
//!   `DurableEngine` recovery path must fail attributed to
//!   `swallowed-error`.
//!
//! Each test lays down a synthetic workspace in a temp directory so the
//! real sources are never touched.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Lays down a minimal workspace at `tmp` with empty A5/A7 baselines and
/// the given `crates/core/src/engine.rs` body.
fn seed_tree(tmp: &Path, engine_src: &str) {
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).unwrap();
    std::fs::write(core_src.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod engine;\n").unwrap();
    std::fs::write(core_src.join("engine.rs"), engine_src).unwrap();
    let audit_dir = tmp.join("crates/audit");
    std::fs::create_dir_all(&audit_dir).unwrap();
    std::fs::write(audit_dir.join("baseline_a5.txt"), "# empty A5 baseline\n").unwrap();
    std::fs::write(audit_dir.join("baseline_a7.txt"), "# empty A7 baseline\n").unwrap();
}

/// Runs the audit binary on `root` with `--format json`, returning
/// `(exit code, stdout)`.
fn run_audit(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--root", root.to_str().unwrap(), "--format", "json"])
        .output()
        .expect("run anc-audit");
    (out.status.code().expect("exit code"), String::from_utf8(out.stdout).expect("utf8 stdout"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anc-audit-{tag}-{}", std::process::id()))
}

#[test]
fn seeded_nondet_source_reaching_sink_exits_nonzero_with_chain() {
    let tmp = tmp_dir("a12");
    seed_tree(
        &tmp,
        "pub struct AncEngine {\n\
         \x20   data: Vec<u8>,\n\
         }\n\
         impl AncEngine {\n\
         \x20   fn probe(&self) -> usize {\n\
         \x20       let threads = match std::thread::available_parallelism() {\n\
         \x20           Ok(n) => n.get(),\n\
         \x20           Err(_) => 1,\n\
         \x20       };\n\
         \x20       threads\n\
         \x20   }\n\
         \x20   pub fn ingest(&mut self, out: &mut Vec<u8>) {\n\
         \x20       let width = self.probe();\n\
         \x20       self.save_binary(out, width);\n\
         \x20   }\n\
         \x20   fn save_binary(&self, out: &mut Vec<u8>, width: usize) {\n\
         \x20       out.resize(width, 0);\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a taint reaching a sink must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"nondet-taint\""), "must attribute to A12: {stdout}");
    assert!(stdout.contains("available_parallelism"), "the finding must name the source: {stdout}");
    assert!(
        stdout.contains("save_binary") && stdout.contains("AncEngine::probe"),
        "the finding must carry the source→…→sink chain: {stdout}"
    );
}

#[test]
fn seeded_narrowing_cast_on_persist_path_exits_nonzero() {
    let tmp = tmp_dir("a13");
    seed_tree(
        &tmp,
        "pub struct AncEngine {\n\
         \x20   n: usize,\n\
         }\n\
         impl AncEngine {\n\
         \x20   pub fn save_binary(&self, out: &mut Vec<u8>) {\n\
         \x20       self.encode_header(out);\n\
         \x20   }\n\
         \x20   fn encode_header(&self, out: &mut Vec<u8>) {\n\
         \x20       out.push(self.n as u8);\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a narrowing cast on a persist path must fail; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"lossy-persist\""), "must attribute to A13: {stdout}");
    assert!(
        stdout.contains("as u8") && stdout.contains("encode_header"),
        "the finding must name the cast and the fn: {stdout}"
    );
    assert!(
        stdout.contains("AncEngine::save_binary"),
        "the finding must carry the root chain: {stdout}"
    );
}

#[test]
fn seeded_swallowed_error_on_recovery_path_exits_nonzero() {
    let tmp = tmp_dir("a14");
    seed_tree(
        &tmp,
        "pub struct DurableEngine {\n\
         \x20   n: usize,\n\
         }\n\
         impl DurableEngine {\n\
         \x20   pub fn open(dir: &str) -> Self {\n\
         \x20       let eng = Self { n: 0 };\n\
         \x20       eng.replay(dir);\n\
         \x20       eng\n\
         \x20   }\n\
         \x20   fn replay(&self, dir: &str) {\n\
         \x20       let _ = self.step(dir);\n\
         \x20   }\n\
         \x20   fn step(&self, _dir: &str) -> Result<(), std::io::Error> {\n\
         \x20       Ok(())\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a dropped Result on a recovery path must fail; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"swallowed-error\""), "must attribute to A14: {stdout}");
    assert!(
        stdout.contains("DurableEngine::open") && stdout.contains("replay"),
        "the finding must carry the recovery-root chain: {stdout}"
    );
}

/// The same fixtures with an `audit:allow` suppression must pass: the
/// suppression syntax is part of each rule's contract.
#[test]
fn seeded_violations_with_allow_comments_pass() {
    let tmp = tmp_dir("a12-allow");
    seed_tree(
        &tmp,
        "pub struct AncEngine {\n\
         \x20   n: usize,\n\
         }\n\
         impl AncEngine {\n\
         \x20   pub fn save_binary(&self, out: &mut Vec<u8>) {\n\
         \x20       // audit:allow(lossy-persist) -- n is validated < 256 at ingest\n\
         \x20       out.push(self.n as u8);\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "an allowed cast must pass; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}
