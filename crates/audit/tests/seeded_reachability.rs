//! Seeded-violation tests for the call-graph reachability rules, mirroring
//! `seeded_violation.rs` but driving the **binary** so the exit code and the
//! JSON report are covered end to end:
//!
//! * **A6 panic-path**: a `panic!` two calls below `AncEngine::activate`
//!   must fail the audit (exit 1) attributed to rule `panic-path`;
//! * **A7 hot-alloc**: a `.collect()` below `AncEngine::activate_batch`
//!   must trip the (empty-baseline) ratchet attributed to `hot-alloc`.
//!
//! Each test builds a synthetic workspace in a temp directory — including
//! the two baseline files the binary requires — so the real sources are
//! never touched.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Lays down a minimal workspace at `tmp` with empty A5/A7 baselines and
/// the given `crates/core/src/engine.rs` body.
fn seed_tree(tmp: &Path, engine_src: &str) {
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).unwrap();
    std::fs::write(core_src.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod engine;\n").unwrap();
    std::fs::write(core_src.join("engine.rs"), engine_src).unwrap();
    let audit_dir = tmp.join("crates/audit");
    std::fs::create_dir_all(&audit_dir).unwrap();
    std::fs::write(audit_dir.join("baseline_a5.txt"), "# empty A5 baseline\n").unwrap();
    std::fs::write(audit_dir.join("baseline_a7.txt"), "# empty A7 baseline\n").unwrap();
}

/// Runs the audit binary on `root` with `--format json`, returning
/// `(exit code, stdout)`.
fn run_audit(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--root", root.to_str().unwrap(), "--format", "json"])
        .output()
        .expect("run anc-audit");
    (out.status.code().expect("exit code"), String::from_utf8(out.stdout).expect("utf8 stdout"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anc-audit-{tag}-{}", std::process::id()))
}

#[test]
fn seeded_panic_reachable_from_hot_root_exits_nonzero() {
    let tmp = tmp_dir("a6");
    seed_tree(
        &tmp,
        "pub struct AncEngine {\n\
         \x20   data: Vec<u32>,\n\
         }\n\
         impl AncEngine {\n\
         \x20   pub fn activate(&mut self, e: u32, _t: f64) {\n\
         \x20       self.helper(e);\n\
         \x20   }\n\
         \x20   fn helper(&self, e: u32) {\n\
         \x20       self.check(e);\n\
         \x20   }\n\
         \x20   fn check(&self, e: u32) {\n\
         \x20       if e as usize >= self.data.len() {\n\
         \x20           panic!(\"edge out of range\");\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "a reachable panic must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"panic-path\""), "must attribute to A6: {stdout}");
    assert!(
        stdout.contains("AncEngine::activate") && stdout.contains("AncEngine::check"),
        "the finding must carry the root and the offending fn: {stdout}"
    );
}

#[test]
fn seeded_alloc_reachable_from_batch_root_trips_the_ratchet() {
    let tmp = tmp_dir("a7");
    seed_tree(
        &tmp,
        "pub struct AncEngine;\n\
         impl AncEngine {\n\
         \x20   pub fn activate_batch(&mut self, edges: &[u32], _t: f64) -> usize {\n\
         \x20       self.gather(edges).len()\n\
         \x20   }\n\
         \x20   fn gather(&self, edges: &[u32]) -> Vec<u32> {\n\
         \x20       edges.iter().copied().collect()\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "an over-baseline hot alloc must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":false"), "{stdout}");
    assert!(stdout.contains("\"rule\":\"hot-alloc\""), "must attribute to A7: {stdout}");
    // The per-site report names the offending fn and the reaching root.
    assert!(
        stdout.contains("AncEngine::gather") && stdout.contains("AncEngine::activate_batch"),
        "alloc_sites must carry the fn and its root: {stdout}"
    );
}

#[test]
fn seeded_allow_silences_the_panic_path() {
    let tmp = tmp_dir("a6-allow");
    seed_tree(
        &tmp,
        "pub struct AncEngine;\n\
         impl AncEngine {\n\
         \x20   pub fn activate(&mut self, _e: u32, _t: f64) {\n\
         \x20       self.guard();\n\
         \x20   }\n\
         \x20   fn guard(&self) {\n\
         \x20       // audit:allow(panic-path) -- structurally unreachable\n\
         \x20       panic!(\"never\");\n\
         \x20   }\n\
         }\n",
    );
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 0, "an allowed panic must not fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}

/// Lays down a minimal workspace whose hot code lives in the **server**
/// crate — the serving-path roots added in ISSUE 10 (`ConnState::respond`,
/// `Request::decode`) must be picked up by the same scan.
fn seed_server_tree(tmp: &Path, server_src: &str) {
    let server_dir = tmp.join("crates/server/src");
    std::fs::create_dir_all(&server_dir).unwrap();
    std::fs::write(server_dir.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod tcp;\n").unwrap();
    std::fs::write(server_dir.join("tcp.rs"), server_src).unwrap();
    let audit_dir = tmp.join("crates/audit");
    std::fs::create_dir_all(&audit_dir).unwrap();
    std::fs::write(audit_dir.join("baseline_a5.txt"), "# empty A5 baseline\n").unwrap();
    std::fs::write(audit_dir.join("baseline_a7.txt"), "# empty A7 baseline\n").unwrap();
}

/// The per-request serving surface with panics below two of the new roots;
/// `allowed` suppresses both with justified comments.
fn serving_panic_src(allowed: bool) -> String {
    let allow_respond = if allowed {
        "// audit:allow(panic-path) -- fixture: length checked by the frame layer\n      "
    } else {
        ""
    };
    let allow_decode = if allowed {
        "// audit:allow(panic-path) -- fixture: tag verified by the caller\n      "
    } else {
        ""
    };
    format!(
        "pub struct ConnState {{\n\
           n: usize,\n\
         }}\n\
         impl ConnState {{\n\
           pub fn respond(&mut self, req: &[u8]) -> u8 {{\n\
             self.first(req)\n\
           }}\n\
           fn first(&self, req: &[u8]) -> u8 {{\n\
             {allow_respond}*req.first().unwrap()\n\
           }}\n\
         }}\n\
         pub struct Request;\n\
         impl Request {{\n\
           pub fn decode(buf: &[u8]) -> u8 {{\n\
             Self::tag(buf)\n\
           }}\n\
           fn tag(buf: &[u8]) -> u8 {{\n\
             match buf.first() {{\n\
               Some(&t) => t,\n\
               {allow_decode}None => unreachable!(\"caller framed the buffer\"),\n\
             }}\n\
           }}\n\
         }}\n"
    )
}

#[test]
fn seeded_panics_under_serving_roots_exit_nonzero() {
    let tmp = tmp_dir("a6-serve");
    seed_server_tree(&tmp, &serving_panic_src(false));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();

    assert_eq!(code, 1, "panics under serving roots must fail the audit; stdout: {stdout}");
    assert!(stdout.contains("\"rule\":\"panic-path\""), "must attribute to A6: {stdout}");
    assert!(
        stdout.contains("ConnState::respond") && stdout.contains("ConnState::first"),
        "the respond chain must be named: {stdout}"
    );
    assert!(
        stdout.contains("Request::decode") && stdout.contains("Request::tag"),
        "the decode chain must be named: {stdout}"
    );
}

#[test]
fn seeded_panics_under_serving_roots_allow_clears_them() {
    let tmp = tmp_dir("a6-serve-allow");
    seed_server_tree(&tmp, &serving_panic_src(true));
    let (code, stdout) = run_audit(&tmp);
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "justified allows must clear the serving roots; stdout: {stdout}");
    assert!(stdout.contains("\"ok\":true"), "{stdout}");
}
