//! Machine-format contract tests for the audit binary: the JSON report's
//! schema (golden key set — CI dashboards key on these) and SARIF 2.1.0
//! well-formedness, both parsed back with the vendored `serde_json`.

use std::path::{Path, PathBuf};
use std::process::Command;

use serde_json::Value;

/// Lays down a minimal clean workspace (no findings) at `tmp`.
fn seed_clean_tree(tmp: &Path) {
    let core_src = tmp.join("crates/core/src");
    std::fs::create_dir_all(&core_src).unwrap();
    std::fs::write(core_src.join("lib.rs"), "#![forbid(unsafe_code)]\npub mod engine;\n").unwrap();
    std::fs::write(
        core_src.join("engine.rs"),
        "pub struct AncEngine {\n\
         \x20   n: usize,\n\
         }\n\
         impl AncEngine {\n\
         \x20   pub fn activate(&mut self, e: u32) {\n\
         \x20       self.n = e as usize;\n\
         \x20   }\n\
         }\n",
    )
    .unwrap();
    let audit_dir = tmp.join("crates/audit");
    std::fs::create_dir_all(&audit_dir).unwrap();
    std::fs::write(audit_dir.join("baseline_a5.txt"), "# empty A5 baseline\n").unwrap();
    std::fs::write(audit_dir.join("baseline_a7.txt"), "# empty A7 baseline\n").unwrap();
}

/// Adds one A13 violation (narrowing cast under `save_binary`) to the tree.
fn seed_violating_tree(tmp: &Path) {
    seed_clean_tree(tmp);
    std::fs::write(
        tmp.join("crates/core/src/engine.rs"),
        "pub struct AncEngine {\n\
         \x20   n: usize,\n\
         }\n\
         impl AncEngine {\n\
         \x20   pub fn save_binary(&self, out: &mut Vec<u8>) {\n\
         \x20       out.push(self.n as u8);\n\
         \x20   }\n\
         }\n",
    )
    .unwrap();
}

fn run_audit(root: &Path, format: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--root", root.to_str().unwrap(), "--format", format])
        .output()
        .expect("run anc-audit");
    (out.status.code().expect("exit code"), String::from_utf8(out.stdout).expect("utf8 stdout"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anc-audit-{tag}-{}", std::process::id()))
}

/// Golden JSON schema: the exact top-level key set, stable key types, and
/// every rule id present in the `rules` table.
#[test]
fn json_report_matches_golden_schema() {
    let tmp = tmp_dir("fmt-json");
    seed_clean_tree(&tmp);
    let (code, stdout) = run_audit(&tmp, "json");
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 0, "clean tree must pass: {stdout}");

    let v: Value = serde_json::from_str(&stdout).expect("report must be valid JSON");
    let obj = v.as_object().expect("top level is an object");
    let keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        vec![
            "ok",
            "elapsed_seconds",
            "rules",
            "findings",
            "unwrap_counts",
            "alloc_counts",
            "alloc_sites",
            "lock_edges",
            "notes"
        ],
        "top-level JSON schema changed — update the dashboards and this golden list together"
    );
    assert_eq!(v["ok"], Value::Bool(true));
    assert!(v["elapsed_seconds"].as_f64().is_some_and(|s| s >= 0.0), "{stdout}");
    assert!(v["findings"].as_array().is_some_and(|a| a.is_empty()), "{stdout}");

    let rules = v["rules"].as_array().expect("rules is an array");
    let ids: Vec<&str> = rules.iter().map(|r| r["id"].as_str().unwrap()).collect();
    assert_eq!(ids.len(), 14, "A1–A14: {ids:?}");
    for want in ["A1", "A12", "A13", "A14"] {
        assert!(ids.contains(&want), "missing rule {want}: {ids:?}");
    }
    for r in rules {
        assert!(r["rule"].as_str().is_some_and(|s| !s.is_empty()), "{r:?}");
    }
}

/// SARIF output parses back as well-formed SARIF 2.1.0: schema/version,
/// one run, the full rule table in the driver, and one `error`-level result
/// per finding with a physical location.
#[test]
fn sarif_report_is_well_formed() {
    let tmp = tmp_dir("fmt-sarif");
    seed_violating_tree(&tmp);
    let (code, stdout) = run_audit(&tmp, "sarif");
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(code, 1, "the violating tree must fail: {stdout}");

    let v: Value = serde_json::from_str(&stdout).expect("SARIF must be valid JSON");
    assert_eq!(v["version"], Value::String("2.1.0".into()));
    assert!(
        v["$schema"].as_str().is_some_and(|s| s.contains("sarif")),
        "$schema must point at SARIF: {stdout}"
    );
    let runs = v["runs"].as_array().expect("runs array");
    assert_eq!(runs.len(), 1);
    let run = &runs[0];

    let driver = &run["tool"]["driver"];
    assert_eq!(driver["name"], Value::String("anc-audit".into()));
    let rules = driver["rules"].as_array().expect("driver.rules");
    assert_eq!(rules.len(), 14, "A1–A14 in the SARIF rule table");
    let rule_ids: Vec<&str> = rules.iter().map(|r| r["id"].as_str().unwrap()).collect();
    assert!(rule_ids.contains(&"lossy-persist"), "{rule_ids:?}");

    let results = run["results"].as_array().expect("results array");
    assert!(!results.is_empty(), "the A13 violation must surface as a result");
    for r in results {
        assert_eq!(r["level"], Value::String("error".into()));
        assert!(rule_ids.contains(&r["ruleId"].as_str().expect("ruleId")), "{r:?}");
        assert!(r["message"]["text"].as_str().is_some_and(|s| !s.is_empty()));
        let locs = r["locations"].as_array().expect("locations array");
        let loc = &locs[0]["physicalLocation"];
        assert!(loc["artifactLocation"]["uri"].as_str().is_some_and(|s| s.ends_with(".rs")));
        assert!(loc["region"]["startLine"].as_i64().is_some_and(|l| l >= 1));
    }
}

/// `--diff` against a ref with the same findings reports nothing new
/// (exit 0) even though the tree is dirty in absolute terms — exercised
/// here via the self-referential `--diff HEAD` contract on the real repo
/// in ci.sh; the synthetic check is that an unknown ref fails cleanly.
#[test]
fn diff_mode_unknown_ref_is_a_tool_error() {
    let tmp = tmp_dir("fmt-diff");
    seed_clean_tree(&tmp);
    let out = Command::new(env!("CARGO_BIN_EXE_anc-audit"))
        .args(["--root", tmp.to_str().unwrap(), "--diff", "no-such-ref"])
        .output()
        .expect("run anc-audit");
    std::fs::remove_dir_all(&tmp).unwrap();
    assert_eq!(out.status.code(), Some(2), "tool error, not a finding failure");
}
