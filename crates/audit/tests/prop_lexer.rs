//! Property tests for the audit lexer over adversarial fragment streams:
//! nested block comments, raw/byte strings, char-vs-lifetime ambiguity, and
//! suppression comments, interleaved around real `unsafe` and
//! `Ordering::Relaxed` tokens.
//!
//! The invariant under test is the one every rule depends on: a marker
//! (`unsafe`, `Ordering`) is lexed as an identifier **iff** it appears in
//! live code — never when it only occurs inside a comment or string
//! literal, and never lost when real code surrounds arbitrary inert noise.

use anc_audit::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// One source fragment, tagged with how many *code-level* `unsafe` /
/// `Ordering` identifiers it contributes.
#[derive(Clone, Debug)]
struct Fragment {
    text: &'static str,
    unsafe_idents: usize,
    ordering_idents: usize,
}

const FRAGMENTS: &[Fragment] = &[
    // Inert: markers buried in comments and strings must contribute nothing.
    Fragment {
        text: "// unsafe Ordering::Relaxed in a line comment",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "/* unsafe /* nested Ordering::SeqCst */ still a comment */",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "/* unsafe spans\nlines Ordering::Relaxed\n*/",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "let s = \"unsafe Ordering::Relaxed \\\" escaped\";",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "let r = r#\"unsafe \" Ordering::Relaxed\"#;",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment { text: "let b = b\"unsafe bytes\";", unsafe_idents: 0, ordering_idents: 0 },
    Fragment {
        text: "let c = c\"unsafe Ordering::Relaxed\";",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "let cr = cr#\"unsafe \" Ordering::SeqCst\"#;",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "// audit:allow(unsafe-block) -- decoy with no code on the next line",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    // Char-vs-lifetime adversaries around the markers.
    Fragment {
        text: "let c: char = '\"'; let s: &'static str = \"unsafe\";",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "fn life<'a>(x: &'a u32) -> &'a u32 { x }",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    Fragment {
        text: "let r: &'static str = \"unsafe\"; let ch = &'u'; let m = x & 'O';",
        unsafe_idents: 0,
        ordering_idents: 0,
    },
    // Live code: markers that MUST survive lexing.
    Fragment { text: "unsafe { touch(); }", unsafe_idents: 1, ordering_idents: 0 },
    Fragment { text: "let o = Ordering::Relaxed;", unsafe_idents: 0, ordering_idents: 1 },
    Fragment {
        text: "flag.store(true, Ordering::Release); // unsafe in a trailing comment",
        unsafe_idents: 0,
        ordering_idents: 1,
    },
    Fragment {
        text: "unsafe fn wild() { /* Ordering inside */ }",
        unsafe_idents: 1,
        ordering_idents: 0,
    },
    // Plain filler.
    Fragment { text: "let x = 1 + 2;", unsafe_idents: 0, ordering_idents: 0 },
    Fragment { text: "fn plain() -> u32 { 7 }", unsafe_idents: 0, ordering_idents: 0 },
];

fn fragment() -> impl Strategy<Value = Fragment> {
    (0..FRAGMENTS.len()).prop_map(|i| FRAGMENTS[i].clone())
}

/// Delimiter-heavy alphabet for the never-panics smoke test: every byte
/// that opens or closes a lexical mode, plus filler.
const NOISE: &[char] = &[
    ' ', '\n', '\'', '"', '/', '*', '#', 'r', 'b', 'c', '\\', 'a', '_', '0', '{', '}', ':', '(',
    '&',
];

fn count_idents(source: &str, name: &str) -> usize {
    lex(source).tokens.iter().filter(|t| t.kind == TokenKind::Ident && t.text == name).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Markers are counted exactly: every code-level `unsafe`/`Ordering`
    /// survives as an `Ident` token, and none leaks out of comments or
    /// strings, for any interleaving of adversarial fragments.
    #[test]
    fn marker_tokens_match_code_occurrences(frags in proptest::collection::vec(fragment(), 0..32)) {
        let source: String =
            frags.iter().map(|f| f.text).collect::<Vec<_>>().join("\n") + "\n";
        let expected_unsafe: usize = frags.iter().map(|f| f.unsafe_idents).sum();
        let expected_ordering: usize = frags.iter().map(|f| f.ordering_idents).sum();
        prop_assert_eq!(count_idents(&source, "unsafe"), expected_unsafe);
        prop_assert_eq!(count_idents(&source, "Ordering"), expected_ordering);
    }

    /// Structural sanity on arbitrary fragment streams: one code line per
    /// source line, token line numbers in bounds and nondecreasing, and no
    /// comment/string interior text in the blanked code lines.
    #[test]
    fn lexed_shape_is_consistent(frags in proptest::collection::vec(fragment(), 0..32)) {
        let source: String =
            frags.iter().map(|f| f.text).collect::<Vec<_>>().join("\n") + "\n";
        let lexed = lex(&source);
        prop_assert_eq!(lexed.code_lines.len(), source.lines().count());
        let mut prev = 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= prev, "token lines must be nondecreasing");
            prop_assert!(t.line <= lexed.code_lines.len());
            prev = t.line;
        }
        // A fragment consisting only of comment/string interiors must not
        // surface marker text in the code lines.
        for (i, f) in frags.iter().enumerate() {
            if f.unsafe_idents == 0 && !f.text.contains("audit:allow") {
                // Locate this fragment's first line in the joined source.
                let first_line: usize =
                    frags[..i].iter().map(|g| g.text.lines().count()).sum::<usize>();
                let span = f.text.lines().count();
                for line in &lexed.code_lines[first_line..first_line + span] {
                    prop_assert!(
                        !line.contains("unsafe") || f.text.contains("static str"),
                        "inert fragment leaked `unsafe` into code lines: {:?} -> {:?}",
                        f.text,
                        line
                    );
                }
            }
        }
    }

    /// The lexer never panics on raw character noise either (smoke: total
    /// fn over the delimiter-heavy alphabet).
    #[test]
    fn lexing_never_panics(idx in proptest::collection::vec(0..NOISE.len(), 0..200)) {
        let s: String = idx.into_iter().map(|i| NOISE[i]).collect();
        let _ = lex(&s);
    }
}
