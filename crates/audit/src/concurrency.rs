//! Concurrency-safety analysis (stage 3 of the audit; DESIGN.md §12).
//!
//! Runs the three concurrency rules over the raw sites extracted by
//! [`crate::callgraph`]:
//!
//! * **A9 `lock-order`** — propagates "which locks can this fn transitively
//!   acquire" sets over the call graph to a fixpoint, turns every held-span
//!   event into a lock-acquisition edge (`held → inner` for a direct nested
//!   acquisition; `held → each transitive lock of the callee` for a call
//!   made while holding), and denies cycles in the resulting lock graph —
//!   a cycle means two threads can acquire the same locks in opposite
//!   orders and deadlock. Condvar waits taken while holding a lock other
//!   than the wait's own guard are denied directly (the wait releases only
//!   its guard's mutex). Lock identity is by *name* (receiver ident or
//!   `audit:lock` override), so same-name edges are excluded: distinct
//!   elements of a lock array legitimately share a name, and flagging
//!   `deque → deque` on disjoint elements would be noise. The cost is that
//!   a true same-instance re-acquisition is invisible to A9 — it is,
//!   however, exactly the self-deadlock that the perturbation harness
//!   (`stress-schedules`) exists to shake out dynamically.
//! * **A10 `atomic-ordering`** — groups atomic-op sites by (file,
//!   receiver). Within a group, a `Relaxed` site mixed with
//!   `Acquire`/`Release`/`SeqCst` siblings is denied (the Relaxed side of a
//!   publish/consume handshake synchronizes nothing), and an all-`Relaxed`
//!   group with both a pure store side and a pure load side is denied as a
//!   Relaxed flag-guarding-data handshake. All-Relaxed RMW-only groups
//!   (statistics counters) pass.
//! * **A11 `blocking-in-reader`** — no blocking site (lock acquisition,
//!   condvar wait, channel recv, park, pool dispatch) may be reachable
//!   from a wait-free query root ([`QUERY_ROOTS`]). Runs on the pool-free
//!   hot-path graph: including the pool crate would let common method
//!   names (`map`, `collect`, …) resolve into its combinators and blur
//!   every reader chain.
//!
//! Every rule is suppressed site-wise by `// audit:allow(<rule>) --
//! <invariant>` (enforced at extraction, so an allowed site never enters
//! the analysis).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{AtomicSite, CallGraph, Held, QUERY_ROOTS};
use crate::Finding;

/// One edge of the lock-acquisition graph (for reports): while holding
/// `from`, the workspace can acquire `to`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// The held lock.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// File of the witnessing held-span event.
    pub file: String,
    /// 1-based line of the witnessing event.
    pub line: usize,
    /// The fn (or `caller → callee` pair) that witnesses the edge.
    pub via: String,
}

/// Output of the concurrency analysis.
#[derive(Clone, Debug, Default)]
pub struct ConcurrencyReport {
    /// Deny-tier A9/A10/A11 findings, in (file, line, rule) order.
    pub findings: Vec<Finding>,
    /// The assembled lock-acquisition graph (deduplicated, first witness
    /// wins), for `results/audit.json` and docs.
    pub lock_edges: Vec<LockEdge>,
}

/// Runs A9 and A10 over `conc` (the concurrency graph: hot-path crates
/// plus the pool) and A11 over `reader` (the pool-free hot-path graph).
pub fn analyze(conc: &CallGraph, reader: &CallGraph) -> ConcurrencyReport {
    let mut report = ConcurrencyReport::default();
    lock_order(conc, &mut report);
    atomic_ordering(conc, &mut report);
    blocking_in_reader(reader, &mut report);
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Edge map: (from, to) → first witnessing (file, line, via).
type EdgeMap = BTreeMap<(String, String), (String, usize, String)>;

fn lock_order(g: &CallGraph, report: &mut ConcurrencyReport) {
    // Transitive lock sets per fn, to a fixpoint (the graph is cyclic —
    // worker loops — so a single bottom-up pass is not enough).
    let n = g.fns.len();
    let mut trans: Vec<BTreeSet<String>> =
        g.fns.iter().map(|f| f.locks.iter().map(|l| l.name.clone()).collect()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let mut add: Vec<String> = Vec::new();
            for call in &g.fns[i].calls {
                for &j in g.resolve(&call.callee) {
                    for l in &trans[j] {
                        if !trans[i].contains(l) && !add.contains(l) {
                            add.push(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[i].extend(add);
            }
        }
    }

    // Lock-acquisition edges from the held-span events.
    let mut edges: EdgeMap = BTreeMap::new();
    for f in &g.fns {
        for e in &f.held_events {
            match &e.inner {
                Held::Lock(to) => {
                    if *to != e.held {
                        edges.entry((e.held.clone(), to.clone())).or_insert((
                            f.file.clone(),
                            e.line,
                            f.qual.clone(),
                        ));
                    }
                }
                Held::Call(callee) => {
                    for &j in g.resolve(callee) {
                        for to in &trans[j] {
                            if *to != e.held {
                                edges.entry((e.held.clone(), to.clone())).or_insert((
                                    f.file.clone(),
                                    e.line,
                                    format!("{} → {}", f.qual, g.fns[j].qual),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    for ((from, to), (file, line, via)) in &edges {
        report.lock_edges.push(LockEdge {
            from: from.clone(),
            to: to.clone(),
            file: file.clone(),
            line: *line,
            via: via.clone(),
        });
    }

    // Deny cycles: for each edge a→b, a path b→…→a closes one. Cycles are
    // deduplicated by node set so `a→b→a` is reported once, not per edge.
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((a, b), (file, line, _)) in &edges {
        let Some(path) = bfs_path(&edges, b, a) else { continue };
        let mut cycle = vec![a.clone()];
        cycle.extend(path);
        let mut key = cycle[..cycle.len() - 1].to_vec();
        key.sort();
        if !seen.insert(key) {
            continue;
        }
        let mut chain = String::new();
        for w in cycle.windows(2) {
            let (f2, l2, v2) = &edges[&(w[0].clone(), w[1].clone())];
            let _ = std::fmt::Write::write_fmt(
                &mut chain,
                format_args!("; `{}` then `{}` at {f2}:{l2} (in {v2})", w[0], w[1]),
            );
        }
        report.findings.push(Finding {
            rule: "lock-order",
            file: file.clone(),
            line: *line,
            message: format!(
                "potential deadlock: lock-acquisition cycle {}{chain}",
                cycle.join(" → ")
            ),
        });
    }

    // Condvar waits taken while holding another lock.
    for f in &g.fns {
        for (held, line) in &f.wait_violations {
            report.findings.push(Finding {
                rule: "lock-order",
                file: f.file.clone(),
                line: *line,
                message: format!(
                    "Condvar wait in `{}` while holding lock `{held}` — the wait releases only \
                     its own guard's mutex, so any waker needing `{held}` deadlocks",
                    f.qual
                ),
            });
        }
    }
}

/// Shortest path `from → … → to` over the edge map, if any.
fn bfs_path(edges: &EdgeMap, from: &str, to: &str) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut visited: BTreeSet<&str> = BTreeSet::from([from]);
    let mut queue: VecDeque<&str> = VecDeque::from([from]);
    while let Some(u) = queue.pop_front() {
        if u == to {
            let mut path = vec![u.to_string()];
            let mut cur = u;
            while let Some(&p) = parent.get(cur) {
                path.push(p.to_string());
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &v in adj.get(u).into_iter().flatten() {
            if visited.insert(v) {
                parent.insert(v, u);
                queue.push_back(v);
            }
        }
    }
    None
}

fn atomic_ordering(g: &CallGraph, report: &mut ConcurrencyReport) {
    // One logical atomic per (file, receiver ident): fields of the same
    // struct and statics share a file, which is the "same impl" scope the
    // handshake heuristic needs.
    let mut groups: BTreeMap<(String, String), Vec<(&AtomicSite, String)>> = BTreeMap::new();
    for f in &g.fns {
        for s in &f.atomics {
            groups.entry((f.file.clone(), s.recv.clone())).or_default().push((s, f.qual.clone()));
        }
    }
    for ((file, recv), sites) in &groups {
        let relaxed: Vec<&(&AtomicSite, String)> =
            sites.iter().filter(|(s, _)| s.orderings[0] == "Relaxed").collect();
        let stronger = sites.len() - relaxed.len();
        if stronger > 0 && !relaxed.is_empty() {
            let others: BTreeSet<&str> = sites
                .iter()
                .filter(|(s, _)| s.orderings[0] != "Relaxed")
                .map(|(s, _)| s.orderings[0].as_str())
                .collect();
            let others = others.into_iter().collect::<Vec<_>>().join("/");
            for (s, qual) in &relaxed {
                report.findings.push(Finding {
                    rule: "atomic-ordering",
                    file: file.clone(),
                    line: s.line,
                    message: format!(
                        "`{recv}.{}` in `{qual}` uses Ordering::Relaxed while `{recv}`'s other \
                         sites here use {others} — the Relaxed side of a publish/consume \
                         handshake synchronizes nothing; match the orderings or add \
                         `// audit:allow(atomic-ordering) -- <invariant>`",
                        s.op
                    ),
                });
            }
        } else if stronger == 0 {
            // All-Relaxed: deny the flag-guarding-data shape (pure store
            // side + pure load side). RMW-only groups (counters) pass.
            let has_store = sites.iter().any(|(s, _)| s.op == "store" || s.op == "swap");
            let has_load = sites.iter().any(|(s, _)| s.op == "load");
            if has_store && has_load {
                for (s, qual) in sites {
                    report.findings.push(Finding {
                        rule: "atomic-ordering",
                        file: file.clone(),
                        line: s.line,
                        message: format!(
                            "`{recv}` is written and read entirely with Ordering::Relaxed \
                             (`{}` in `{qual}`) — a Relaxed flag handshake publishes no data; \
                             use Release on the store side and Acquire on the load side, or \
                             add `// audit:allow(atomic-ordering) -- <invariant>`",
                            s.op
                        ),
                    });
                }
            }
        }
    }
}

fn blocking_in_reader(g: &CallGraph, report: &mut ConcurrencyReport) {
    let reach = g.reachable_from(QUERY_ROOTS);
    for (i, f) in g.fns.iter().enumerate() {
        if !reach.is_reached(i) {
            continue;
        }
        for b in &f.blocking {
            report.findings.push(Finding {
                rule: "blocking-in-reader",
                file: f.file.clone(),
                line: b.line,
                message: format!(
                    "{} in `{}` is reachable from a wait-free query root ({}); readers answer \
                     from snapshot state without blocking — move this to the writer path or \
                     add `// audit:allow(blocking-in-reader) -- <invariant>`",
                    b.what,
                    f.qual,
                    reach.chain(g, i)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::extract_fns;
    use crate::lexer::lex;

    fn graph(src: &str) -> CallGraph {
        let lexed = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        CallGraph::build(extract_fns("core", "crates/core/src/x.rs", &lexed, &raw))
    }

    fn run(src: &str) -> ConcurrencyReport {
        let g = graph(src);
        let r = graph(src);
        analyze(&g, &r)
    }

    const TWO_LOCKS: &str = "struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n";

    #[test]
    fn opposite_order_acquisition_is_a_cycle() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n\
                 fn fwd(&self) {{\n\
                     let ga = self.a.lock().unwrap();\n\
                     let gb = self.b.lock().unwrap();\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }}\n\
                 fn rev(&self) {{\n\
                     let gb = self.b.lock().unwrap();\n\
                     let ga = self.a.lock().unwrap();\n\
                     drop(ga);\n\
                     drop(gb);\n\
                 }}\n\
             }}\n"
        );
        let rep = run(&src);
        let cycles: Vec<&Finding> =
            rep.findings.iter().filter(|f| f.rule == "lock-order").collect();
        assert_eq!(cycles.len(), 1, "one deduped cycle expected: {:?}", rep.findings);
        assert!(cycles[0].message.contains("a → b → a") || cycles[0].message.contains("b → a → b"));
        assert!(cycles[0].message.contains("S::fwd") && cycles[0].message.contains("S::rev"));
    }

    #[test]
    fn consistent_order_is_clean_and_edges_are_reported() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n\
                 fn f(&self) {{\n\
                     let ga = self.a.lock().unwrap();\n\
                     let gb = self.b.lock().unwrap();\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }}\n\
                 fn g(&self) {{\n\
                     let ga = self.a.lock().unwrap();\n\
                     let gb = self.b.lock().unwrap();\n\
                     drop(gb);\n\
                     drop(ga);\n\
                 }}\n\
             }}\n"
        );
        let rep = run(&src);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
        assert_eq!(rep.lock_edges.len(), 1);
        assert_eq!((rep.lock_edges[0].from.as_str(), rep.lock_edges[0].to.as_str()), ("a", "b"));
    }

    #[test]
    fn transitive_acquisition_through_a_call_closes_the_cycle() {
        let src = format!(
            "{TWO_LOCKS}impl S {{\n\
                 fn fwd(&self) {{\n\
                     let ga = self.a.lock().unwrap();\n\
                     self.takes_b();\n\
                     drop(ga);\n\
                 }}\n\
                 fn takes_b(&self) {{\n\
                     let gb = self.b.lock().unwrap();\n\
                     drop(gb);\n\
                 }}\n\
                 fn rev(&self) {{\n\
                     let gb = self.b.lock().unwrap();\n\
                     let ga = self.a.lock().unwrap();\n\
                     drop(ga);\n\
                     drop(gb);\n\
                 }}\n\
             }}\n"
        );
        let rep = run(&src);
        assert!(
            rep.findings.iter().any(|f| f.rule == "lock-order"
                && f.message.contains("potential deadlock")
                && f.message.contains("S::fwd → S::takes_b")),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn condvar_wait_violation_is_reported() {
        let src = "struct S { m: std::sync::Mutex<u32>, o: std::sync::Mutex<u32>, cv: std::sync::Condvar }\n\
                   impl S {\n\
                       fn bad(&self) {\n\
                           let other = self.o.lock().unwrap();\n\
                           let g = self.m.lock().unwrap();\n\
                           let _g2 = self.cv.wait(g).unwrap();\n\
                           drop(other);\n\
                       }\n\
                   }\n";
        let rep = run(src);
        assert!(
            rep.findings
                .iter()
                .any(|f| f.rule == "lock-order" && f.message.contains("Condvar wait")),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn relaxed_mixed_with_stronger_orderings_is_denied() {
        let src = "use std::sync::atomic::{AtomicBool, Ordering};\n\
                   struct S { ready: AtomicBool }\n\
                   impl S {\n\
                       fn publish(&self) { self.ready.store(true, Ordering::Relaxed); }\n\
                       fn consume(&self) -> bool { self.ready.load(Ordering::Acquire) }\n\
                   }\n";
        let rep = run(src);
        assert_eq!(rep.findings.len(), 1, "{:?}", rep.findings);
        assert_eq!(rep.findings[0].rule, "atomic-ordering");
        assert_eq!(rep.findings[0].line, 4);
        assert!(rep.findings[0].message.contains("Acquire"));
    }

    #[test]
    fn all_relaxed_flag_handshake_is_denied_but_counters_pass() {
        let flag = "use std::sync::atomic::{AtomicBool, Ordering};\n\
                    struct S { ready: AtomicBool }\n\
                    impl S {\n\
                        fn publish(&self) { self.ready.store(true, Ordering::Relaxed); }\n\
                        fn consume(&self) -> bool { self.ready.load(Ordering::Relaxed) }\n\
                    }\n";
        let rep = run(flag);
        assert_eq!(rep.findings.len(), 2, "both sides flagged: {:?}", rep.findings);
        let counter = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                       static HITS: AtomicUsize = AtomicUsize::new(0);\n\
                       fn bump() { HITS.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(run(counter).findings.is_empty());
        let seqcst = "use std::sync::atomic::{AtomicBool, Ordering};\n\
                      struct S { ready: AtomicBool }\n\
                      impl S {\n\
                          fn publish(&self) { self.ready.store(true, Ordering::SeqCst); }\n\
                          fn consume(&self) -> bool { self.ready.load(Ordering::SeqCst) }\n\
                      }\n";
        assert!(run(seqcst).findings.is_empty());
    }

    #[test]
    fn blocking_under_a_query_root_is_denied_with_a_chain() {
        let src = "struct AncEngine { m: std::sync::Mutex<u32> }\n\
                   impl AncEngine {\n\
                       pub fn cluster_all_cached(&self) -> u32 { self.helper() }\n\
                       fn helper(&self) -> u32 {\n\
                           // audit:allow(panic-path) -- fixture\n\
                           *self.m.lock().unwrap()\n\
                       }\n\
                   }\n\
                   fn unreached(m: &std::sync::Mutex<u32>) {\n\
                       let g = m.lock().unwrap();\n\
                       drop(g);\n\
                   }\n";
        let rep = run(src);
        let a11: Vec<&Finding> =
            rep.findings.iter().filter(|f| f.rule == "blocking-in-reader").collect();
        assert_eq!(a11.len(), 1, "{:?}", rep.findings);
        assert!(a11[0].message.contains("AncEngine::cluster_all_cached → AncEngine::helper"));
        assert_eq!(a11[0].line, 6);
    }
}
