//! # anc-audit
//!
//! Repo-specific determinism and hot-path lint pass (see DESIGN.md §8).
//!
//! The engine's central guarantee — snapshots byte-identical across thread
//! counts and replay schedules — rests on properties the compiler cannot
//! check: no iteration over randomly-seeded hash collections in
//! state-mutating code, total float orderings, no wall-clock or OS-RNG
//! inputs, no `unsafe`. On top of that, the paper's bounded-maintenance
//! claim only pays off if the per-activation path is panic-free and
//! allocation-free. This crate enforces both with a two-stage analysis
//! built on a hand-rolled Rust lexer ([`lexer`]) and a workspace call graph
//! ([`callgraph`]) — the workspace is offline; no external parser crates.
//!
//! Line rules (stage 1, on the lexed code lines):
//!
//! * `hash-iter` (A1) — no `HashMap`/`HashSet` iteration (`for`/`.iter()`/
//!   `.keys()`/`.values()`/`.drain()`) in the determinism-sensitive crates
//!   `core`, `decay`, `graph`; use `BTreeMap`/`BTreeSet` or an explicit sort.
//! * `float-cmp` (A2) — no `.partial_cmp(..)` call sites anywhere; float
//!   orderings must use `total_cmp`.
//! * `wall-clock` (A3) — no `thread_rng`/`SystemTime::now`/`Instant::now`
//!   outside the `bench` and `cli` crates (seeded `ChaCha` + the logical
//!   decay clock only).
//! * `forbid-unsafe` (A4) — every crate root (`src/lib.rs`, `src/main.rs`)
//!   carries `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` for the
//!   one crate — the vendored rayon shim — that holds audited exemptions).
//! * `unsafe-block` (A8) — every `unsafe` token (blocks, `unsafe impl`,
//!   `unsafe fn`) anywhere in the scanned tree is deny-tier unless it
//!   carries `// audit:allow(unsafe-block) -- <reason>`; today the only
//!   allowed sites are the thread pool's lifetime erasure in
//!   `vendor/rayon/src/pool.rs`.
//! * `unwrap-budget` (A5) — `.unwrap()`/`.expect(` in non-test code of the
//!   hot-path crates (`core`, `decay`, `graph`) is a warn-tier budget
//!   ratcheted against a checked-in baseline
//!   (`crates/audit/baseline_a5.txt`): per-file counts may only decrease.
//!
//! Reachability rules (stage 2, on the call graph):
//!
//! * `panic-path` (A6) — `panic!`/`unreachable!`/`todo!`/`unimplemented!`/
//!   `.unwrap()`/`.expect(` in any function reachable from a hot entry
//!   point ([`callgraph::PANIC_ROOTS`]). Deny-tier; suppress with
//!   `audit:allow(panic-path)` plus a reason.
//! * `hot-alloc` (A7) — `Vec::new`/`vec![`/`.collect()`/`.to_vec()`/
//!   `Box::new`/`format!` in any function reachable from a per-activation
//!   entry point ([`callgraph::ALLOC_ROOTS`]). Warn-tier, per-file ratchet
//!   against `crates/audit/baseline_a7.txt`; the fix is usually reuse via
//!   the `ScratchPool`.
//!
//! Concurrency rules (stage 3, [`concurrency`]; DESIGN.md §12):
//!
//! * `lock-order` (A9) — cycles in the interprocedural lock-acquisition
//!   graph are potential deadlocks and deny-tier, as are Condvar waits
//!   taken while holding a lock other than the wait's own guard.
//! * `atomic-ordering` (A10) — `Relaxed` atomics participating in a
//!   publish/consume handshake (mixed with stronger orderings on the same
//!   atomic, or an all-Relaxed store+load flag) are deny-tier.
//! * `blocking-in-reader` (A11) — blocking sites (lock acquisition,
//!   Condvar wait, channel recv, `park`, pool dispatch) reachable from a
//!   wait-free query root ([`callgraph::QUERY_ROOTS`]) are deny-tier.
//!
//! Dataflow rules (stage 4, [`dataflow`]; DESIGN.md §13):
//!
//! * `nondet-taint` (A12) — a nondeterminism source (hash iteration order,
//!   `RandomState`, thread ids/counts, wall clocks, unseeded RNG
//!   constructors) flowing — through let-bindings, assignments, call
//!   arguments and return values, interprocedurally to a fixpoint — into a
//!   snapshot/WAL writer, a codec/CRC primitive, or a cluster query's
//!   return value is deny-tier; findings carry the source→…→sink chain.
//! * `lossy-persist` (A13) — potentially-narrowing numeric `as`-casts in
//!   functions reachable from the serialization roots are deny-tier
//!   (checked conversions or a width-justifying allow instead).
//! * `swallowed-error` (A14) — `let _ = …` / statement-terminal `.ok()`
//!   discarding fallible results in functions reachable from the
//!   WAL/DurableEngine IO and recovery surface are deny-tier.
//!
//! A finding on a line is suppressed by `// audit:allow(<rule>) -- <reason>`
//! on the same line or the line directly above. The lexer blanks string
//! literals and strips comments, so rule-pattern strings (in this crate,
//! say) are never false positives, and `#[cfg(test)]` exemption covers
//! exactly the attributed item's brace-tracked span — code *after* a test
//! module is scanned again (the PR 2 scanner exempted everything to EOF).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod concurrency;
pub mod dataflow;
pub mod lexer;

use callgraph::{extract_fns, CallGraph, FnItem, ALLOC_ROOTS, CALL_GRAPH_CRATES, PANIC_ROOTS};
use lexer::{lex, suppressed_rules};

/// Crates whose state mutation must be deterministic: `hash-iter` applies.
pub const ORDER_SENSITIVE_CRATES: &[&str] = &["core", "decay", "graph"];

/// Crates allowed to read wall clocks and OS RNGs. `server` qualifies
/// because its clock reads are pure observability — enqueue-to-apply
/// latency accounting and read timeouts — never inputs to clustering
/// state, which stays driven by activation timestamps.
pub const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["bench", "cli", "server"];

/// Crates whose non-test `unwrap()`/`expect()` count is budgeted (A5) —
/// the same hot-path crates the call graph covers.
pub const UNWRAP_BUDGET_CRATES: &[&str] = &["core", "decay", "graph"];

/// Repo-relative path of the A5 (unwrap-budget) baseline file.
pub const BASELINE_PATH: &str = "crates/audit/baseline_a5.txt";

/// Repo-relative path of the A7 (hot-alloc) baseline file.
pub const BASELINE_A7_PATH: &str = "crates/audit/baseline_a7.txt";

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`hash-iter`, `float-cmp`, `wall-clock`, `forbid-unsafe`,
    /// `unwrap-budget`, `panic-path`, `hot-alloc`, `unsafe-block`,
    /// `lock-order`, `atomic-ordering`, `blocking-in-reader`,
    /// `nondet-taint`, `lossy-persist`, `swallowed-error`).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Documentation for one audit rule, printed by `anc-audit --explain`.
#[derive(Clone, Copy, Debug)]
pub struct RuleDoc {
    /// Short id (`A1`…`A11`).
    pub id: &'static str,
    /// The rule name used in findings and `audit:allow(...)`.
    pub rule: &'static str,
    /// Why the rule exists (one paragraph).
    pub rationale: &'static str,
    /// A representative finding message.
    pub example: &'static str,
    /// How to suppress a justified site.
    pub suppression: &'static str,
}

const ALLOW_LINE: &str =
    "// audit:allow(<rule>) -- <reason> on the flagged line or the line above \
                          (the reason is mandatory)";

/// Every audit rule, in id order (`--explain <rule>` looks up here).
pub const RULES: &[RuleDoc] = &[
    RuleDoc {
        id: "A1",
        rule: "hash-iter",
        rationale: "HashMap/HashSet iteration order is randomly seeded per process; iterating one \
                    in the determinism-sensitive crates (core, decay, graph) makes state mutation \
                    depend on the seed and breaks byte-identical snapshots. Use BTreeMap/BTreeSet \
                    or sort before iterating.",
        example: "crates/core/src/x.rs:4: [hash-iter] .iter() over hash collection `m` — \
                  iteration order is randomly seeded per process",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A2",
        rule: "float-cmp",
        rationale: ".partial_cmp() on floats is partial: NaN yields None, which panics under \
                    unwrap or silently destabilizes sort orders. f64::total_cmp is total and \
                    deterministic.",
        example: "crates/bench/src/x.rs:2: [float-cmp] .partial_cmp() on floats is partial \
                  (NaN ⇒ None/panic/unstable order); use total_cmp",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A3",
        rule: "wall-clock",
        rationale: "Instant::now/SystemTime::now/thread_rng are nondeterministic inputs; replay \
                    and cross-thread-count identity require the logical decay clock and seeded \
                    ChaCha streams. Only bench and cli may read real clocks.",
        example: "crates/core/src/x.rs:2: [wall-clock] Instant::now is a nondeterministic input \
                  — use the logical decay clock / seeded ChaCha (or move this to bench/cli)",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A4",
        rule: "forbid-unsafe",
        rationale: "Every crate root must carry #![forbid(unsafe_code)] so new unsafe cannot land \
                    silently; the vendored pool crate alone downgrades to #![deny(unsafe_code)] \
                    because it holds the workspace's audited unsafe exemptions (A8).",
        example: "crates/core/src/lib.rs:1: [forbid-unsafe] crate root lacks \
                  #![forbid(unsafe_code)] (or #![deny(unsafe_code)])",
        suppression: "add the attribute; there is no inline allow for this rule",
    },
    RuleDoc {
        id: "A5",
        rule: "unwrap-budget",
        rationale: "unwrap()/expect() in non-test hot-path code (core, decay, graph) turns \
                    recoverable conditions into panics. The per-file count ratchets against \
                    crates/audit/baseline_a5.txt: it may only decrease (re-bless with --bless \
                    after removing sites).",
        example: "crates/core/src/engine.rs:0: [unwrap-budget] 3 unwrap()/expect() calls exceed \
                  the baseline of 2",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A6",
        rule: "panic-path",
        rationale: "panic!/unreachable!/todo!/unwrap/expect in any function reachable from a hot \
                    entry point (activation ingest, decay maintenance) can abort the engine \
                    mid-update; hot paths return Results or prove unreachability.",
        example: "crates/core/src/engine.rs:42: [panic-path] .unwrap() in `AncEngine::activate` \
                  can panic on the hot path (AncEngine::activate → …)",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A7",
        rule: "hot-alloc",
        rationale: "Vec::new/vec![/.collect()/.to_vec()/Box::new/format! in functions reachable \
                    from a per-activation root allocates on every activation, defeating the \
                    paper's bounded-maintenance claim. Counts ratchet against \
                    crates/audit/baseline_a7.txt; the fix is ScratchPool reuse.",
        example: "crates/core/src/engine.rs:77: [hot-alloc] Vec::new in `AncEngine::activate` \
                  allocates per activation (…); reuse a ScratchPool buffer",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A8",
        rule: "unsafe-block",
        rationale: "Every `unsafe` token (block, fn, impl) anywhere in the tree is deny-tier \
                    until individually audited with a written safety argument; today the only \
                    audited sites are the pool's scoped-lifetime erasure in vendor/rayon.",
        example: "vendor/rayon/src/pool.rs:88: [unsafe-block] `unsafe` requires an individual \
                  audit",
        suppression: "// audit:allow(unsafe-block) -- <safety argument>",
    },
    RuleDoc {
        id: "A9",
        rule: "lock-order",
        rationale: "Two threads acquiring the same locks in opposite orders deadlock. The audit \
                    extracts every lock/Condvar acquisition, propagates held-lock sets over the \
                    call graph, and denies any cycle in the lock-acquisition graph, reporting \
                    the full acquisition chain. Condvar waits while holding another lock are \
                    denied directly (the wait releases only its own guard's mutex). Locks are \
                    identified by receiver name; rename ambiguous receivers with \
                    `// audit:lock(<name>)`.",
        example: "vendor/rayon/src/pool.rs:190: [lock-order] potential deadlock: \
                  lock-acquisition cycle deques → sleep → deques; `deques` then `sleep` at \
                  vendor/rayon/src/pool.rs:190 (in run_tasks); …",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A10",
        rule: "atomic-ordering",
        rationale: "The Relaxed side of a publish/consume handshake synchronizes nothing: a \
                    Relaxed store before an Acquire load (or an all-Relaxed store+load flag) \
                    publishes no data and reorders freely. Sites on the same atomic (same file \
                    and receiver) must agree on an ordering discipline; all-Relaxed RMW-only \
                    counters are fine.",
        example: "vendor/rayon/src/pool.rs:131: [atomic-ordering] `poisoned.store` uses \
                  Ordering::Relaxed while `poisoned`'s other sites here use Acquire",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A11",
        rule: "blocking-in-reader",
        rationale: "The wait-free query roots (cluster_all_cached, same_cluster, cache Arc \
                    snapshot reads) must answer from snapshot state without blocking: a lock, \
                    Condvar wait, channel recv, park, or pool dispatch reachable from a reader \
                    stalls every concurrent query behind the writer. The epoch'd-Arc read \
                    discipline the serving layer depends on is machine-checked here.",
        example: "crates/core/src/cache.rs:103: [blocking-in-reader] pool dispatch `par_iter` \
                  in `ClusterCache::fill_level` is reachable from a wait-free query root \
                  (AncEngine::cluster_all_cached → …)",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A12",
        rule: "nondet-taint",
        rationale: "Byte-identical snapshots and thread-count-invariant queries only hold if no \
                    nondeterminism source ever *flows* into persisted state or query results — \
                    a property token rules (A1, A3) cannot see across assignments and calls. \
                    The dataflow engine tracks def-use chains per function and propagates taint \
                    from sources (hash iteration order, RandomState, thread ids/counts, wall \
                    clocks, unseeded RNG constructors) across the call graph to a fixpoint, \
                    denying any flow into a snapshot/WAL writer, a codec/CRC primitive, or a \
                    cluster query's return value. Findings carry the source→…→sink chain.",
        example: "crates/core/src/engine.rs:401: [nondet-taint] nondeterministic value — \
                  env-dependent thread count `available_parallelism()` \
                  (crates/core/src/engine.rs:388) — reaches persistence sink `append_payload` \
                  via AncEngine::probe → AncEngine::ingest",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A13",
        rule: "lossy-persist",
        rationale: "A numeric `as`-cast silently truncates or rounds; on a serialization path \
                    that turns a live value into a wrong-but-CRC-valid byte stream that replay \
                    then trusts. Casts to sub-64-bit numeric targets (u8/u16/u32/i8/i16/i32/f32) \
                    in any function reachable from a snapshot/WAL encode root are denied — the \
                    lexer cannot see source types, so provably-widening or masked casts carry an \
                    allow naming the width argument; real narrowing uses try_from/u8::from or \
                    the tagged `Compact` profile's escape-hatch machinery.",
        example: "crates/core/src/persist/wal.rs:252: [lossy-persist] `as u32` cast in \
                  `frame_payload` can silently narrow a value on the serialization path \
                  (DurableEngine::append_payload → frame_payload)",
        suppression: ALLOW_LINE,
    },
    RuleDoc {
        id: "A14",
        rule: "swallowed-error",
        rationale: "`let _ = fallible()` and statement-terminal `.ok()` silently discard IO \
                    errors; on the WAL append/recovery paths that converts a detectable \
                    torn-write or permission failure into silent data loss. Both forms are \
                    denied in any function reachable from the DurableEngine write/recovery \
                    surface or the WAL reader (`#[must_use]` discards are covered by \
                    `clippy -D warnings` in CI).",
        example: "crates/core/src/persist/wal.rs:443: [swallowed-error] `let _ = …` discards a \
                  fallible result in `DurableEngine::open` on a fallible IO/recovery path \
                  (DurableEngine::open)",
        suppression: ALLOW_LINE,
    },
];

/// Looks up a rule doc by rule name (`lock-order`) or short id (`A9`,
/// case-insensitive).
pub fn explain(rule: &str) -> Option<&'static RuleDoc> {
    RULES.iter().find(|r| r.rule == rule || r.id.eq_ignore_ascii_case(rule))
}

/// Result of scanning one source file (line rules only; reachability rules
/// need the whole tree).
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Error-tier findings (any one fails the audit).
    pub findings: Vec<Finding>,
    /// Warn-tier `unwrap()`/`expect()` count (A5; only populated for the
    /// budgeted crate).
    pub unwrap_count: usize,
}

/// Scans one file's source text under the line rules that apply to
/// `crate_name`.
///
/// `rel_path` is the repo-relative path used in findings (and to decide
/// whether the file is a crate root for A4).
pub fn scan_source(crate_name: &str, rel_path: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    scan_lexed(crate_name, rel_path, &lexed, &raw_lines)
}

fn scan_lexed(
    crate_name: &str,
    rel_path: &str,
    lexed: &lexer::LexedFile,
    raw_lines: &[&str],
) -> FileReport {
    let mut report = FileReport::default();
    let code_lines = &lexed.code_lines;

    // A4 first: crate roots must forbid unsafe (deny is accepted for the
    // one crate that holds audited A8 exemptions). Checked against the
    // lexed text so a commented-out attribute does not count.
    let is_crate_root = rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs");
    if is_crate_root
        && !code_lines
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]") || l.contains("#![deny(unsafe_code)]"))
    {
        report.findings.push(Finding {
            rule: "forbid-unsafe",
            file: rel_path.to_string(),
            line: 1,
            message: "crate root lacks #![forbid(unsafe_code)] (or #![deny(unsafe_code)])".into(),
        });
    }

    let hash_iter_applies = ORDER_SENSITIVE_CRATES.contains(&crate_name);
    let wall_clock_applies = !WALL_CLOCK_EXEMPT_CRATES.contains(&crate_name);
    let unwrap_applies = UNWRAP_BUDGET_CRATES.contains(&crate_name);

    // Idents bound to hash collections so far in this file (declarations are
    // file-ordered, so a single forward pass sees every binding before its
    // uses — including same-line uses, since declarations are processed
    // before use checks on each line).
    let mut hash_idents: Vec<String> = Vec::new();

    let allowed = |rule: &str, idx: usize| -> bool {
        // A suppression comment covers its own line and the next.
        let on = |i: usize| {
            raw_lines.get(i).is_some_and(|l| suppressed_rules(l).iter().any(|r| r == rule))
        };
        on(idx) || (idx > 0 && on(idx - 1))
    };

    for (idx, code) in code_lines.iter().enumerate() {
        // Per-line exemption from the lexer's brace-tracked #[cfg(test)]
        // spans: only the attributed item's body is skipped, not the file
        // tail.
        if lexed.is_test_line(idx) {
            continue;
        }
        let lineno = idx + 1;

        if hash_iter_applies {
            for ident in hash_bindings(code) {
                if !hash_idents.contains(&ident) {
                    hash_idents.push(ident);
                }
            }
            for ident in &hash_idents {
                if let Some(kind) = hash_iteration_use(code, ident) {
                    if !allowed("hash-iter", idx) {
                        report.findings.push(Finding {
                            rule: "hash-iter",
                            file: rel_path.to_string(),
                            line: lineno,
                            message: format!(
                                "{kind} over hash collection `{ident}` — iteration order is \
                                 randomly seeded per process; use BTreeMap/BTreeSet or sort first"
                            ),
                        });
                    }
                }
            }
        }

        if code.contains(".partial_cmp(") && !allowed("float-cmp", idx) {
            report.findings.push(Finding {
                rule: "float-cmp",
                file: rel_path.to_string(),
                line: lineno,
                message: ".partial_cmp() on floats is partial (NaN ⇒ None/panic/unstable \
                          order); use total_cmp"
                    .into(),
            });
        }

        if wall_clock_applies {
            for token in ["Instant::now", "SystemTime::now", "thread_rng"] {
                if contains_token(code, token) && !allowed("wall-clock", idx) {
                    report.findings.push(Finding {
                        rule: "wall-clock",
                        file: rel_path.to_string(),
                        line: lineno,
                        message: format!(
                            "{token} is a nondeterministic input — use the logical decay \
                             clock / seeded ChaCha (or move this to bench/cli)"
                        ),
                    });
                }
            }
        }

        // A8: every `unsafe` token is deny-tier unless individually audited.
        // Word-boundary matching keeps `unsafe_code` (the A4 lint attribute)
        // from tripping it.
        if contains_token(code, "unsafe") && !allowed("unsafe-block", idx) {
            report.findings.push(Finding {
                rule: "unsafe-block",
                file: rel_path.to_string(),
                line: lineno,
                message: "`unsafe` requires an individual audit: add \
                          `// audit:allow(unsafe-block) -- <safety argument>` or remove it"
                    .into(),
            });
        }

        if unwrap_applies
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !allowed("unwrap-budget", idx)
        {
            report.unwrap_count +=
                code.matches(".unwrap()").count() + code.matches(".expect(").count();
        }
    }
    report
}

/// Idents newly bound to a `HashMap`/`HashSet` on this (lexed) line:
/// `let [mut] NAME = ...Hash{Map,Set}...` bindings plus `NAME: ...Hash…`
/// typed declarations (struct fields, fn params, typed lets).
pub(crate) fn hash_bindings(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    if !code.contains("HashMap") && !code.contains("HashSet") {
        return out;
    }
    let trimmed = code.trim_start();
    if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
        return out;
    }
    // `let [mut] NAME = … HashMap/HashSet …`
    if let Some(pos) = code.find("let ") {
        let rest = code[pos + 4..].trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        if let Some(name) = leading_ident(rest) {
            out.push(name);
        }
    }
    // `NAME: [&][mut] [path::]Hash{Map,Set}<…>` — fields, params, typed lets.
    for marker in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(off) = code[from..].find(marker) {
            let at = from + off;
            from = at + marker.len();
            if let Some(name) = ident_before_type(code, at) {
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        }
    }
    out
}

/// The ident at the start of `s`, if any.
fn leading_ident(s: &str) -> Option<String> {
    let end = s.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(s.len());
    if end == 0 || s.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(s[..end].to_string())
    }
}

/// For a type occurrence at byte `at`, walks left over the path
/// (`std::collections::`), an optional `&`/`mut`, and a `:` type separator
/// (not `::`), returning the declared ident before the colon.
fn ident_before_type(code: &str, at: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = at;
    // Skip the path prefix: idents and `::` pairs (a lone `:` is the
    // declaration separator and stops the walk).
    while i > 0 {
        let c = bytes[i - 1];
        if c.is_ascii_alphanumeric() || c == b'_' {
            i -= 1;
        } else if c == b':' && i >= 2 && bytes[i - 2] == b':' {
            i -= 2;
        } else {
            break;
        }
    }
    // Optional `&`, `&mut `, whitespace.
    loop {
        let rest = &code[..i];
        let t = rest.trim_end();
        if let Some(p) = t.strip_suffix("mut") {
            i = p.len();
        } else if let Some(p) = t.strip_suffix('&') {
            i = p.len();
        } else if t.len() != rest.len() {
            i = t.len();
        } else {
            break;
        }
    }
    // Require a single `:` separator.
    let t = code[..i].trim_end();
    let t = t.strip_suffix(':')?;
    if t.ends_with(':') {
        return None; // `::` — path segment, not a declaration
    }
    let t = t.trim_end();
    let start = t.rfind(|c: char| !c.is_alphanumeric() && c != '_').map_or(0, |p| p + 1);
    let name = &t[start..];
    if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(name.to_string())
    }
}

/// Whether this line iterates the tracked hash binding `ident`; returns a
/// short description of the construct if so.
fn hash_iteration_use(code: &str, ident: &str) -> Option<&'static str> {
    for (suffix, kind) in [
        (".iter()", ".iter()"),
        (".into_iter()", ".into_iter()"),
        (".keys()", ".keys()"),
        (".values()", ".values()"),
        (".values_mut()", ".values_mut()"),
        (".drain(", ".drain()"),
    ] {
        let pat = format!("{ident}{suffix}");
        if find_with_boundary(code, &pat, ident.len()).is_some() {
            return Some(kind);
        }
    }
    // `for x in [&[mut ]][self.]ident [{]` — direct loop over the collection.
    if code.contains("for ") {
        let mut from = 0;
        while let Some(off) = code[from..].find(ident) {
            let at = from + off;
            from = at + 1;
            let end = at + ident.len();
            if (at > 0 && is_word_byte(code.as_bytes()[at - 1]) && !code[..at].ends_with("self."))
                || (end < code.len() && is_word_byte(code.as_bytes()[end]))
            {
                continue; // part of a longer ident (other than a self. field)
            }
            // Walk left over an optional `self.` receiver and `&`/`&mut`
            // borrow, then require the `in` keyword.
            let mut pre = code[..at].strip_suffix("self.").unwrap_or(&code[..at]);
            pre = pre.trim_end_matches("&mut ").trim_end_matches('&');
            let from_in = pre.trim_end();
            let is_in = from_in.ends_with(" in") || from_in == "in";
            // And the collection must be the whole loop source, not the
            // receiver of some adapter call (`.iter()` cases handled above).
            let after = code[end..].trim_start();
            if is_in && (after.is_empty() || after.starts_with('{')) {
                return Some("for-loop");
            }
        }
    }
    None
}

/// Finds `pat` in `code` such that the char before the match and the char
/// after the first `ident_len` bytes are word boundaries for the ident part.
fn find_with_boundary(code: &str, pat: &str, ident_len: usize) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = code[from..].find(pat) {
        let at = from + off;
        from = at + 1;
        let before_ok = at == 0 || !is_word_byte(code.as_bytes()[at - 1]);
        let end = at + ident_len;
        let after_ok = end >= code.len() || !is_word_byte(code.as_bytes()[end]) || {
            // pat longer than ident (e.g. `ident.iter()`): boundary is built in.
            pat.len() > ident_len
        };
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `code` contains `token` on word boundaries.
fn contains_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(off) = code[from..].find(token) {
        let at = from + off;
        from = at + 1;
        // `:` before is fine — `std::time::Instant::now` is still the token.
        let before_ok = at == 0 || !is_word_byte(code.as_bytes()[at - 1]);
        let end = at + token.len();
        let after_ok = end >= code.len() || !is_word_byte(code.as_bytes()[end]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

// --- tree walking ---------------------------------------------------------

/// Aggregate result of auditing a source tree.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// All deny-tier findings (A1–A4, A6), in deterministic (path, line,
    /// rule) order.
    pub findings: Vec<Finding>,
    /// Per-file `unwrap()`/`expect()` counts for the budgeted crate
    /// (repo-relative path → count; files with count 0 omitted; A5).
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Per-file counts of allocation sites reachable from a per-activation
    /// root (A7; ratcheted, not deny-tier).
    pub alloc_counts: BTreeMap<String, usize>,
    /// The individual A7 allocation sites behind `alloc_counts`, with call
    /// chains (warn-tier detail for reports; not in `findings`).
    pub alloc_sites: Vec<Finding>,
    /// The lock-acquisition graph assembled by A9 (informational; cycles in
    /// it are deny-tier findings).
    pub lock_edges: Vec<concurrency::LockEdge>,
}

/// Scans every `crates/*/src/**/*.rs` under `root` — plus
/// `vendor/rayon/src` (the thread pool is first-party code in all but
/// directory; the other vendored crates are dev-only and e.g. criterion
/// reads wall clocks legitimately) — line rules per file, then the
/// workspace call graph for the reachability rules A6/A7.
///
/// Directory entries are sorted so the report order is stable across
/// filesystems.
pub fn scan_tree(root: &Path) -> std::io::Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut graph_fns: Vec<FnItem> = Vec::new();
    let mut rayon_fns: Vec<FnItem> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let rayon_dir = root.join("vendor").join("rayon");
    if rayon_dir.is_dir() {
        crate_dirs.push(rayon_dir);
    }
    for crate_dir in crate_dirs {
        let crate_name =
            crate_dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).display().to_string();
            let lexed = lex(&source);
            let raw_lines: Vec<&str> = source.lines().collect();
            let fr = scan_lexed(&crate_name, &rel, &lexed, &raw_lines);
            report.findings.extend(fr.findings);
            if fr.unwrap_count > 0 {
                report.unwrap_counts.insert(rel.clone(), fr.unwrap_count);
            }
            if CALL_GRAPH_CRATES.contains(&crate_name.as_str()) {
                graph_fns.extend(extract_fns(&crate_name, &rel, &lexed, &raw_lines));
            } else if crate_name == "rayon" {
                rayon_fns.extend(extract_fns(&crate_name, &rel, &lexed, &raw_lines));
            }
        }
    }

    // Stage 2: reachability rules over the workspace call graph.
    let graph = CallGraph::build(graph_fns);
    let panic_reach = graph.reachable_from(PANIC_ROOTS);
    let alloc_reach = graph.reachable_from(ALLOC_ROOTS);
    for (i, f) in graph.fns.iter().enumerate() {
        if panic_reach.is_reached(i) {
            for site in &f.panic_sites {
                report.findings.push(Finding {
                    rule: "panic-path",
                    file: f.file.clone(),
                    line: site.line,
                    message: format!(
                        "{} in `{}` can panic on the hot path ({}); return a Result, prove it \
                         unreachable, or add `// audit:allow(panic-path) -- <reason>`",
                        site.what,
                        f.qual,
                        panic_reach.chain(&graph, i)
                    ),
                });
            }
        }
        if alloc_reach.is_reached(i) {
            for site in &f.alloc_sites {
                report.alloc_sites.push(Finding {
                    rule: "hot-alloc",
                    file: f.file.clone(),
                    line: site.line,
                    message: format!(
                        "{} in `{}` allocates per activation ({}); reuse a ScratchPool buffer",
                        site.what,
                        f.qual,
                        alloc_reach.chain(&graph, i)
                    ),
                });
                *report.alloc_counts.entry(f.file.clone()).or_insert(0) += 1;
            }
        }
    }
    // Stage 3: concurrency rules. A9/A10 run on the concurrency graph —
    // the hot-path crates plus the pool, which owns nearly every lock and
    // atomic in the workspace — while A11 runs on the pool-free hot-path
    // graph so that common combinator names (`map`, `collect`, …) cannot
    // resolve into the pool's internals and blur every reader chain.
    let mut conc_fns = graph.fns.clone();
    conc_fns.extend(rayon_fns);
    let conc = CallGraph::build(conc_fns);
    let crep = concurrency::analyze(&conc, &graph);
    report.findings.extend(crep.findings);
    report.lock_edges = crep.lock_edges;

    // Stage 4: interprocedural dataflow rules (A12–A14) on the hot-path
    // graph (the pool has no persistence sinks and its own A8/A9 coverage).
    report.findings.extend(dataflow::analyze(&graph));

    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.alloc_sites.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// --- baseline ratchets (A5, A7) -------------------------------------------

/// Parses a checked-in baseline file: `# comment` lines plus
/// `<repo-relative-path> <count>` entries.
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((path, count)) = line.rsplit_once(' ') {
            if let Ok(count) = count.trim().parse::<usize>() {
                out.insert(path.trim().to_string(), count);
            }
        }
    }
    out
}

fn render_baseline(header: &str, counts: &BTreeMap<String, usize>) -> String {
    let mut s = String::from(header);
    for (path, count) in counts {
        s.push_str(&format!("{path} {count}\n"));
    }
    s
}

/// Renders per-file A5 counts in the baseline file format.
pub fn format_baseline(counts: &BTreeMap<String, usize>) -> String {
    render_baseline(
        "# anc-audit unwrap/expect baseline (rule unwrap-budget / A5).\n\
         # Per-file counts of .unwrap()/.expect( in non-test code of the\n\
         # hot-path crates (core, decay, graph).\n\
         # The ratchet only goes down: regenerate with `cargo run -p anc-audit -- --bless`\n\
         # after REMOVING unwraps; adding one needs an inline audit:allow with a reason.\n",
        counts,
    )
}

/// Renders per-file A7 counts in the baseline file format.
pub fn format_baseline_a7(counts: &BTreeMap<String, usize>) -> String {
    render_baseline(
        "# anc-audit hot-path allocation baseline (rule hot-alloc / A7).\n\
         # Per-file counts of Vec::new/vec![/.collect()/.to_vec()/Box::new/format! sites\n\
         # reachable from a per-activation root (see DESIGN.md §8).\n\
         # The ratchet only goes down: regenerate with `cargo run -p anc-audit -- --bless`\n\
         # after REMOVING allocations (usually by reusing a ScratchPool buffer).\n",
        counts,
    )
}

/// Applies a per-file count ratchet for `rule`: any file over its baseline
/// count (or any new file with sites) is an error-tier finding; files now
/// under budget produce a note suggesting `--bless`.
pub fn ratchet_rule(
    rule: &'static str,
    what: &str,
    baseline: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    let mut errors = Vec::new();
    let mut notes = Vec::new();
    for (path, &count) in current {
        let allowed = baseline.get(path).copied().unwrap_or(0);
        if count > allowed {
            errors.push(Finding {
                rule,
                file: path.clone(),
                line: 0,
                message: format!(
                    "{count} {what} exceed the baseline of {allowed}; \
                     remove them or add `// audit:allow({rule}) -- <reason>`"
                ),
            });
        } else if count < allowed {
            notes.push(format!(
                "{path}: {count} {what}, baseline {allowed} — run with --bless to ratchet down"
            ));
        }
    }
    for (path, &allowed) in baseline {
        if allowed > 0 && !current.contains_key(path) {
            notes.push(format!(
                "{path}: now 0 {what}, baseline {allowed} — run with --bless to ratchet down"
            ));
        }
    }
    (errors, notes)
}

/// The A5 ratchet: see [`ratchet_rule`].
pub fn ratchet(
    baseline: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    ratchet_rule("unwrap-budget", "unwrap()/expect() calls", baseline, current)
}

/// The A7 ratchet: see [`ratchet_rule`].
pub fn ratchet_a7(
    baseline: &BTreeMap<String, usize>,
    current: &BTreeMap<String, usize>,
) -> (Vec<Finding>, Vec<String>) {
    ratchet_rule("hot-alloc", "hot-path allocation sites", baseline, current)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_iteration_is_flagged_in_sensitive_crates() {
        let src = "fn f() {\n    let mut m = std::collections::HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in m.iter() {\n        drop((k, v));\n    }\n}\n";
        let r = scan_source("core", "crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "hash-iter");
        assert_eq!(r.findings[0].line, 4);
        // Same source in an order-insensitive crate: clean.
        let r = scan_source("bench", "crates/bench/src/x.rs", src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn hash_field_and_for_loop_are_flagged() {
        let src = "struct S {\n    watched: std::collections::HashSet<u32>,\n}\nimpl S {\n    fn f(&self) {\n        for v in &self.watched {\n            drop(v);\n        }\n    }\n}\n";
        let r = scan_source("core", "crates/core/src/vote.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "hash-iter");
        assert_eq!(r.findings[0].line, 6);
    }

    #[test]
    fn hash_membership_is_not_iteration() {
        let src = "fn f() {\n    let mut s = std::collections::HashSet::new();\n    s.insert(3);\n    assert!(s.contains(&3));\n    let n = s.len();\n    drop(n);\n}\n";
        let r = scan_source("graph", "crates/graph/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn similarly_named_idents_do_not_collide() {
        // `seed_set` is a hash set; `seeds` is not — `seeds.iter()` is fine.
        let src = "fn f(seeds: &[u32]) {\n    let seed_set: std::collections::HashSet<u32> = seeds.iter().copied().collect();\n    assert!(seed_set.contains(&0));\n}\n";
        let r = scan_source("core", "crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn partial_cmp_call_sites_are_flagged_but_not_impls() {
        let flagged =
            "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let r = scan_source("bench", "crates/bench/src/x.rs", flagged);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "float-cmp");
        // A `PartialOrd` impl defines `fn partial_cmp` without a call site.
        let imp = "impl PartialOrd for X {\n    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {\n        Some(self.cmp(other))\n    }\n}\n";
        let r = scan_source("graph", "crates/graph/src/x.rs", imp);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn wall_clock_flagged_outside_bench_and_cli() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
        assert_eq!(scan_source("core", "crates/core/src/x.rs", src).findings.len(), 1);
        assert!(scan_source("bench", "crates/bench/src/x.rs", src).findings.is_empty());
        assert!(scan_source("cli", "crates/cli/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let same = "fn f() {\n    let t = Instant::now(); // audit:allow(wall-clock) -- timing display only\n    drop(t);\n}\n";
        assert!(scan_source("core", "crates/core/src/x.rs", same).findings.is_empty());
        let above = "fn f() {\n    // audit:allow(wall-clock) -- timing display only\n    let t = Instant::now();\n    drop(t);\n}\n";
        assert!(scan_source("core", "crates/core/src/x.rs", above).findings.is_empty());
        // The wrong rule id does not suppress.
        let wrong = "fn f() {\n    // audit:allow(float-cmp) -- mismatched\n    let t = Instant::now();\n    drop(t);\n}\n";
        assert_eq!(scan_source("core", "crates/core/src/x.rs", wrong).findings.len(), 1);
    }

    #[test]
    fn patterns_inside_strings_and_comments_are_ignored() {
        let src = "fn f() -> &'static str {\n    // Instant::now() in a comment is fine\n    \"contains .partial_cmp( and Instant::now and thread_rng\"\n}\n";
        let r = scan_source("core", "crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        let t = std::time::Instant::now();\n        let x: f64 = 1.0;\n        let _ = x.partial_cmp(&x).unwrap();\n        drop(t);\n    }\n}\n";
        let r = scan_source("core", "crates/core/src/x.rs", src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.unwrap_count, 0);
    }

    #[test]
    fn live_code_after_a_test_module_is_scanned() {
        // Regression for the PR 2 unsoundness: the old scanner exempted
        // everything from the first #[cfg(test)] to EOF.
        let src = "fn f() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g() {}\n\
                   }\n\
                   pub fn live() {\n\
                       let t = std::time::Instant::now();\n\
                       drop(t);\n\
                   }\n";
        let r = scan_source("core", "crates/core/src/x.rs", src);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "wall-clock");
        assert_eq!(r.findings[0].line, 7);
    }

    #[test]
    fn forbid_unsafe_checked_on_crate_roots_only() {
        let bare = "pub fn f() {}\n";
        let r = scan_source("core", "crates/core/src/lib.rs", bare);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "forbid-unsafe");
        assert!(scan_source("core", "crates/core/src/other.rs", bare).findings.is_empty());
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(scan_source("core", "crates/core/src/lib.rs", good).findings.is_empty());
    }

    #[test]
    fn deny_unsafe_code_satisfies_a4() {
        let deny = "#![deny(unsafe_code)]\npub fn f() {}\n";
        assert!(scan_source("rayon", "vendor/rayon/src/lib.rs", deny).findings.is_empty());
    }

    #[test]
    fn unsafe_tokens_need_an_individual_audit() {
        let bare = "fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
        let r = scan_source("rayon", "vendor/rayon/src/pool.rs", bare);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "unsafe-block");
        assert_eq!(r.findings[0].line, 2);
        // An impl header counts too.
        let imp = "unsafe impl Send for T {}\n";
        assert_eq!(
            scan_source("core", "crates/core/src/x.rs", imp).findings[0].rule,
            "unsafe-block"
        );
        // A suppression with a reason clears it.
        let audited = "fn f(p: *const u32) -> u32 {\n    // audit:allow(unsafe-block) -- p valid per caller contract\n    unsafe { *p }\n}\n";
        assert!(scan_source("rayon", "vendor/rayon/src/pool.rs", audited).findings.is_empty());
        // The `unsafe_code` lint attribute is not an `unsafe` token.
        let attr = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod pool;\npub fn f() {}\n";
        assert!(scan_source("rayon", "vendor/rayon/src/lib.rs", attr).findings.is_empty());
    }

    #[test]
    fn unwrap_budget_covers_hot_path_crates_and_skips_unwrap_or() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"reason\");\n    let c = x.unwrap_or(0);\n    let d = x.unwrap_or_else(|| 1);\n    a + b + c + d\n}\n";
        let r = scan_source("core", "crates/core/src/x.rs", src);
        assert_eq!(r.unwrap_count, 2, "unwrap_or/unwrap_or_else are not in budget");
        assert!(r.findings.is_empty());
        assert_eq!(scan_source("graph", "crates/graph/src/x.rs", src).unwrap_count, 2);
        assert_eq!(scan_source("decay", "crates/decay/src/x.rs", src).unwrap_count, 2);
        assert_eq!(scan_source("bench", "crates/bench/src/x.rs", src).unwrap_count, 0);
    }

    #[test]
    fn explain_resolves_rule_names_and_ids() {
        assert_eq!(explain("lock-order").map(|r| r.id), Some("A9"));
        assert_eq!(explain("a10").map(|r| r.rule), Some("atomic-ordering"));
        assert_eq!(explain("A11").map(|r| r.rule), Some("blocking-in-reader"));
        assert!(explain("no-such-rule").is_none());
        assert_eq!(RULES.len(), 14, "one doc per rule A1–A14");
    }

    #[test]
    fn ratchet_flags_increases_and_notes_decreases() {
        let baseline = BTreeMap::from([("a.rs".to_string(), 2), ("b.rs".to_string(), 1)]);
        let current = BTreeMap::from([("a.rs".to_string(), 3), ("c.rs".to_string(), 1)]);
        let (errors, notes) = ratchet(&baseline, &current);
        assert_eq!(errors.len(), 2, "{errors:?}"); // a.rs over budget, c.rs new
        assert_eq!(notes.len(), 1, "{notes:?}"); // b.rs dropped to zero
        let (errors, notes) = ratchet(&baseline, &baseline);
        assert!(errors.is_empty() && notes.is_empty());
    }

    #[test]
    fn a7_ratchet_reports_under_its_own_rule() {
        let current = BTreeMap::from([("a.rs".to_string(), 1)]);
        let (errors, _) = ratchet_a7(&BTreeMap::new(), &current);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, "hot-alloc");
    }

    #[test]
    fn baseline_round_trips() {
        let counts = BTreeMap::from([
            ("crates/core/src/engine.rs".to_string(), 2),
            ("crates/core/src/other.rs".to_string(), 7),
        ]);
        assert_eq!(parse_baseline(&format_baseline(&counts)), counts);
        assert_eq!(parse_baseline(&format_baseline_a7(&counts)), counts);
        assert!(parse_baseline("# only comments\n\n").is_empty());
    }
}
