//! Source scrubbing: turns Rust source into per-line "code only" text.
//!
//! The scanner in [`crate::scan_source`] matches plain substrings, so before
//! matching, this module removes everything that is not code:
//!
//! * line comments (`//` to end of line, which also covers `///` and `//!`
//!   doc comments) are dropped;
//! * block comments (`/* … */`, nested) are dropped, across lines;
//! * string literals (`"…"` with escapes, raw strings `r"…"`/`r#"…"#`) are
//!   *blanked* — replaced by spaces — so the rule patterns spelled inside
//!   this very crate's message strings are never findings;
//! * char literals (`'x'`, `'\n'`) are blanked, while lifetimes (`'a`) are
//!   left alone (an unmatched `'` must not open a string-like state).
//!
//! Line structure is preserved exactly: output line `i` corresponds to input
//! line `i`, so findings carry real line numbers.

/// Scrubber state across characters.
#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    /// Inside `/* … */`; payload is the nesting depth.
    Block(u32),
    Str,
    /// Inside `r##"…"##`; payload is the number of `#`s.
    RawStr(u32),
}

/// Scrubs `source` into one code-only string per input line.
pub fn scrub_source(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for line in source.lines() {
        out.push(scrub_line(line, &mut state));
        // A line comment and a normal string never span lines; an unclosed
        // `"` at EOL is invalid Rust, so resetting is the safe recovery.
        if state == State::Str {
            state = State::Code;
        }
    }
    out
}

fn scrub_line(line: &str, state: &mut State) -> String {
    let b: Vec<char> = line.chars().collect();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        match *state {
            State::Block(depth) => {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    *state = State::Block(depth + 1);
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    *state = if depth == 1 { State::Code } else { State::Block(depth - 1) };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == '\\' {
                    i += 2; // skip the escaped char (covers \" and \\)
                } else if b[i] == '"' {
                    *state = State::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i + 1, hashes) {
                    *state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                let c = b[i];
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    break; // line comment (also /// and //!): drop the rest
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    *state = State::Block(1);
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    *state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
                    // r"…", r#"…"#, br"…" — count the hashes.
                    let mut j = i + 1;
                    if b.get(j) == Some(&'r') {
                        j += 1; // the `r` of `br`
                    }
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    out.push('"');
                    *state = State::RawStr(hashes);
                    i = j + 1; // past the opening quote
                } else if c == '\'' {
                    // Char literal vs lifetime. `'\…'` and `'x'` are char
                    // literals; `'a` / `'static` are lifetimes.
                    if b.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                        out.push(' ');
                        i = j + 1;
                    } else if b.get(i + 2) == Some(&'\'') {
                        out.push(' ');
                        i += 3; // 'x'
                    } else {
                        out.push('\''); // lifetime; keep and move on
                        i += 1;
                    }
                } else {
                    // Word-boundary guard: `r` inside an ident is not a raw
                    // string prefix — handled by is_raw_string_start above.
                    out.push(c);
                    i += 1;
                }
            }
        }
    }
    out
}

/// Whether the `r`/`b` at position `i` begins a raw string literal (and not,
/// say, the tail of an identifier like `var` followed by `"..."`).
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    if b[i] == 'b' {
        if b.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

/// Whether `hashes` many `#`s follow position `from` (closing a raw string).
fn closes_raw(b: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| b.get(from + k) == Some(&'#'))
}

/// Rule ids named by an `audit:allow(<rules>)` marker on this *raw* line.
///
/// Syntax: `// audit:allow(rule-a, rule-b) -- why this is fine`. The marker
/// is looked up on the raw (unscrubbed) line because it lives in a comment.
pub fn suppressed_rules(raw_line: &str) -> Vec<String> {
    let Some(at) = raw_line.find("audit:allow(") else {
        return Vec::new();
    };
    let rest = &raw_line[at + "audit:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_dropped() {
        let out = scrub_source("let x = 1; // Instant::now\n/// doc .iter()\ncode();\n");
        assert_eq!(out[0], "let x = 1; ");
        assert_eq!(out[1], "");
        assert_eq!(out[2], "code();");
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let out = scrub_source("a(); /* one /* two\nstill comment */ still */ b();\nc();\n");
        assert_eq!(out[0], "a(); ");
        assert_eq!(out[1], " b();");
        assert_eq!(out[2], "c();");
    }

    #[test]
    fn strings_are_blanked_not_removed() {
        let out = scrub_source("let s = \"thread_rng and .iter()\"; f(s);\n");
        assert!(!out[0].contains("thread_rng"));
        assert!(!out[0].contains(".iter()"));
        assert!(out[0].contains("f(s);"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let out = scrub_source("let s = \"a \\\" Instant::now\"; g();\n");
        assert!(!out[0].contains("Instant::now"));
        assert!(out[0].contains("g();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let out = scrub_source("let s = r#\"has \"quotes\" and thread_rng\"#; h();\n");
        assert!(!out[0].contains("thread_rng"), "{:?}", out[0]);
        assert!(out[0].contains("h();"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let out = scrub_source("fn f<'a>(x: &'a str) -> char { '\"' }\n");
        // The quote char literal must not open string state.
        assert!(out[0].contains("&'a str"));
        let out = scrub_source("let c = 'x'; let q = '\\''; i();\n");
        assert!(out[0].contains("i();"));
    }

    #[test]
    fn suppression_parsing() {
        assert_eq!(
            suppressed_rules("let t = x; // audit:allow(wall-clock) -- display only"),
            vec!["wall-clock"]
        );
        assert_eq!(
            suppressed_rules("// audit:allow(hash-iter, unwrap-budget) -- reason"),
            vec!["hash-iter", "unwrap-budget"]
        );
        assert!(suppressed_rules("plain code line").is_empty());
        assert!(suppressed_rules("// audit:allow( unclosed").is_empty());
    }
}
