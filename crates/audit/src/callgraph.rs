//! Workspace call graph over the lexed token streams (stage 2 of the audit).
//!
//! The line rules A1–A5 are local: they can say "this line calls
//! `.unwrap()`" but not "this `unwrap` runs on every activation". This
//! module extracts every `fn` item in the hot-path crates
//! ([`CALL_GRAPH_CRATES`]) together with its call sites and panic/allocation
//! markers, resolves calls to workspace functions with a deliberately
//! *over-approximating* heuristic (reachability may include functions that a
//! precise analysis would exclude — never the reverse, within the heuristic's
//! known blind spots; see DESIGN.md §8), and walks reachability from the hot
//! entry points to drive:
//!
//! * **A6 `panic-path`** — `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` / `.unwrap()` / `.expect(` in any function reachable
//!   from a [`PANIC_ROOTS`] entry (deny-tier).
//! * **A7 `hot-alloc`** — `Vec::new` / `vec![` / `.collect()` / `.to_vec()`
//!   / `Box::new` / `format!` in any function reachable from a per-activation
//!   [`ALLOC_ROOTS`] entry (warn-tier, ratcheted per file against
//!   `baseline_a7.txt`; the fix is usually the `ScratchPool`).
//!
//! Resolution heuristic, in order:
//!
//! 1. `Type::name(` with a known `impl Type` in the workspace → exactly that
//!    function. `Self::name(` substitutes the enclosing `impl` type and
//!    `<T as Trait>::name(` recovers `T` from the UFCS qualifier, so both
//!    take this exact path instead of the by-name fallback.
//! 2. `Type::name(` with an *unknown* capitalized type (e.g. `Vec::new`) →
//!    external; no edge. This is what keeps `Vec::new` from wiring the graph
//!    to every workspace `new`. Paths rooted at `std`/`core`/`alloc`
//!    (`std::mem::take`) are external regardless of segment case.
//! 3. `seg::name(` with a lowercase first segment (module path, e.g.
//!    `query::local_cluster`) → every workspace fn named `name`.
//! 4. `.name(` method calls and bare `name(` calls → every workspace fn
//!    named `name` (receiver types are not inferred).
//!
//! Known over-approximations (accepted — they only make the lint stricter):
//! a method call `.get(` resolves to every workspace `get`. Known blind
//! spots: function pointers/closures passed as values, macro-generated
//! calls, and trait-object dispatch to impls outside [`CALL_GRAPH_CRATES`].
//!
//! Beyond calls and panic/alloc markers, extraction also records the raw
//! material for the A9–A11 concurrency rules (analyzed in
//! [`crate::concurrency`]): lock acquisition sites with tracked guard
//! extents, events that happen *while* a lock is held, atomic-op sites with
//! their `Ordering`s, and potentially-blocking sites (lock / condvar wait /
//! channel recv / park / pool dispatch). The guard-extent model: a
//! `let`-bound guard (optionally chained through `.unwrap()`/`.expect(…)`)
//! is held to the end of its enclosing block or an explicit `drop(guard)`;
//! any other use of the guard expression is a statement temporary held to
//! the statement's `;`. Guards bound by `if let`/`while let`/`match` are
//! approximated as statement temporaries (the workspace does not bind lock
//! guards that way).

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::{scan_flow, FnFlow};
use crate::lexer::{lock_name_override, matching, suppressed_rules, LexedFile, Token, TokenKind};

/// Crates included in the call graph (the per-activation hot path lives
/// here, and since ISSUE 10 the serving read/respond path too;
/// `bench`/`cli`/`data` are driver code and may allocate freely).
pub const CALL_GRAPH_CRATES: &[&str] = &["core", "decay", "graph", "server"];

/// Hot entry points for A6 `panic-path`: everything on the activation and
/// query fast path must be panic-free.
pub const PANIC_ROOTS: &[&str] = &[
    "AncEngine::activate",
    "AncEngine::activate_traced",
    "AncEngine::activate_batch",
    "AncEngine::activate_batch_adaptive",
    "AncEngine::sigma",
    "AncEngine::approx_distance",
    "AncEngine::local_cluster",
    "AncEngine::local_cluster_power",
    "AncEngine::smallest_cluster",
    "AncEngine::cluster_all",
    "AncEngine::cluster_all_cached",
    "Pyramids::on_weight_change",
    "Pyramids::on_weight_change_into",
    "Pyramids::on_weight_change_batch",
    "Pyramids::on_weight_change_serial",
    "Pyramids::on_weight_change_serial_into",
    "DurableEngine::activate",
    "DurableEngine::activate_batch",
    "DurableEngine::activate_batch_adaptive",
    // Serving layer (DESIGN.md §14): one panicking connection thread kills
    // its client, so the whole per-request surface — decode, respond,
    // encode, and the snapshot reads under them — must be panic-free.
    "ConnState::respond",
    "Request::decode",
    "Response::encode",
    "SnapshotReader::snapshot",
    "ServeSnapshot::clusters_at",
    "ServeSnapshot::same_cluster_at",
    "ServeSnapshot::members_at",
];

/// Per-activation entry points for A7 `hot-alloc`: these run once per stream
/// event, so allocations here bound throughput. The pure query APIs
/// (`local_cluster` etc.) are *not* alloc roots — they return owned results
/// by design and run at query rate, not stream rate. The convenience
/// wrappers `on_weight_change`/`on_weight_change_serial` that collect into
/// fresh `Vec`s are likewise excluded: the engine's stream path only calls
/// the pooled `_into` variants.
pub const ALLOC_ROOTS: &[&str] = &[
    "AncEngine::activate",
    "AncEngine::activate_traced",
    "AncEngine::activate_batch",
    "AncEngine::activate_batch_adaptive",
    "Pyramids::on_weight_change_into",
    "Pyramids::on_weight_change_batch",
    "Pyramids::on_weight_change_serial_into",
];

/// Wait-free query roots for A11 `blocking-in-reader`: the serving design
/// (ROADMAP item 2) answers point queries from cached/`Arc`-snapshot state,
/// so no lock acquisition, condvar wait, channel `recv`, `park`, or pool
/// dispatch may be reachable from these — except behind a justified
/// `audit:allow(blocking-in-reader)` (today: the cache's miss-path cold
/// fill, which by design runs on the writer thread).
pub const QUERY_ROOTS: &[&str] = &[
    "AncEngine::cluster_all",
    "AncEngine::cluster_all_cached",
    "AncEngine::same_cluster",
    "Pyramids::same_cluster",
    // The serving reader path (DESIGN.md §14): readers chase the epoch'd
    // snapshot chain and answer entirely off `Arc`s — wait-free by
    // construction, and this rule keeps it that way.
    "SnapshotReader::snapshot",
    "ServeSnapshot::clusters_at",
    "ServeSnapshot::same_cluster_at",
    "ServeSnapshot::members_at",
];

/// A panic or allocation marker inside one function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// 1-based line of the marker.
    pub line: usize,
    /// What was matched, e.g. `".unwrap()"` or `"Vec::new"`.
    pub what: &'static str,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `.name(` — method call, receiver type unknown.
    Method(String),
    /// `Seg::name(` — path call; `Seg` is the segment before the final `::`.
    Path(String, String),
    /// `name(` — bare call.
    Free(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Who is called.
    pub callee: Callee,
    /// 1-based line of the call.
    pub line: usize,
}

/// One lock acquisition site (A9/A11 raw material). The lock's identity is
/// the receiver ident at the acquisition (`shared.deques.lock()` → lock
/// `deques`) unless the line carries an `audit:lock(<name>)` override.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockSite {
    /// Lock identity.
    pub name: String,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// What happened inside a held lock span (A9 edge raw material).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Held {
    /// Another lock was acquired directly while this one was held.
    Lock(String),
    /// A call was made while this lock was held; every lock the callee can
    /// transitively acquire becomes an ordering edge.
    Call(Callee),
}

/// One "did X while holding lock `held`" record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeldEvent {
    /// The held lock's identity.
    pub held: String,
    /// What happened under it.
    pub inner: Held,
    /// 1-based line of the inner event.
    pub line: usize,
}

/// One atomic operation site (A10 raw material).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicSite {
    /// Receiver ident (the atomic's field/variable name).
    pub recv: String,
    /// Operation name (`load`, `store`, `fetch_add`, `compare_exchange`, …).
    pub op: String,
    /// `Ordering` idents in the argument list, in order; the first is the
    /// primary (success) ordering.
    pub orderings: Vec<String>,
    /// 1-based line.
    pub line: usize,
}

/// One potentially-blocking site (A11 raw material): lock acquisition,
/// condvar wait, channel recv, thread park, or pool dispatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockingSite {
    /// Short description of the blocking construct.
    pub what: String,
    /// 1-based line.
    pub line: usize,
}

/// One `fn` item extracted from a lexed file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Crate the function lives in.
    pub crate_name: String,
    /// Repo-relative file path.
    pub file: String,
    /// `Type::name` for methods in an `impl` block, else just `name`.
    pub qual: String,
    /// Simple function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call sites in the body (non-test lines only).
    pub calls: Vec<CallSite>,
    /// Unsuppressed panic markers in the body.
    pub panic_sites: Vec<Site>,
    /// Unsuppressed allocation markers in the body.
    pub alloc_sites: Vec<Site>,
    /// Unsuppressed lock acquisitions (A9).
    pub locks: Vec<LockSite>,
    /// Events inside held lock spans (A9).
    pub held_events: Vec<HeldEvent>,
    /// Condvar waits taken while holding a lock other than the wait's own
    /// guard: `(held lock, line)` — direct A9 findings.
    pub wait_violations: Vec<(String, usize)>,
    /// Unsuppressed atomic-op sites (A10).
    pub atomics: Vec<AtomicSite>,
    /// Unsuppressed blocking sites (A11).
    pub blocking: Vec<BlockingSite>,
    /// Dataflow facts for A12–A14 (see [`crate::dataflow`]).
    pub flow: FnFlow,
}

pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "in", "loop", "return", "break", "continue", "let",
    "move", "as", "ref", "box", "dyn", "where", "use", "pub", "mod", "struct", "enum", "trait",
    "type", "const", "static", "fn", "impl", "unsafe", "extern", "crate", "super", "self", "Self",
    "async", "await", "true", "false",
];

/// Extracts every non-test `fn` item (with call sites and markers) from one
/// lexed file. `raw_lines` is the unlexed source, used to honor
/// `audit:allow(panic-path)` / `audit:allow(hot-alloc)` on or above a
/// marker's line.
pub fn extract_fns(
    crate_name: &str,
    file: &str,
    lexed: &LexedFile,
    raw_lines: &[&str],
) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let close_of = brace_partners(toks);

    // impl ranges: (body_open, body_close, type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        if let Some((open, ty)) = impl_header(toks, i) {
            if let Some(&close) = close_of.get(&open) {
                impls.push((open, close, ty));
            }
        }
    }

    // fn items: header parse, body range, impl-type qualification.
    let mut items: Vec<FnItem> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::new(); // body (open, close)
    let mut starts: Vec<usize> = Vec::new(); // `fn` keyword token index
                                             // Test fns never run in production; feature-gated fns (and gated call
                                             // statements) are compiled out of the default-feature build the audit
                                             // targets.
    let excluded = |line: usize| {
        lexed.is_test_line(line.saturating_sub(1)) || lexed.is_gated_line(line.saturating_sub(1))
    };

    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") || excluded(t.line) {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(` — function pointer type
        }
        let Some(open) = fn_body_open(toks, i + 2) else { continue }; // no body: trait sig
        let Some(&close) = close_of.get(&open) else { continue };
        // Innermost enclosing impl wins (nested impls do not occur, but
        // smallest-range is the right tie-break anyway).
        let ty = impls
            .iter()
            .filter(|(o, c, _)| *o < i && i < *c)
            .min_by_key(|(o, c, _)| c - o)
            .map(|(_, _, ty)| ty.clone());
        let name = name_tok.text.clone();
        let qual = match ty {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        items.push(FnItem {
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            qual,
            name,
            line: t.line,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            alloc_sites: Vec::new(),
            locks: Vec::new(),
            held_events: Vec::new(),
            wait_violations: Vec::new(),
            atomics: Vec::new(),
            blocking: Vec::new(),
            flow: FnFlow::default(),
        });
        ranges.push((open, close));
        starts.push(i);
    }

    // Innermost-fn ownership per token: outer ranges first, inner overwrite.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(ranges[k].1 - ranges[k].0));
    let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
    for &k in &order {
        let (open, close) = ranges[k];
        for slot in owner[open..=close].iter_mut() {
            *slot = Some(k);
        }
    }

    let allowed = |rule: &str, line: usize| -> bool {
        let idx = line.saturating_sub(1);
        let on = |i: usize| {
            raw_lines.get(i).is_some_and(|l| suppressed_rules(l).iter().any(|r| r == rule))
        };
        on(idx) || (idx > 0 && on(idx - 1))
    };

    for (i, t) in toks.iter().enumerate() {
        let Some(k) = owner[i] else { continue };
        if excluded(t.line) {
            continue;
        }
        let item = &mut items[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"));
        if next_bang {
            let what: Option<(&'static str, bool)> = match t.text.as_str() {
                "panic" => Some(("panic!", true)),
                "unreachable" => Some(("unreachable!", true)),
                "todo" => Some(("todo!", true)),
                "unimplemented" => Some(("unimplemented!", true)),
                "vec" => Some(("vec![", false)),
                "format" => Some(("format!", false)),
                _ => None,
            };
            if let Some((what, is_panic)) = what {
                let rule = if is_panic { "panic-path" } else { "hot-alloc" };
                if !allowed(rule, t.line) {
                    let site = Site { line: t.line, what };
                    if is_panic {
                        item.panic_sites.push(site);
                    } else {
                        item.alloc_sites.push(site);
                    }
                }
            }
            continue;
        }
        if !call_follows(toks, i + 1) {
            continue;
        }
        let prev = if i > 0 { Some(&toks[i - 1]) } else { None };
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue; // the definition itself
        }
        if prev.is_some_and(|p| p.is_punct(".")) {
            // Method call: marker check first, then an edge (harmless for
            // std methods — no workspace fn shares those names).
            let marker: Option<(&'static str, bool)> = match t.text.as_str() {
                "unwrap" => Some((".unwrap()", true)),
                "expect" => Some((".expect(", true)),
                "collect" => Some((".collect()", false)),
                "to_vec" => Some((".to_vec()", false)),
                _ => None,
            };
            if let Some((what, is_panic)) = marker {
                let rule = if is_panic { "panic-path" } else { "hot-alloc" };
                if !allowed(rule, t.line) {
                    let site = Site { line: t.line, what };
                    if is_panic {
                        item.panic_sites.push(site);
                    } else {
                        item.alloc_sites.push(site);
                    }
                }
            }
            item.calls.push(CallSite { callee: Callee::Method(t.text.clone()), line: t.line });
        } else if prev.is_some_and(|p| p.is_punct("::")) {
            let raw_seg = if i >= 2 && toks[i - 2].kind == TokenKind::Ident {
                toks[i - 2].text.as_str()
            } else {
                ""
            };
            if (raw_seg == "Vec" || raw_seg == "Box")
                && t.text == "new"
                && !allowed("hot-alloc", t.line)
            {
                let what = if raw_seg == "Vec" { "Vec::new" } else { "Box::new" };
                item.alloc_sites.push(Site { line: t.line, what });
            }
            let self_ty = item.qual.rsplit_once("::").map(|(ty, _)| ty);
            let seg = path_qualifier(toks, i, self_ty);
            item.calls.push(CallSite { callee: Callee::Path(seg, t.text.clone()), line: t.line });
        } else if !KEYWORDS.contains(&t.text.as_str()) {
            item.calls.push(CallSite { callee: Callee::Free(t.text.clone()), line: t.line });
        }
    }

    // Concurrency raw material (A9–A11): a second, per-fn walk that tracks
    // guard extents — hold state cannot be reconstructed from the flat call
    // list above.
    for (k, item) in items.iter_mut().enumerate() {
        let (open, close) = ranges[k];
        let self_ty = item.qual.rsplit_once("::").map(|(ty, _)| ty.to_string());
        scan_concurrency(toks, open, close, k, &owner, &close_of, lexed, raw_lines, self_ty, item);
    }

    // Dataflow raw material (A12–A14): a third per-fn walk over statements
    // (see `dataflow::scan_flow`). File-level hash-collection bindings feed
    // the hash-order-iteration source check.
    let hash_idents: BTreeSet<String> =
        lexed.code_lines.iter().flat_map(|line| crate::hash_bindings(line)).collect();
    for (k, item) in items.iter_mut().enumerate() {
        let (open, close) = ranges[k];
        let self_ty = item.qual.rsplit_once("::").map(|(ty, _)| ty.to_string());
        scan_flow(
            toks,
            starts[k],
            open,
            close,
            k,
            &owner,
            lexed,
            raw_lines,
            self_ty.as_deref(),
            &hash_idents,
            item,
        );
    }
    items
}

/// The effective qualifier of a `…::name(` call whose name ident is at `i`:
/// the segment before the final `::`, with three repairs over the raw
/// token — `Self::` substitutes the enclosing `impl` type (`self_ty`),
/// `<T as Trait>::` recovers `T` from the UFCS qualifier, and a path rooted
/// at `std`/`core`/`alloc` returns that root (which resolution treats as
/// external, so `std::mem::take` stops matching every workspace `take`).
fn path_qualifier(toks: &[Token], i: usize, self_ty: Option<&str>) -> String {
    if i < 2 {
        return String::new();
    }
    let seg = &toks[i - 2];
    if seg.kind == TokenKind::Ident {
        // Walk to the path root: `a::b::name(` → `a`.
        let mut j = i - 2;
        while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokenKind::Ident {
            j -= 2;
        }
        if matches!(toks[j].text.as_str(), "std" | "core" | "alloc") {
            return toks[j].text.clone();
        }
        if seg.text == "Self" {
            return self_ty.map(str::to_string).unwrap_or_default();
        }
        return seg.text.clone();
    }
    if seg.is_punct(">") {
        // UFCS `<T as Trait>::name(`: the first type ident inside the
        // brackets is the receiver type.
        let mut depth = 1i32;
        let mut j = i - 2;
        while j > 0 && depth > 0 {
            j -= 1;
            if toks[j].is_punct(">") {
                depth += 1;
            } else if toks[j].is_punct("<") {
                depth -= 1;
            }
        }
        let mut k = j + 1;
        loop {
            match toks.get(k) {
                Some(t) if t.is_punct("&") || t.kind == TokenKind::Lifetime => k += 1,
                Some(t) if t.is_ident("dyn") || t.is_ident("mut") => k += 1,
                Some(t) if t.is_ident("Self") => {
                    return self_ty.map(str::to_string).unwrap_or_default();
                }
                Some(t) if t.kind == TokenKind::Ident => return t.text.clone(),
                _ => return String::new(),
            }
        }
    }
    String::new()
}

/// Classifies the call site whose name ident is at `i` the same way the
/// main extraction loop does (the concurrency walk needs callees for
/// held-span calls). The caller has verified an argument list follows.
pub(crate) fn callee_at(toks: &[Token], i: usize, self_ty: Option<&str>) -> Option<Callee> {
    let t = &toks[i];
    let prev = if i > 0 { Some(&toks[i - 1]) } else { None };
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return None;
    }
    if prev.is_some_and(|p| p.is_punct(".")) {
        return Some(Callee::Method(t.text.clone()));
    }
    if prev.is_some_and(|p| p.is_punct("::")) {
        return Some(Callee::Path(path_qualifier(toks, i, self_ty), t.text.clone()));
    }
    if KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    Some(Callee::Free(t.text.clone()))
}

/// Atomic-op method names. A site only counts as atomic when an `Ordering`
/// ident appears in its argument list (`Vec::swap`, io `read`/`write`, and
/// other name collisions carry none).
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Method names that dispatch work onto the thread pool (this workspace's
/// rayon shim combinators). A pool dispatch blocks the caller until the
/// call's chunks complete, so it is a blocking site for A11.
const POOL_DISPATCH: &[&str] = &[
    "into_par_iter",
    "par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_chunks_mut",
    "collect_into_vec",
];

/// An active lock guard during the concurrency walk.
struct Hold {
    /// Lock identity.
    name: String,
    /// The `let`-bound guard ident, if scoped (releasable by `drop(ident)`).
    bound: Option<String>,
    /// Token index at which the hold expires.
    release_at: usize,
}

/// The per-fn concurrency walk: tracks lock-guard extents through the body
/// `(open, close)` of fn `k` and records lock acquisitions, held-span
/// events, condvar-wait violations, atomic ops, and blocking sites into
/// `item` (see the module docs for the guard-extent model).
#[allow(clippy::too_many_arguments)]
fn scan_concurrency(
    toks: &[Token],
    open: usize,
    close: usize,
    k: usize,
    owner: &[Option<usize>],
    close_of: &BTreeMap<usize, usize>,
    lexed: &LexedFile,
    raw_lines: &[&str],
    self_ty: Option<String>,
    item: &mut FnItem,
) {
    let allowed = |rule: &str, line: usize| -> bool {
        let idx = line.saturating_sub(1);
        let on = |i: usize| {
            raw_lines.get(i).is_some_and(|l| suppressed_rules(l).iter().any(|r| r == rule))
        };
        on(idx) || (idx > 0 && on(idx - 1))
    };
    let lock_name = |toks: &[Token], i: usize, line: usize| -> String {
        let idx = line.saturating_sub(1);
        let over = |i: usize| raw_lines.get(i).and_then(|l| lock_name_override(l));
        over(idx)
            .or_else(|| if idx > 0 { over(idx - 1) } else { None })
            .unwrap_or_else(|| receiver_name(toks, i))
    };
    let excluded = |line: usize| {
        lexed.is_test_line(line.saturating_sub(1)) || lexed.is_gated_line(line.saturating_sub(1))
    };

    let mut scopes: Vec<usize> = Vec::new(); // close indices of open braces
    let mut holds: Vec<Hold> = Vec::new();
    let mut stmt_let: Option<String> = None; // `let [mut] IDENT` of this stmt
    let mut pending_let = false;
    let mut i = open + 1;
    while i < close {
        holds.retain(|h| h.release_at > i);
        let t = &toks[i];
        if owner[i] != Some(k) || excluded(t.line) {
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            if let Some(&c) = close_of.get(&i) {
                scopes.push(c);
            }
            (stmt_let, pending_let) = (None, false);
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            if scopes.last() == Some(&i) {
                scopes.pop();
            }
            (stmt_let, pending_let) = (None, false);
            i += 1;
            continue;
        }
        if t.is_punct(";") {
            (stmt_let, pending_let) = (None, false);
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            pending_let = true;
            i += 1;
            continue;
        }
        if pending_let && t.kind == TokenKind::Ident {
            if t.text != "mut" {
                stmt_let = Some(t.text.clone());
                pending_let = false;
            }
            i += 1;
            continue;
        }
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let line = t.line;
        let next_is_call = toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");

        // `drop(guard)` — explicit early release of a bound guard.
        if t.is_ident("drop") && next_is_call && !prev_dot {
            if let Some(g) = toks.get(i + 2).filter(|g| g.kind == TokenKind::Ident) {
                holds.retain(|h| h.bound.as_deref() != Some(g.text.as_str()));
            }
            i += 1;
            continue;
        }
        // Lock acquisition.
        if t.is_ident("lock") && prev_dot && next_is_call {
            let name = lock_name(toks, i - 2, line);
            if !allowed("blocking-in-reader", line) {
                item.blocking.push(BlockingSite { what: format!("lock `{name}`"), line });
            }
            let chain_end = guard_chain_end(toks, i + 1);
            if !allowed("lock-order", line) {
                for h in &holds {
                    item.held_events.push(HeldEvent {
                        held: h.name.clone(),
                        inner: Held::Lock(name.clone()),
                        line,
                    });
                }
                item.locks.push(LockSite { name: name.clone(), line });
                let (release_at, bound) =
                    hold_extent(toks, chain_end, close, &scopes, stmt_let.as_deref());
                holds.push(Hold { name, bound, release_at });
            }
            // Resume past the guard expression's own `.unwrap()`/`.expect(`
            // chain — those are part of the acquisition, not held-span work.
            i = chain_end.map_or(i + 1, |e| e + 1);
            continue;
        }
        // Condvar wait: blocking, and an A9 violation if any *other* lock
        // is held (the wait releases only its own guard's mutex).
        if prev_dot
            && next_is_call
            && matches!(t.text.as_str(), "wait" | "wait_timeout" | "wait_while")
        {
            let cv = receiver_name(toks, i - 2);
            if !allowed("blocking-in-reader", line) {
                item.blocking
                    .push(BlockingSite { what: format!("Condvar::{} on `{cv}`", t.text), line });
            }
            if !allowed("lock-order", line) {
                let guard =
                    toks.get(i + 2).filter(|g| g.kind == TokenKind::Ident).map(|g| g.text.clone());
                for h in &holds {
                    if h.bound.is_none() || h.bound != guard {
                        item.wait_violations.push((h.name.clone(), line));
                    }
                }
            }
            i += 1;
            continue;
        }
        // Channel recv / thread park.
        if prev_dot && next_is_call && matches!(t.text.as_str(), "recv" | "recv_timeout") {
            if !allowed("blocking-in-reader", line) {
                item.blocking.push(BlockingSite { what: format!("channel {}()", t.text), line });
            }
            i += 1;
            continue;
        }
        if !prev_dot && next_is_call && matches!(t.text.as_str(), "park" | "park_timeout") {
            if !allowed("blocking-in-reader", line) {
                item.blocking.push(BlockingSite { what: format!("thread::{}()", t.text), line });
            }
            i += 1;
            continue;
        }
        // Pool dispatch.
        let rayon_join = t.is_ident("join")
            && i >= 2
            && toks[i - 1].is_punct("::")
            && toks[i - 2].is_ident("rayon");
        if next_is_call && (POOL_DISPATCH.contains(&t.text.as_str()) || rayon_join) {
            if !allowed("blocking-in-reader", line) {
                let what = if rayon_join {
                    "pool dispatch `rayon::join`".to_string()
                } else {
                    format!("pool dispatch `{}`", t.text)
                };
                item.blocking.push(BlockingSite { what, line });
            }
            i += 1;
            continue;
        }
        // Atomic ops (require an Ordering ident in the args).
        if prev_dot && next_is_call && ATOMIC_OPS.contains(&t.text.as_str()) {
            if let Some(orderings) = atomic_orderings(toks, i + 1) {
                if !allowed("atomic-ordering", line) {
                    item.atomics.push(AtomicSite {
                        recv: receiver_name(toks, i - 2),
                        op: t.text.clone(),
                        orderings,
                        line,
                    });
                }
                i += 1;
                continue;
            }
        }
        // Any other call made while holding a lock: the callee's transitive
        // locks become ordering edges in the analysis.
        if !holds.is_empty() && call_follows(toks, i + 1) {
            if let Some(callee) = callee_at(toks, i, self_ty.as_deref()) {
                for h in &holds {
                    item.held_events.push(HeldEvent {
                        held: h.name.clone(),
                        inner: Held::Call(callee.clone()),
                        line,
                    });
                }
            }
        }
        i += 1;
    }
}

/// The receiver ident of a method call: `before_dot` is the token index
/// just before the `.`. Walks back over one `[…]` index group or `(…)` call
/// group (`deques[i % n].lock()` → `deques`; `self.inner().lock()` →
/// `inner`) and returns the ident found, or `?`.
fn receiver_name(toks: &[Token], before_dot: usize) -> String {
    let mut j = before_dot as isize;
    while j >= 0 {
        let t = &toks[j as usize];
        let (open, close) = if t.is_punct("]") {
            ("[", "]")
        } else if t.is_punct(")") {
            ("(", ")")
        } else if t.kind == TokenKind::Ident {
            return t.text.clone();
        } else {
            break;
        };
        let mut depth = 0i32;
        while j >= 0 {
            let t2 = &toks[j as usize];
            if t2.is_punct(close) {
                depth += 1;
            } else if t2.is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j -= 1;
        }
        j -= 1;
    }
    "?".to_string()
}

/// The last token of a lock-guard acquisition expression: the `)` closing
/// the `.lock(…)` argument list at `args`, extended through any
/// `.unwrap()`/`.expect(…)` chain. `None` on unbalanced parens.
fn guard_chain_end(toks: &[Token], args: usize) -> Option<usize> {
    let mut j = matching(toks, args, "(", ")")?;
    while toks.get(j + 1).is_some_and(|t| t.is_punct("."))
        && toks.get(j + 2).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        && toks.get(j + 3).is_some_and(|t| t.is_punct("("))
    {
        j = matching(toks, j + 3, "(", ")")?;
    }
    Some(j)
}

/// Computes a lock guard's extent. `chain_end` is the acquisition
/// expression's last token (see [`guard_chain_end`]). A `let`-bound guard
/// (`stmt_let`) terminated by `;` (or `?;`) lives to the innermost
/// enclosing brace's close; anything else — further chaining, assignment
/// through the guard, use as an argument — is a statement temporary living
/// to the statement's `;` at bracket depth 0. Returns `(release token
/// index, bound guard ident)`.
fn hold_extent(
    toks: &[Token],
    chain_end: Option<usize>,
    fn_close: usize,
    scopes: &[usize],
    stmt_let: Option<&str>,
) -> (usize, Option<String>) {
    let Some(j) = chain_end else {
        return (fn_close, None);
    };
    let ends_stmt = toks.get(j + 1).is_some_and(|t| t.is_punct(";"))
        || (toks.get(j + 1).is_some_and(|t| t.is_punct("?"))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(";")));
    if ends_stmt {
        if stmt_let.is_some() {
            return (scopes.last().copied().unwrap_or(fn_close), stmt_let.map(str::to_string));
        }
        return (j + 1, None);
    }
    // Statement temporary: alive to the statement's `;`.
    let mut depth = 0i32;
    let mut p = j + 1;
    while p < fn_close {
        let t = &toks[p];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return (p, None); // end of the enclosing expression
            }
        } else if t.is_punct(";") && depth == 0 {
            return (p, None);
        }
        p += 1;
    }
    (fn_close, None)
}

/// The `Ordering` idents inside the argument list opening at `args`, in
/// order; `None` when there are none (not an atomic op).
fn atomic_orderings(toks: &[Token], args: usize) -> Option<Vec<String>> {
    let close = matching(toks, args, "(", ")")?;
    let names: Vec<String> = toks[args + 1..close]
        .iter()
        .filter(|t| {
            t.kind == TokenKind::Ident
                && matches!(
                    t.text.as_str(),
                    "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                )
        })
        .map(|t| t.text.clone())
        .collect();
    (!names.is_empty()).then_some(names)
}

/// Maps each `{` token index to its matching `}` index.
fn brace_partners(toks: &[Token]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
            }
        }
    }
    map
}

/// Parses an `impl` header starting at token `at` (`impl`): returns the body
/// `{` index and the implemented type's simple name (the type after `for`
/// in trait impls).
fn impl_header(toks: &[Token], at: usize) -> Option<(usize, String)> {
    let mut i = at + 1;
    // Skip `<generics>`.
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut ty: Option<String> = None;
    let mut in_where = false;
    while let Some(t) = toks.get(i) {
        if t.is_punct("{") {
            return Some((i, ty?));
        }
        if t.is_ident("where") {
            // Bounds in the where clause must not overwrite the type.
            in_where = true;
        } else if t.is_ident("for") {
            // Trait impl: the implemented type follows; drop the trait name.
            ty = None;
        } else if !in_where && t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            // Last path segment before generics/`{` wins (`fmt::Display` →
            // `Display`; then `for Finding` → `Finding`).
            ty = Some(t.text.clone());
        } else if t.is_punct("<") {
            // Skip the type's own generic args.
            let mut depth = 0i32;
            while let Some(t2) = toks.get(i) {
                if t2.is_punct("<") {
                    depth += 1;
                } else if t2.is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
        }
        i += 1;
    }
    None
}

/// Finds the body `{` of a `fn` whose parameter list starts at or after
/// `from`, skipping the parameter parens and any return type / where clause.
/// Returns `None` for braceless signatures (`fn f();` in traits).
fn fn_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut i = from;
    let mut paren = 0i32;
    let mut angle = 0i32;
    while let Some(t) = toks.get(i) {
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0); // `->` lexes as `-`, `>`
        } else if paren == 0 && t.is_punct(";") {
            return None;
        } else if paren == 0 && angle == 0 && t.is_punct("{") {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Whether the token at `i` begins an argument list: `(` directly, or a
/// turbofish `::<…>(`.
pub(crate) fn call_follows(toks: &[Token], i: usize) -> bool {
    match toks.get(i) {
        Some(t) if t.is_punct("(") => true,
        Some(t) if t.is_punct("::") && toks.get(i + 1).is_some_and(|n| n.is_punct("<")) => {
            let mut depth = 0i32;
            let mut j = i + 1;
            while let Some(t2) = toks.get(j) {
                if t2.is_punct("<") {
                    depth += 1;
                } else if t2.is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        return toks.get(j + 1).is_some_and(|n| n.is_punct("("));
                    }
                }
                j += 1;
            }
            false
        }
        _ => false,
    }
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All extracted functions, in deterministic (crate, file, position)
    /// order.
    pub fns: Vec<FnItem>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<String, Vec<usize>>,
}

/// Reachability result: for each fn, whether it is reachable and through
/// which caller (BFS parent), for call-chain reporting.
#[derive(Debug)]
pub struct Reachability {
    reached: Vec<bool>,
    parent: Vec<Option<usize>>,
    root_of: Vec<Option<usize>>,
}

impl CallGraph {
    /// Builds the graph from extracted items (order is preserved and must be
    /// deterministic — the scanner feeds files in sorted order).
    pub fn build(fns: Vec<FnItem>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            by_qual.entry(f.qual.clone()).or_default().push(i);
        }
        Self { fns, by_name, by_qual }
    }

    /// Resolves one call site to workspace fn indices (possibly empty).
    pub(crate) fn resolve(&self, callee: &Callee) -> &[usize] {
        static EMPTY: [usize; 0] = [];
        match callee {
            Callee::Method(n) | Callee::Free(n) => {
                self.by_name.get(n).map_or(&EMPTY[..], |v| &v[..])
            }
            Callee::Path(seg, n) => {
                if matches!(seg.as_str(), "std" | "core" | "alloc") {
                    // Rooted at a std-family crate: external by definition;
                    // never fall back to a name match.
                    return &EMPTY[..];
                }
                let qual = format!("{seg}::{n}");
                if let Some(v) = self.by_qual.get(&qual) {
                    return &v[..];
                }
                let unknown_type = seg.chars().next().is_some_and(|c| c.is_uppercase());
                if unknown_type {
                    // `Vec::new`, `ChaCha8Rng::seed_from_u64`, … — external.
                    &EMPTY[..]
                } else {
                    // Module path (`query::local_cluster`) or unknown
                    // qualifier — match by simple name.
                    self.by_name.get(n).map_or(&EMPTY[..], |v| &v[..])
                }
            }
        }
    }

    /// BFS from every fn whose `qual` is in `roots`, in root order.
    pub fn reachable_from(&self, roots: &[&str]) -> Reachability {
        let n = self.fns.len();
        let mut r =
            Reachability { reached: vec![false; n], parent: vec![None; n], root_of: vec![None; n] };
        let mut queue = std::collections::VecDeque::new();
        for root in roots {
            if let Some(starts) = self.by_qual.get(*root) {
                for &s in starts {
                    if !r.reached[s] {
                        r.reached[s] = true;
                        r.root_of[s] = Some(s);
                        queue.push_back(s);
                    }
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            for call in &self.fns[u].calls {
                for &v in self.resolve(&call.callee) {
                    if !r.reached[v] {
                        r.reached[v] = true;
                        r.parent[v] = Some(u);
                        r.root_of[v] = r.root_of[u];
                        queue.push_back(v);
                    }
                }
            }
        }
        r
    }
}

impl Reachability {
    /// Whether fn `i` is reachable from any root.
    pub fn is_reached(&self, i: usize) -> bool {
        self.reached[i]
    }

    /// The call chain `root → … → fns[i]` as quals (length-capped).
    pub fn chain(&self, graph: &CallGraph, i: usize) -> String {
        let mut quals = vec![graph.fns[i].qual.clone()];
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            quals.push(graph.fns[p].qual.clone());
            cur = p;
            if quals.len() > 8 {
                quals.push("…".into());
                break;
            }
        }
        quals.reverse();
        quals.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        extract_fns("core", "crates/core/src/x.rs", &lexed, &raw)
    }

    #[test]
    fn extracts_impl_qualified_fns() {
        let src = "struct Engine;\n\
                   impl Engine {\n\
                       pub fn activate(&mut self) { self.step(); }\n\
                       fn step(&mut self) {}\n\
                   }\n\
                   fn free_helper() {}\n";
        let fns = items(src);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Engine::activate", "Engine::step", "free_helper"]);
        assert_eq!(fns[0].calls, vec![CallSite { callee: Callee::Method("step".into()), line: 3 }]);
    }

    #[test]
    fn trait_impls_qualify_by_the_implementing_type() {
        let src = "impl fmt::Display for Finding {\n\
                       fn fmt(&self) { helper(); }\n\
                   }\n\
                   impl<'a> Ctx<'a> {\n\
                       fn sigma(&self) {}\n\
                   }\n";
        let fns = items(src);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Finding::fmt", "Ctx::sigma"]);
    }

    #[test]
    fn markers_are_collected_and_suppressible() {
        let src = "fn hot() {\n\
                       let v: Vec<u32> = Vec::new();\n\
                       let w = v.to_vec();\n\
                       w.first().unwrap();\n\
                       // audit:allow(panic-path) -- proven nonempty\n\
                       w.last().unwrap();\n\
                   }\n";
        let fns = items(src);
        assert_eq!(fns[0].panic_sites, vec![Site { line: 4, what: ".unwrap()" }]);
        assert_eq!(
            fns[0].alloc_sites,
            vec![Site { line: 2, what: "Vec::new" }, Site { line: 3, what: ".to_vec()" }]
        );
    }

    #[test]
    fn reachability_stops_at_unknown_external_types() {
        let src = "struct Engine;\n\
                   impl Engine {\n\
                       pub fn activate(&mut self) { helper(); }\n\
                   }\n\
                   fn helper() { let _v: Vec<u32> = Vec::new(); }\n\
                   fn unrelated() { panic!(\"never on the hot path\"); }\n";
        let g = CallGraph::build(items(src));
        let r = g.reachable_from(&["Engine::activate"]);
        let reached: Vec<&str> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| r.is_reached(*i))
            .map(|(_, f)| f.qual.as_str())
            .collect();
        // `Vec::new` must not create an edge to `unrelated` (or anything).
        assert_eq!(reached, vec!["Engine::activate", "helper"]);
        let hi = g.fns.iter().position(|f| f.qual == "helper").unwrap();
        assert_eq!(r.chain(&g, hi), "Engine::activate → helper");
    }

    #[test]
    fn turbofish_and_module_path_calls_resolve() {
        let src = "fn a() { helper::<u32>(); }\n\
                   fn helper() {}\n\
                   fn b() { sub::helper(); }\n";
        let g = CallGraph::build(items(src));
        let ra = g.reachable_from(&["a"]);
        let rb = g.reachable_from(&["b"]);
        let hi = g.fns.iter().position(|f| f.qual == "helper").unwrap();
        assert!(ra.is_reached(hi), "turbofish call must resolve");
        assert!(rb.is_reached(hi), "lowercase module path must fall back to name match");
    }

    #[test]
    fn test_module_fns_are_excluded() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { live(); }\n\
                   }\n";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qual, "live");
    }

    #[test]
    fn self_qualified_calls_resolve_to_the_impl_type() {
        let src = "struct Engine;\n\
                   impl Engine {\n\
                       pub fn activate(&self) { Self::helper(); }\n\
                       fn helper() {}\n\
                   }\n\
                   fn unrelated_helper() { panic!(\"boom\"); }\n";
        let fns = items(src);
        assert_eq!(
            fns[0].calls,
            vec![CallSite { callee: Callee::Path("Engine".into(), "helper".into()), line: 3 }]
        );
        let g = CallGraph::build(fns);
        let r = g.reachable_from(&["Engine::activate"]);
        let hi = g.fns.iter().position(|f| f.qual == "Engine::helper").unwrap();
        assert!(r.is_reached(hi), "Self:: must resolve to the impl type");
    }

    #[test]
    fn ufcs_calls_resolve_to_the_receiver_type() {
        let src = "struct Engine;\n\
                   impl Engine {\n\
                       fn helper(&self) {}\n\
                   }\n\
                   fn a(e: &Engine) { <Engine as Helper>::helper(e); }\n\
                   fn b(e: &Engine) { <&mut Engine as Helper>::helper(e); }\n";
        let fns = items(src);
        let a = fns.iter().find(|f| f.qual == "a").unwrap();
        assert_eq!(
            a.calls,
            vec![CallSite { callee: Callee::Path("Engine".into(), "helper".into()), line: 5 }]
        );
        let b = fns.iter().find(|f| f.qual == "b").unwrap();
        assert_eq!(b.calls[0].callee, Callee::Path("Engine".into(), "helper".into()));
    }

    #[test]
    fn std_rooted_paths_are_external() {
        let src = "fn a(x: &mut Vec<u32>) { let _ = std::mem::take(x); }\n\
                   fn take() { panic!(\"workspace take\"); }\n";
        let g = CallGraph::build(items(src));
        let r = g.reachable_from(&["a"]);
        let ti = g.fns.iter().position(|f| f.qual == "take").unwrap();
        assert!(!r.is_reached(ti), "std::mem::take must not resolve to the workspace take");
        // A plain module path still falls back to the name match.
        let src = "fn a() { query::take(); }\nfn take() {}\n";
        let g = CallGraph::build(items(src));
        let r = g.reachable_from(&["a"]);
        let ti = g.fns.iter().position(|f| f.qual == "take").unwrap();
        assert!(r.is_reached(ti));
    }

    #[test]
    fn lock_sites_and_held_edges_are_extracted() {
        let src = "struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
                   impl S {\n\
                       fn nested(&self) {\n\
                           let ga = self.a.lock().unwrap();\n\
                           let gb = self.b.lock().unwrap();\n\
                           drop(gb);\n\
                           drop(ga);\n\
                       }\n\
                       fn temporary(&self) {\n\
                           let v = *self.a.lock().unwrap() + 1;\n\
                           *self.b.lock().unwrap() = v;\n\
                       }\n\
                   }\n";
        let fns = items(src);
        let nested = fns.iter().find(|f| f.qual == "S::nested").unwrap();
        assert_eq!(
            nested.locks,
            vec![LockSite { name: "a".into(), line: 4 }, LockSite { name: "b".into(), line: 5 }]
        );
        assert!(nested
            .held_events
            .iter()
            .any(|e| e.held == "a" && e.inner == Held::Lock("b".into())));
        // `temporary`: the first guard dies at its `;`, so no a→b edge.
        let temp = fns.iter().find(|f| f.qual == "S::temporary").unwrap();
        assert!(
            !temp.held_events.iter().any(|e| matches!(e.inner, Held::Lock(_))),
            "{:?}",
            temp.held_events
        );
    }

    #[test]
    fn drop_releases_a_bound_guard() {
        let src = "struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
                   impl S {\n\
                       fn f(&self) {\n\
                           let ga = self.a.lock().unwrap();\n\
                           drop(ga);\n\
                           let gb = self.b.lock().unwrap();\n\
                           drop(gb);\n\
                       }\n\
                   }\n";
        let fns = items(src);
        assert!(fns[0].held_events.is_empty(), "{:?}", fns[0].held_events);
    }

    #[test]
    fn held_calls_are_recorded() {
        let src = "struct S { a: std::sync::Mutex<u32> }\n\
                   impl S {\n\
                       fn f(&self) {\n\
                           let ga = self.a.lock().unwrap();\n\
                           self.helper();\n\
                           drop(ga);\n\
                       }\n\
                       fn helper(&self) {}\n\
                   }\n";
        let fns = items(src);
        assert!(fns[0]
            .held_events
            .iter()
            .any(|e| e.held == "a" && e.inner == Held::Call(Callee::Method("helper".into()))));
    }

    #[test]
    fn lock_name_override_renames_the_lock() {
        let src = "fn f(deques: &[std::sync::Mutex<u32>]) {\n\
                       // audit:lock(deque) -- element lock, not the list lock\n\
                       let g = deques[0].lock().unwrap();\n\
                       drop(g);\n\
                   }\n";
        let fns = items(src);
        assert_eq!(fns[0].locks, vec![LockSite { name: "deque".into(), line: 3 }]);
    }

    #[test]
    fn condvar_wait_with_foreign_lock_held_is_a_violation() {
        let src = "struct S { m: std::sync::Mutex<u32>, o: std::sync::Mutex<u32>, cv: std::sync::Condvar }\n\
                   impl S {\n\
                       fn good(&self) {\n\
                           let mut g = self.m.lock().unwrap();\n\
                           g = self.cv.wait(g).unwrap();\n\
                           drop(g);\n\
                       }\n\
                       fn bad(&self) {\n\
                           let other = self.o.lock().unwrap();\n\
                           let g = self.m.lock().unwrap();\n\
                           let _g2 = self.cv.wait(g).unwrap();\n\
                           drop(other);\n\
                       }\n\
                   }\n";
        let fns = items(src);
        let good = fns.iter().find(|f| f.qual == "S::good").unwrap();
        assert!(good.wait_violations.is_empty(), "{:?}", good.wait_violations);
        let bad = fns.iter().find(|f| f.qual == "S::bad").unwrap();
        assert!(bad.wait_violations.iter().any(|(l, _)| l == "o"), "{:?}", bad.wait_violations);
    }

    #[test]
    fn atomic_sites_require_an_ordering_ident() {
        let src = "use std::sync::atomic::{AtomicUsize, Ordering};\n\
                   fn f(a: &AtomicUsize, v: &mut Vec<u32>) -> usize {\n\
                       a.store(1, Ordering::Release);\n\
                       v.swap(0, 1);\n\
                       a.compare_exchange(1, 2, Ordering::AcqRel, Ordering::Relaxed).ok();\n\
                       a.load(Ordering::Acquire)\n\
                   }\n";
        let fns = items(src);
        let ops: Vec<(&str, &str)> =
            fns[0].atomics.iter().map(|s| (s.op.as_str(), s.orderings[0].as_str())).collect();
        assert_eq!(
            ops,
            vec![("store", "Release"), ("compare_exchange", "AcqRel"), ("load", "Acquire")],
            "Vec::swap (no Ordering) must not count"
        );
    }

    #[test]
    fn blocking_sites_cover_locks_waits_and_dispatch() {
        let src =
            "fn f(m: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>, v: &[u32]) {\n\
                       let g = m.lock().unwrap();\n\
                       drop(g);\n\
                       let _ = rx.recv();\n\
                       std::thread::park();\n\
                       v.par_iter().for_each(|_| {});\n\
                       rayon::join(|| {}, || {});\n\
                   }\n";
        let fns = items(src);
        let whats: Vec<&str> = fns[0].blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(
            whats,
            vec![
                "lock `m`",
                "channel recv()",
                "thread::park()",
                "pool dispatch `par_iter`",
                "pool dispatch `rayon::join`"
            ]
        );
        // A suppression clears the site.
        let src = "fn f(m: &std::sync::Mutex<u32>) {\n\
                       // audit:allow(blocking-in-reader) -- writer-thread only\n\
                       let g = m.lock().unwrap();\n\
                       drop(g);\n\
                   }\n";
        let fns = items(src);
        assert!(fns[0].blocking.is_empty());
    }
}
