//! Workspace call graph over the lexed token streams (stage 2 of the audit).
//!
//! The line rules A1–A5 are local: they can say "this line calls
//! `.unwrap()`" but not "this `unwrap` runs on every activation". This
//! module extracts every `fn` item in the hot-path crates
//! ([`CALL_GRAPH_CRATES`]) together with its call sites and panic/allocation
//! markers, resolves calls to workspace functions with a deliberately
//! *over-approximating* heuristic (reachability may include functions that a
//! precise analysis would exclude — never the reverse, within the heuristic's
//! known blind spots; see DESIGN.md §8), and walks reachability from the hot
//! entry points to drive:
//!
//! * **A6 `panic-path`** — `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` / `.unwrap()` / `.expect(` in any function reachable
//!   from a [`PANIC_ROOTS`] entry (deny-tier).
//! * **A7 `hot-alloc`** — `Vec::new` / `vec![` / `.collect()` / `.to_vec()`
//!   / `Box::new` / `format!` in any function reachable from a per-activation
//!   [`ALLOC_ROOTS`] entry (warn-tier, ratcheted per file against
//!   `baseline_a7.txt`; the fix is usually the `ScratchPool`).
//!
//! Resolution heuristic, in order:
//!
//! 1. `Type::name(` with a known `impl Type` in the workspace → exactly that
//!    function.
//! 2. `Type::name(` with an *unknown* capitalized type (e.g. `Vec::new`) →
//!    external; no edge. This is what keeps `Vec::new` from wiring the graph
//!    to every workspace `new`.
//! 3. `seg::name(` with a lowercase first segment (module path, e.g.
//!    `query::local_cluster`) → every workspace fn named `name`.
//! 4. `.name(` method calls and bare `name(` calls → every workspace fn
//!    named `name` (receiver types are not inferred).
//!
//! Known over-approximations (accepted — they only make the lint stricter):
//! `std::mem::take` resolves to any workspace fn named `take`; a method call
//! `.get(` would resolve to every workspace `get`. Known blind spots:
//! function pointers/closures passed as values, macro-generated calls, and
//! trait-object dispatch to impls outside [`CALL_GRAPH_CRATES`].

use std::collections::BTreeMap;

use crate::lexer::{suppressed_rules, LexedFile, Token, TokenKind};

/// Crates included in the call graph (the per-activation hot path lives
/// here; `bench`/`cli`/`data` are driver code and may allocate freely).
pub const CALL_GRAPH_CRATES: &[&str] = &["core", "decay", "graph"];

/// Hot entry points for A6 `panic-path`: everything on the activation and
/// query fast path must be panic-free.
pub const PANIC_ROOTS: &[&str] = &[
    "AncEngine::activate",
    "AncEngine::activate_traced",
    "AncEngine::activate_batch",
    "AncEngine::activate_batch_adaptive",
    "AncEngine::sigma",
    "AncEngine::approx_distance",
    "AncEngine::local_cluster",
    "AncEngine::local_cluster_power",
    "AncEngine::smallest_cluster",
    "AncEngine::cluster_all",
    "AncEngine::cluster_all_cached",
    "Pyramids::on_weight_change",
    "Pyramids::on_weight_change_into",
    "Pyramids::on_weight_change_batch",
    "Pyramids::on_weight_change_serial",
    "Pyramids::on_weight_change_serial_into",
    "DurableEngine::activate",
    "DurableEngine::activate_batch",
    "DurableEngine::activate_batch_adaptive",
];

/// Per-activation entry points for A7 `hot-alloc`: these run once per stream
/// event, so allocations here bound throughput. The pure query APIs
/// (`local_cluster` etc.) are *not* alloc roots — they return owned results
/// by design and run at query rate, not stream rate. The convenience
/// wrappers `on_weight_change`/`on_weight_change_serial` that collect into
/// fresh `Vec`s are likewise excluded: the engine's stream path only calls
/// the pooled `_into` variants.
pub const ALLOC_ROOTS: &[&str] = &[
    "AncEngine::activate",
    "AncEngine::activate_traced",
    "AncEngine::activate_batch",
    "AncEngine::activate_batch_adaptive",
    "Pyramids::on_weight_change_into",
    "Pyramids::on_weight_change_batch",
    "Pyramids::on_weight_change_serial_into",
];

/// A panic or allocation marker inside one function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Site {
    /// 1-based line of the marker.
    pub line: usize,
    /// What was matched, e.g. `".unwrap()"` or `"Vec::new"`.
    pub what: &'static str,
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `.name(` — method call, receiver type unknown.
    Method(String),
    /// `Seg::name(` — path call; `Seg` is the segment before the final `::`.
    Path(String, String),
    /// `name(` — bare call.
    Free(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Who is called.
    pub callee: Callee,
    /// 1-based line of the call.
    pub line: usize,
}

/// One `fn` item extracted from a lexed file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Crate the function lives in.
    pub crate_name: String,
    /// Repo-relative file path.
    pub file: String,
    /// `Type::name` for methods in an `impl` block, else just `name`.
    pub qual: String,
    /// Simple function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call sites in the body (non-test lines only).
    pub calls: Vec<CallSite>,
    /// Unsuppressed panic markers in the body.
    pub panic_sites: Vec<Site>,
    /// Unsuppressed allocation markers in the body.
    pub alloc_sites: Vec<Site>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "in", "loop", "return", "break", "continue", "let",
    "move", "as", "ref", "box", "dyn", "where", "use", "pub", "mod", "struct", "enum", "trait",
    "type", "const", "static", "fn", "impl", "unsafe", "extern", "crate", "super", "self", "Self",
    "async", "await", "true", "false",
];

/// Extracts every non-test `fn` item (with call sites and markers) from one
/// lexed file. `raw_lines` is the unlexed source, used to honor
/// `audit:allow(panic-path)` / `audit:allow(hot-alloc)` on or above a
/// marker's line.
pub fn extract_fns(
    crate_name: &str,
    file: &str,
    lexed: &LexedFile,
    raw_lines: &[&str],
) -> Vec<FnItem> {
    let toks = &lexed.tokens;
    let close_of = brace_partners(toks);

    // impl ranges: (body_open, body_close, type name).
    let mut impls: Vec<(usize, usize, String)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        if let Some((open, ty)) = impl_header(toks, i) {
            if let Some(&close) = close_of.get(&open) {
                impls.push((open, close, ty));
            }
        }
    }

    // fn items: header parse, body range, impl-type qualification.
    let mut items: Vec<FnItem> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::new(); // body (open, close)
                                                      // Test fns never run in production; feature-gated fns (and gated call
                                                      // statements) are compiled out of the default-feature build the audit
                                                      // targets.
    let excluded = |line: usize| {
        lexed.is_test_line(line.saturating_sub(1)) || lexed.is_gated_line(line.saturating_sub(1))
    };

    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") || excluded(t.line) {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(` — function pointer type
        }
        let Some(open) = fn_body_open(toks, i + 2) else { continue }; // no body: trait sig
        let Some(&close) = close_of.get(&open) else { continue };
        // Innermost enclosing impl wins (nested impls do not occur, but
        // smallest-range is the right tie-break anyway).
        let ty = impls
            .iter()
            .filter(|(o, c, _)| *o < i && i < *c)
            .min_by_key(|(o, c, _)| c - o)
            .map(|(_, _, ty)| ty.clone());
        let name = name_tok.text.clone();
        let qual = match ty {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        items.push(FnItem {
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            qual,
            name,
            line: t.line,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            alloc_sites: Vec::new(),
        });
        ranges.push((open, close));
    }

    // Innermost-fn ownership per token: outer ranges first, inner overwrite.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(ranges[k].1 - ranges[k].0));
    let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
    for &k in &order {
        let (open, close) = ranges[k];
        for slot in owner[open..=close].iter_mut() {
            *slot = Some(k);
        }
    }

    let allowed = |rule: &str, line: usize| -> bool {
        let idx = line.saturating_sub(1);
        let on = |i: usize| {
            raw_lines.get(i).is_some_and(|l| suppressed_rules(l).iter().any(|r| r == rule))
        };
        on(idx) || (idx > 0 && on(idx - 1))
    };

    for (i, t) in toks.iter().enumerate() {
        let Some(k) = owner[i] else { continue };
        if excluded(t.line) {
            continue;
        }
        let item = &mut items[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"));
        if next_bang {
            let what: Option<(&'static str, bool)> = match t.text.as_str() {
                "panic" => Some(("panic!", true)),
                "unreachable" => Some(("unreachable!", true)),
                "todo" => Some(("todo!", true)),
                "unimplemented" => Some(("unimplemented!", true)),
                "vec" => Some(("vec![", false)),
                "format" => Some(("format!", false)),
                _ => None,
            };
            if let Some((what, is_panic)) = what {
                let rule = if is_panic { "panic-path" } else { "hot-alloc" };
                if !allowed(rule, t.line) {
                    let site = Site { line: t.line, what };
                    if is_panic {
                        item.panic_sites.push(site);
                    } else {
                        item.alloc_sites.push(site);
                    }
                }
            }
            continue;
        }
        if !call_follows(toks, i + 1) {
            continue;
        }
        let prev = if i > 0 { Some(&toks[i - 1]) } else { None };
        if prev.is_some_and(|p| p.is_ident("fn")) {
            continue; // the definition itself
        }
        if prev.is_some_and(|p| p.is_punct(".")) {
            // Method call: marker check first, then an edge (harmless for
            // std methods — no workspace fn shares those names).
            let marker: Option<(&'static str, bool)> = match t.text.as_str() {
                "unwrap" => Some((".unwrap()", true)),
                "expect" => Some((".expect(", true)),
                "collect" => Some((".collect()", false)),
                "to_vec" => Some((".to_vec()", false)),
                _ => None,
            };
            if let Some((what, is_panic)) = marker {
                let rule = if is_panic { "panic-path" } else { "hot-alloc" };
                if !allowed(rule, t.line) {
                    let site = Site { line: t.line, what };
                    if is_panic {
                        item.panic_sites.push(site);
                    } else {
                        item.alloc_sites.push(site);
                    }
                }
            }
            item.calls.push(CallSite { callee: Callee::Method(t.text.clone()), line: t.line });
        } else if prev.is_some_and(|p| p.is_punct("::")) {
            let seg = if i >= 2 && toks[i - 2].kind == TokenKind::Ident {
                toks[i - 2].text.clone()
            } else {
                // `<T as Trait>::name(` and friends: unknown qualifier;
                // resolve by simple name (over-approximate).
                String::new()
            };
            if (seg == "Vec" || seg == "Box") && t.text == "new" && !allowed("hot-alloc", t.line) {
                let what = if seg == "Vec" { "Vec::new" } else { "Box::new" };
                item.alloc_sites.push(Site { line: t.line, what });
            }
            item.calls.push(CallSite { callee: Callee::Path(seg, t.text.clone()), line: t.line });
        } else if !KEYWORDS.contains(&t.text.as_str()) {
            item.calls.push(CallSite { callee: Callee::Free(t.text.clone()), line: t.line });
        }
    }
    items
}

/// Maps each `{` token index to its matching `}` index.
fn brace_partners(toks: &[Token]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            if let Some(open) = stack.pop() {
                map.insert(open, i);
            }
        }
    }
    map
}

/// Parses an `impl` header starting at token `at` (`impl`): returns the body
/// `{` index and the implemented type's simple name (the type after `for`
/// in trait impls).
fn impl_header(toks: &[Token], at: usize) -> Option<(usize, String)> {
    let mut i = at + 1;
    // Skip `<generics>`.
    if toks.get(i).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    let mut ty: Option<String> = None;
    let mut in_where = false;
    while let Some(t) = toks.get(i) {
        if t.is_punct("{") {
            return Some((i, ty?));
        }
        if t.is_ident("where") {
            // Bounds in the where clause must not overwrite the type.
            in_where = true;
        } else if t.is_ident("for") {
            // Trait impl: the implemented type follows; drop the trait name.
            ty = None;
        } else if !in_where && t.kind == TokenKind::Ident && !KEYWORDS.contains(&t.text.as_str()) {
            // Last path segment before generics/`{` wins (`fmt::Display` →
            // `Display`; then `for Finding` → `Finding`).
            ty = Some(t.text.clone());
        } else if t.is_punct("<") {
            // Skip the type's own generic args.
            let mut depth = 0i32;
            while let Some(t2) = toks.get(i) {
                if t2.is_punct("<") {
                    depth += 1;
                } else if t2.is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
        }
        i += 1;
    }
    None
}

/// Finds the body `{` of a `fn` whose parameter list starts at or after
/// `from`, skipping the parameter parens and any return type / where clause.
/// Returns `None` for braceless signatures (`fn f();` in traits).
fn fn_body_open(toks: &[Token], from: usize) -> Option<usize> {
    let mut i = from;
    let mut paren = 0i32;
    let mut angle = 0i32;
    while let Some(t) = toks.get(i) {
        if t.is_punct("(") {
            paren += 1;
        } else if t.is_punct(")") {
            paren -= 1;
        } else if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0); // `->` lexes as `-`, `>`
        } else if paren == 0 && t.is_punct(";") {
            return None;
        } else if paren == 0 && angle == 0 && t.is_punct("{") {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Whether the token at `i` begins an argument list: `(` directly, or a
/// turbofish `::<…>(`.
fn call_follows(toks: &[Token], i: usize) -> bool {
    match toks.get(i) {
        Some(t) if t.is_punct("(") => true,
        Some(t) if t.is_punct("::") && toks.get(i + 1).is_some_and(|n| n.is_punct("<")) => {
            let mut depth = 0i32;
            let mut j = i + 1;
            while let Some(t2) = toks.get(j) {
                if t2.is_punct("<") {
                    depth += 1;
                } else if t2.is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        return toks.get(j + 1).is_some_and(|n| n.is_punct("("));
                    }
                }
                j += 1;
            }
            false
        }
        _ => false,
    }
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All extracted functions, in deterministic (crate, file, position)
    /// order.
    pub fns: Vec<FnItem>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qual: BTreeMap<String, Vec<usize>>,
}

/// Reachability result: for each fn, whether it is reachable and through
/// which caller (BFS parent), for call-chain reporting.
#[derive(Debug)]
pub struct Reachability {
    reached: Vec<bool>,
    parent: Vec<Option<usize>>,
    root_of: Vec<Option<usize>>,
}

impl CallGraph {
    /// Builds the graph from extracted items (order is preserved and must be
    /// deterministic — the scanner feeds files in sorted order).
    pub fn build(fns: Vec<FnItem>) -> Self {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            by_qual.entry(f.qual.clone()).or_default().push(i);
        }
        Self { fns, by_name, by_qual }
    }

    /// Resolves one call site to workspace fn indices (possibly empty).
    fn resolve(&self, callee: &Callee) -> &[usize] {
        static EMPTY: [usize; 0] = [];
        match callee {
            Callee::Method(n) | Callee::Free(n) => {
                self.by_name.get(n).map_or(&EMPTY[..], |v| &v[..])
            }
            Callee::Path(seg, n) => {
                let qual = format!("{seg}::{n}");
                if let Some(v) = self.by_qual.get(&qual) {
                    return &v[..];
                }
                let unknown_type = seg.chars().next().is_some_and(|c| c.is_uppercase());
                if unknown_type {
                    // `Vec::new`, `ChaCha8Rng::seed_from_u64`, … — external.
                    &EMPTY[..]
                } else {
                    // Module path (`query::local_cluster`) or unknown
                    // qualifier — match by simple name.
                    self.by_name.get(n).map_or(&EMPTY[..], |v| &v[..])
                }
            }
        }
    }

    /// BFS from every fn whose `qual` is in `roots`, in root order.
    pub fn reachable_from(&self, roots: &[&str]) -> Reachability {
        let n = self.fns.len();
        let mut r =
            Reachability { reached: vec![false; n], parent: vec![None; n], root_of: vec![None; n] };
        let mut queue = std::collections::VecDeque::new();
        for root in roots {
            if let Some(starts) = self.by_qual.get(*root) {
                for &s in starts {
                    if !r.reached[s] {
                        r.reached[s] = true;
                        r.root_of[s] = Some(s);
                        queue.push_back(s);
                    }
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            for call in &self.fns[u].calls {
                for &v in self.resolve(&call.callee) {
                    if !r.reached[v] {
                        r.reached[v] = true;
                        r.parent[v] = Some(u);
                        r.root_of[v] = r.root_of[u];
                        queue.push_back(v);
                    }
                }
            }
        }
        r
    }
}

impl Reachability {
    /// Whether fn `i` is reachable from any root.
    pub fn is_reached(&self, i: usize) -> bool {
        self.reached[i]
    }

    /// The call chain `root → … → fns[i]` as quals (length-capped).
    pub fn chain(&self, graph: &CallGraph, i: usize) -> String {
        let mut quals = vec![graph.fns[i].qual.clone()];
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            quals.push(graph.fns[p].qual.clone());
            cur = p;
            if quals.len() > 8 {
                quals.push("…".into());
                break;
            }
        }
        quals.reverse();
        quals.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        let lexed = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        extract_fns("core", "crates/core/src/x.rs", &lexed, &raw)
    }

    #[test]
    fn extracts_impl_qualified_fns() {
        let src = "struct Engine;\n\
                   impl Engine {\n\
                       pub fn activate(&mut self) { self.step(); }\n\
                       fn step(&mut self) {}\n\
                   }\n\
                   fn free_helper() {}\n";
        let fns = items(src);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Engine::activate", "Engine::step", "free_helper"]);
        assert_eq!(fns[0].calls, vec![CallSite { callee: Callee::Method("step".into()), line: 3 }]);
    }

    #[test]
    fn trait_impls_qualify_by_the_implementing_type() {
        let src = "impl fmt::Display for Finding {\n\
                       fn fmt(&self) { helper(); }\n\
                   }\n\
                   impl<'a> Ctx<'a> {\n\
                       fn sigma(&self) {}\n\
                   }\n";
        let fns = items(src);
        let quals: Vec<&str> = fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Finding::fmt", "Ctx::sigma"]);
    }

    #[test]
    fn markers_are_collected_and_suppressible() {
        let src = "fn hot() {\n\
                       let v: Vec<u32> = Vec::new();\n\
                       let w = v.to_vec();\n\
                       w.first().unwrap();\n\
                       // audit:allow(panic-path) -- proven nonempty\n\
                       w.last().unwrap();\n\
                   }\n";
        let fns = items(src);
        assert_eq!(fns[0].panic_sites, vec![Site { line: 4, what: ".unwrap()" }]);
        assert_eq!(
            fns[0].alloc_sites,
            vec![Site { line: 2, what: "Vec::new" }, Site { line: 3, what: ".to_vec()" }]
        );
    }

    #[test]
    fn reachability_stops_at_unknown_external_types() {
        let src = "struct Engine;\n\
                   impl Engine {\n\
                       pub fn activate(&mut self) { helper(); }\n\
                   }\n\
                   fn helper() { let _v: Vec<u32> = Vec::new(); }\n\
                   fn unrelated() { panic!(\"never on the hot path\"); }\n";
        let g = CallGraph::build(items(src));
        let r = g.reachable_from(&["Engine::activate"]);
        let reached: Vec<&str> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| r.is_reached(*i))
            .map(|(_, f)| f.qual.as_str())
            .collect();
        // `Vec::new` must not create an edge to `unrelated` (or anything).
        assert_eq!(reached, vec!["Engine::activate", "helper"]);
        let hi = g.fns.iter().position(|f| f.qual == "helper").unwrap();
        assert_eq!(r.chain(&g, hi), "Engine::activate → helper");
    }

    #[test]
    fn turbofish_and_module_path_calls_resolve() {
        let src = "fn a() { helper::<u32>(); }\n\
                   fn helper() {}\n\
                   fn b() { sub::helper(); }\n";
        let g = CallGraph::build(items(src));
        let ra = g.reachable_from(&["a"]);
        let rb = g.reachable_from(&["b"]);
        let hi = g.fns.iter().position(|f| f.qual == "helper").unwrap();
        assert!(ra.is_reached(hi), "turbofish call must resolve");
        assert!(rb.is_reached(hi), "lowercase module path must fall back to name match");
    }

    #[test]
    fn test_module_fns_are_excluded() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { live(); }\n\
                   }\n";
        let fns = items(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].qual, "live");
    }
}
