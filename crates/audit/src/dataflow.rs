//! Interprocedural taint/dataflow analysis over the workspace call graph
//! (rules A12–A14).
//!
//! The line rules (A1/A3) ban individual nondeterminism *tokens*; this
//! module tracks *flow*: per-function def-use chains over let-bindings,
//! assignments, call arguments and return values, with taint propagated
//! across the call graph to a fixpoint — the same worklist shape as the
//! lock-set analysis in [`crate::concurrency`].
//!
//! ## Model (flow-insensitive, statement-granular)
//!
//! Each function body is split into statements at `;`, `{` and `}` tokens.
//! A statement flushed at `}` (or at the end of the body) is treated as a
//! block-tail expression and may feed the function's return value. Within
//! a statement:
//!
//! * `let` targets and assignment left-hand sides become *definitions*;
//!   every lowercase identifier in the statement is an *input* to them
//!   (struct-literal field shorthand in return position is captured the
//!   same way).
//! * every call in the statement is recorded with the statement's idents
//!   as its argument set (nested calls share the statement, which is
//!   exactly the over-approximation wanted for `sink(f(tainted))`).
//!
//! Deliberate over-approximations (soundness notes in DESIGN.md §13):
//! match-arm tails count as return-position, all parameters of a callee
//! are tainted when any argument is, and field sensitivity is not modeled
//! (`self`-mediated flows are out of scope — `self` is excluded from both
//! definitions and arguments so a single tainted field does not taint
//! every method of the type). Capitalized identifiers (types, variants,
//! constants) never carry taint; nondeterministic *constructors* are
//! matched by name instead.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{call_follows, callee_at, CallGraph, Callee, FnItem, KEYWORDS};
use crate::lexer::{matching, suppressed_rules, LexedFile, Token, TokenKind};
use crate::Finding;

/// One call inside a statement, with the statement's identifiers as its
/// (over-approximated) argument set.
#[derive(Clone, Debug)]
pub struct FlowCall {
    /// Who is called.
    pub callee: Callee,
    /// Lowercase identifiers of the enclosing statement.
    pub args: BTreeSet<String>,
    /// 1-based line of the call.
    pub line: usize,
    /// `audit:allow(nondet-taint)` on or above the call line (suppresses
    /// sink findings at this site).
    pub allowed: bool,
}

/// One nondeterminism source site (A12 raw material).
#[derive(Clone, Debug)]
pub struct FlowSource {
    /// What was matched, e.g. ``"wall clock `Instant::now()`"``.
    pub what: String,
    /// 1-based line of the source.
    pub line: usize,
    /// Locals the source's statement binds or assigns.
    pub bound: BTreeSet<String>,
    /// Whether the statement is in (potential) return position.
    pub to_ret: bool,
    /// Indices into [`FnFlow::calls`] of calls in the same statement.
    pub calls: Vec<usize>,
}

/// Per-function dataflow facts extracted alongside the call graph.
#[derive(Clone, Debug, Default)]
pub struct FnFlow {
    /// Parameter identifiers (excluding `self`).
    pub params: BTreeSet<String>,
    /// Def-use chains: defined local → identifiers its definition reads.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// Defined local → indices into `calls` whose results feed it.
    pub bind_calls: BTreeMap<String, Vec<usize>>,
    /// All calls in body order.
    pub calls: Vec<FlowCall>,
    /// Identifiers feeding (potential) return position.
    pub ret_idents: BTreeSet<String>,
    /// Call indices feeding (potential) return position.
    pub ret_calls: Vec<usize>,
    /// Nondeterminism sources (A12).
    pub sources: Vec<FlowSource>,
    /// Unsuppressed narrowing `as`-casts: `(line, description)` (A13).
    pub narrow_casts: Vec<(usize, String)>,
    /// Unsuppressed swallowed fallible results: `(line, description)` (A14).
    pub swallows: Vec<(usize, String)>,
    /// `audit:allow(nondet-taint)` on the fn's declaration line (suppresses
    /// tainted-return findings for query sinks).
    pub allow_ret: bool,
}

/// Cast targets A13 flags on serialization paths. The lexer does not know
/// source types, so any cast *to* a sub-64-bit numeric type counts as
/// potentially narrowing; provably-widening or masked casts carry an
/// `audit:allow(lossy-persist)` with the width argument.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// Hash-collection iteration methods whose order is randomly seeded.
const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// Simple names of persistence/accumulation sinks for A12: the snapshot and
/// WAL writer surface in `persist::{binary,wal}` plus the codec primitives
/// everything serialized funnels through (CRC input order included).
const A12_SINK_FNS: &[&str] = &[
    "save_binary",
    "write_snapshot_atomic",
    "append_payload",
    "frame_payload",
    "encode",
    "encode_header",
    "encode_config",
    "encode_clock",
    "encode_pyramids",
    "encode_graph",
    "put_float_array",
    "crc32",
    "put_u8",
    "put_u16",
    "put_u32",
    "put_u64",
    "put_uvarint",
    "put_ivarint",
    "put_f32",
    "put_f64",
];

/// Quals whose *return value* is an A12 sink: the paper-facing query
/// results, which the serial≡batch and thread-invariance suites pin
/// byte-identical.
const A12_RET_SINKS: &[&str] = &[
    "AncEngine::cluster_all",
    "AncEngine::cluster_all_cached",
    "AncEngine::same_cluster",
    "Pyramids::same_cluster",
];

/// Roots of the serialization paths A13 audits (write side only; decode
/// paths reconstruct and are covered by round-trip tests instead).
const A13_ROOTS: &[&str] = &[
    "AncEngine::save_binary",
    "WalRecord::encode",
    "DurableEngine::create",
    "DurableEngine::compact",
    "DurableEngine::append_payload",
    "write_snapshot_atomic",
];

/// Roots of the fallible IO/recovery paths A14 audits: the whole
/// `DurableEngine` write/recovery surface and the WAL reader.
const A14_ROOTS: &[&str] = &[
    "DurableEngine::create",
    "DurableEngine::open",
    "DurableEngine::activate",
    "DurableEngine::activate_batch",
    "DurableEngine::activate_batch_adaptive",
    "DurableEngine::reinforce_edges",
    "DurableEngine::force_rescale",
    "DurableEngine::compact",
    "WalRecord::apply",
    "WalReader::new",
    "WalReader::next",
    "write_snapshot_atomic",
    "reset_wal",
];

/// Whether `name` can carry dataflow: lowercase/underscore-initial idents
/// only (locals and fields); types, variants and constants are excluded so
/// shared names like `Some`/`Ok` cannot bridge unrelated statements.
fn flow_ident(t: &Token) -> Option<&str> {
    if t.kind != TokenKind::Ident {
        return None;
    }
    let first = t.text.chars().next()?;
    if !(first.is_lowercase() || first == '_') {
        return None;
    }
    if t.text == "_" || t.text == "self" || KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    Some(&t.text)
}

/// Classifies a call site as a nondeterminism source (A12), returning a
/// description. `p` is the token index of the callee name.
fn classify_call_source(
    callee: &Callee,
    toks: &[Token],
    p: usize,
    hash_idents: &BTreeSet<String>,
) -> Option<String> {
    let (seg, name) = match callee {
        Callee::Free(n) => (None, n.as_str()),
        Callee::Method(n) => (None, n.as_str()),
        Callee::Path(s, n) => (Some(s.as_str()), n.as_str()),
    };
    match name {
        "thread_rng" => return Some("unseeded RNG `thread_rng()`".into()),
        "from_entropy" => return Some("OS-entropy RNG `from_entropy()`".into()),
        "available_parallelism" => {
            return Some("env-dependent thread count `available_parallelism()`".into());
        }
        "now" if matches!(seg, Some("Instant" | "SystemTime" | "std")) => {
            return Some(format!("wall clock `{}::now()`", seg.unwrap_or("std")));
        }
        "current" if matches!(seg, Some("thread" | "std")) => {
            return Some("thread identity `thread::current()`".into());
        }
        "var" | "var_os" if matches!(seg, Some("env" | "std")) => {
            return Some(format!("environment read `env::{name}()`"));
        }
        _ => {}
    }
    if seg == Some("RandomState") {
        return Some("randomly seeded hasher `RandomState`".into());
    }
    if matches!(callee, Callee::Method(_)) && HASH_ITER_METHODS.contains(&name) && p >= 2 {
        let recv = &toks[p - 2];
        if recv.kind == TokenKind::Ident && hash_idents.contains(&recv.text) {
            return Some(format!("hash-order iteration `{}.{}()`", recv.text, name));
        }
    }
    None
}

/// The per-fn dataflow walk: parses the parameter list at the `fn` token
/// (`fn_tok`), splits the body `(open, close)` of fn `k` into statements,
/// and records def-use chains, calls, sources, narrowing casts and
/// swallowed results into `item.flow`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_flow(
    toks: &[Token],
    fn_tok: usize,
    open: usize,
    close: usize,
    k: usize,
    owner: &[Option<usize>],
    lexed: &LexedFile,
    raw_lines: &[&str],
    self_ty: Option<&str>,
    hash_idents: &BTreeSet<String>,
    item: &mut FnItem,
) {
    let allowed = |rule: &str, line: usize| -> bool {
        let idx = line.saturating_sub(1);
        let on = |i: usize| {
            raw_lines.get(i).is_some_and(|l| suppressed_rules(l).iter().any(|r| r == rule))
        };
        on(idx) || (idx > 0 && on(idx - 1))
    };
    let excluded = |line: usize| {
        lexed.is_test_line(line.saturating_sub(1)) || lexed.is_gated_line(line.saturating_sub(1))
    };

    let mut flow = FnFlow { allow_ret: allowed("nondet-taint", item.line), ..FnFlow::default() };

    // Parameters: idents at paren depth 1 followed by a single `:` (plus
    // nothing for `self`, which is excluded from flow). Pattern parameters
    // (`(a, b): (u32, u32)`) sit at depth 2 and are not tracked.
    let mut i = fn_tok + 2;
    let mut angle = 0i32;
    while i < open {
        let t = &toks[i];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0);
        } else if t.is_punct("(") && angle == 0 {
            break;
        }
        i += 1;
    }
    if i < open {
        if let Some(close_p) = matching(toks, i, "(", ")") {
            let mut depth = 0i32;
            for j in i..=close_p {
                let t = &toks[j];
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                } else if depth == 1 && toks.get(j + 1).is_some_and(|n| n.is_punct(":")) {
                    if let Some(name) = flow_ident(t) {
                        flow.params.insert(name.to_string());
                    }
                }
            }
        }
    }

    // Statement walk.
    let mut stmt: Vec<usize> = Vec::new();
    let mut pos = open + 1;
    while pos < close {
        if owner[pos] != Some(k) {
            pos += 1;
            continue;
        }
        let t = &toks[pos];
        if excluded(t.line) {
            pos += 1;
            continue;
        }
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            let tail = t.is_punct("}");
            flush_stmt(&mut flow, toks, &stmt, tail, self_ty, hash_idents, &allowed);
            stmt.clear();
        } else {
            stmt.push(pos);
        }
        pos += 1;
    }
    flush_stmt(&mut flow, toks, &stmt, true, self_ty, hash_idents, &allowed);

    item.flow = flow;
}

/// Whether the punct token at raw index `p` is a plain or compound
/// assignment operator (not `==`, `<=`, `>=`, `!=`, `=>`, or a closure
/// `|…|` boundary).
fn is_assign_eq(toks: &[Token], p: usize) -> bool {
    if !toks[p].is_punct("=") {
        return false;
    }
    if toks.get(p + 1).is_some_and(|n| n.is_punct("=") || n.is_punct(">")) {
        return false;
    }
    if p > 0 {
        let prev = &toks[p - 1];
        for op in ["=", "<", ">", "!"] {
            if prev.is_punct(op) {
                return false;
            }
        }
    }
    true
}

/// Processes one statement's tokens (`stmt` holds raw token indices).
fn flush_stmt(
    flow: &mut FnFlow,
    toks: &[Token],
    stmt: &[usize],
    tail: bool,
    self_ty: Option<&str>,
    hash_idents: &BTreeSet<String>,
    allowed: &dyn Fn(&str, usize) -> bool,
) {
    if stmt.is_empty() {
        return;
    }
    let first = &toks[stmt[0]];
    let line = first.line;
    // Item-like statements carry no value flow (`as` in `use x as y`
    // must not look like a cast).
    for kw in ["use", "mod", "struct", "enum", "trait", "type", "impl", "where"] {
        if first.is_ident(kw) {
            return;
        }
    }
    let is_let = first.is_ident("let");

    // Locate the assignment operator at bracket depth 0 within the
    // statement, if any.
    let mut depth = 0i32;
    let mut eq_at: Option<usize> = None; // position in `stmt`
    for (si, &p) in stmt.iter().enumerate() {
        let t = &toks[p];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && is_assign_eq(toks, p) {
            eq_at = Some(si);
            break;
        }
    }

    // Definition targets: idents left of `=` (for `let`, stopping at a
    // depth-0 `:` type annotation).
    let mut targets: BTreeSet<String> = BTreeSet::new();
    if let Some(eq) = eq_at {
        let from = usize::from(is_let);
        let mut depth = 0i32;
        for &p in &stmt[from..eq] {
            let t = &toks[p];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if is_let && depth == 0 && t.is_punct(":") {
                break; // type annotation — not a binding
            } else if let Some(name) = flow_ident(t) {
                if name != "mut" {
                    targets.insert(name.to_string());
                }
            }
        }
    }

    // Inputs: every flow-relevant ident in the statement (targets
    // included — a self-edge is harmless, and compound assigns / indexed
    // writes genuinely read their left-hand side).
    let mut idents: BTreeSet<String> = BTreeSet::new();
    let mut has_return = false;
    for &p in stmt {
        let t = &toks[p];
        if t.is_ident("return") {
            has_return = true;
        }
        if let Some(name) = flow_ident(t) {
            idents.insert(name.to_string());
        }
    }
    let to_ret = has_return || (tail && targets.is_empty());

    // Calls (with statement-level argument sets) and call-based sources.
    let mut stmt_calls: Vec<usize> = Vec::new();
    let mut has_call = false;
    let mut sources: Vec<(String, usize)> = Vec::new();
    for &p in stmt {
        let t = &toks[p];
        if t.kind != TokenKind::Ident || !call_follows(toks, p + 1) {
            continue;
        }
        let Some(callee) = callee_at(toks, p, self_ty) else { continue };
        has_call = true;
        if let Some(what) = classify_call_source(&callee, toks, p, hash_idents) {
            if !allowed("nondet-taint", t.line) {
                sources.push((what, t.line));
            }
        }
        stmt_calls.push(flow.calls.len());
        flow.calls.push(FlowCall {
            callee,
            args: idents.clone(),
            line: t.line,
            allowed: allowed("nondet-taint", t.line),
        });
    }
    // Token-based sources: OS-RNG / hasher types in any position.
    for &p in stmt {
        let t = &toks[p];
        let what = if t.is_ident("OsRng") {
            Some("OS RNG `OsRng`")
        } else if t.is_ident("RandomState") && !call_follows(toks, p + 2) {
            // (`RandomState::new()` is already a call-based source.)
            Some("randomly seeded hasher `RandomState`")
        } else {
            None
        };
        if let Some(what) = what {
            if !allowed("nondet-taint", t.line) {
                sources.push((what.into(), t.line));
            }
        }
    }
    for (what, src_line) in sources {
        flow.sources.push(FlowSource {
            what,
            line: src_line,
            bound: targets.clone(),
            to_ret,
            calls: stmt_calls.clone(),
        });
    }

    // Def-use wiring.
    for tgt in &targets {
        flow.deps.entry(tgt.clone()).or_default().extend(idents.iter().cloned());
        if !stmt_calls.is_empty() {
            flow.bind_calls.entry(tgt.clone()).or_default().extend(stmt_calls.iter().copied());
        }
    }
    if to_ret {
        flow.ret_idents.extend(idents.iter().cloned());
        flow.ret_calls.extend(stmt_calls.iter().copied());
    }

    // A13: narrowing `as`-casts.
    for (si, &p) in stmt.iter().enumerate() {
        let t = &toks[p];
        if !t.is_ident("as") || si + 1 >= stmt.len() {
            continue;
        }
        let ty = &toks[stmt[si + 1]];
        if ty.kind == TokenKind::Ident
            && NARROW_TARGETS.contains(&ty.text.as_str())
            && !allowed("lossy-persist", t.line)
        {
            flow.narrow_casts.push((t.line, format!("`as {}` cast", ty.text)));
        }
    }

    // A14: swallowed fallible results.
    if is_let
        && stmt.len() >= 2
        && toks[stmt[1]].is_ident("_")
        && has_call
        && !allowed("swallowed-error", line)
    {
        flow.swallows.push((line, "`let _ = …` discards a fallible result".into()));
    }
    if !tail && !to_ret && targets.is_empty() && stmt.len() >= 4 {
        let tail4 = &stmt[stmt.len() - 4..];
        if toks[tail4[0]].is_punct(".")
            && toks[tail4[1]].is_ident("ok")
            && toks[tail4[2]].is_punct("(")
            && toks[tail4[3]].is_punct(")")
            && !allowed("swallowed-error", line)
        {
            flow.swallows
                .push((toks[tail4[1]].line, "statement-terminal `.ok()` drops the error".into()));
        }
    }
}

// --- interprocedural taint (A12) -------------------------------------------

/// A taint value: what nondeterminism source it came from and the function
/// chain it traveled.
#[derive(Clone, Debug)]
struct Taint {
    what: String,
    file: String,
    line: usize,
    chain: Vec<String>,
}

impl Taint {
    fn extend(&self, qual: &str) -> Taint {
        let mut t = self.clone();
        if t.chain.last().map(String::as_str) != Some(qual) {
            if t.chain.len() >= 8 {
                if t.chain.last().map(String::as_str) != Some("…") {
                    t.chain.push("…".into());
                }
            } else {
                t.chain.push(qual.to_string());
            }
        }
        t
    }

    fn chain_str(&self) -> String {
        self.chain.join(" → ")
    }
}

fn source_taint(f: &FnItem, s: &FlowSource) -> Taint {
    Taint { what: s.what.clone(), file: f.file.clone(), line: s.line, chain: vec![f.qual.clone()] }
}

/// Local taint closure for fn `i`: tainted locals given the current global
/// return/parameter taint state.
fn local_taints(
    graph: &CallGraph,
    i: usize,
    ret_taint: &[Option<Taint>],
    param_taint: &[Option<Taint>],
) -> BTreeMap<String, Taint> {
    let f = &graph.fns[i];
    let mut t: BTreeMap<String, Taint> = BTreeMap::new();
    if let Some(pt) = &param_taint[i] {
        for p in &f.flow.params {
            t.entry(p.clone()).or_insert_with(|| pt.clone());
        }
    }
    for s in &f.flow.sources {
        for b in &s.bound {
            t.entry(b.clone()).or_insert_with(|| source_taint(f, s));
        }
    }
    for (target, calls) in &f.flow.bind_calls {
        if t.contains_key(target) {
            continue;
        }
        'calls: for &ci in calls {
            for &j in graph.resolve(&f.flow.calls[ci].callee) {
                if let Some(rt) = &ret_taint[j] {
                    t.insert(target.clone(), rt.extend(&f.qual));
                    break 'calls;
                }
            }
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for (target, inputs) in &f.flow.deps {
            if t.contains_key(target) {
                continue;
            }
            if let Some(src) = inputs.iter().find_map(|inp| t.get(inp)).cloned() {
                t.insert(target.clone(), src);
                changed = true;
            }
        }
    }
    t
}

/// The taint a call's arguments carry, if any: a tainted local in the
/// argument set, or a source in the same statement.
fn call_arg_taint(
    f: &FnItem,
    ci: usize,
    call: &FlowCall,
    locals: &BTreeMap<String, Taint>,
) -> Option<Taint> {
    if let Some(t) = call.args.iter().find_map(|a| locals.get(a)) {
        return Some(t.clone());
    }
    f.flow.sources.iter().find(|s| s.calls.contains(&ci)).map(|s| source_taint(f, s))
}

/// Runs A12 nondet-taint to a fixpoint and reports sink reaches.
fn nondet_taint(graph: &CallGraph) -> Vec<Finding> {
    let n = graph.fns.len();
    let mut ret_taint: Vec<Option<Taint>> = vec![None; n];
    let mut param_taint: Vec<Option<Taint>> = vec![None; n];
    // Monotone fixpoint: each slot moves None → Some at most once, first
    // writer wins, functions visited in deterministic index order.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let locals = local_taints(graph, i, &ret_taint, &param_taint);
            let f = &graph.fns[i];
            if ret_taint[i].is_none() {
                let mut new_ret =
                    f.flow.sources.iter().find(|s| s.to_ret).map(|s| source_taint(f, s)).or_else(
                        || f.flow.ret_idents.iter().find_map(|id| locals.get(id)).cloned(),
                    );
                if new_ret.is_none() {
                    'ret: for &ci in &f.flow.ret_calls {
                        for &j in graph.resolve(&f.flow.calls[ci].callee) {
                            if let Some(rt) = &ret_taint[j] {
                                new_ret = Some(rt.extend(&f.qual));
                                break 'ret;
                            }
                        }
                    }
                }
                if new_ret.is_some() {
                    ret_taint[i] = new_ret;
                    changed = true;
                }
            }
            for (ci, call) in f.flow.calls.iter().enumerate() {
                let Some(tv) = call_arg_taint(f, ci, call, &locals) else { continue };
                for &j in graph.resolve(&call.callee) {
                    if param_taint[j].is_none() {
                        param_taint[j] = Some(tv.extend(&graph.fns[j].qual));
                        changed = true;
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        let locals = local_taints(graph, i, &ret_taint, &param_taint);
        for (ci, call) in f.flow.calls.iter().enumerate() {
            let sink = match &call.callee {
                Callee::Method(n) | Callee::Free(n) | Callee::Path(_, n) => n.as_str(),
            };
            if !A12_SINK_FNS.contains(&sink) || call.allowed {
                continue;
            }
            if let Some(t) = call_arg_taint(f, ci, call, &locals) {
                let t = t.extend(&f.qual);
                findings.push(Finding {
                    rule: "nondet-taint",
                    file: f.file.clone(),
                    line: call.line,
                    message: format!(
                        "nondeterministic value — {} ({}:{}) — reaches persistence sink \
                         `{}` via {}; derive it from logical state or add \
                         `// audit:allow(nondet-taint) -- <reason>`",
                        t.what,
                        t.file,
                        t.line,
                        sink,
                        t.chain_str()
                    ),
                });
            }
        }
        if A12_RET_SINKS.contains(&f.qual.as_str()) && !f.flow.allow_ret {
            if let Some(rt) = &ret_taint[i] {
                findings.push(Finding {
                    rule: "nondet-taint",
                    file: f.file.clone(),
                    line: f.line,
                    message: format!(
                        "query result of `{}` is tainted by {} ({}:{}; flow {}); query \
                         results must be a pure function of the logical update stream",
                        f.qual,
                        rt.what,
                        rt.file,
                        rt.line,
                        rt.chain_str()
                    ),
                });
            }
        }
    }
    findings
}

// --- reachability rules (A13, A14) -----------------------------------------

fn lossy_persist(graph: &CallGraph) -> Vec<Finding> {
    let reach = graph.reachable_from(A13_ROOTS);
    let mut findings = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !reach.is_reached(i) {
            continue;
        }
        for (line, what) in &f.flow.narrow_casts {
            findings.push(Finding {
                rule: "lossy-persist",
                file: f.file.clone(),
                line: *line,
                message: format!(
                    "{what} in `{}` can silently narrow a value on the serialization path \
                     ({}); use a checked conversion (try_from / u8::from) or justify the \
                     width with `// audit:allow(lossy-persist) -- <reason>`",
                    f.qual,
                    reach.chain(graph, i)
                ),
            });
        }
    }
    findings
}

fn swallowed_error(graph: &CallGraph) -> Vec<Finding> {
    let reach = graph.reachable_from(A14_ROOTS);
    let mut findings = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if !reach.is_reached(i) {
            continue;
        }
        for (line, what) in &f.flow.swallows {
            findings.push(Finding {
                rule: "swallowed-error",
                file: f.file.clone(),
                line: *line,
                message: format!(
                    "{what} in `{}` on a fallible IO/recovery path ({}); handle or \
                     propagate the error, or add \
                     `// audit:allow(swallowed-error) -- <reason>`",
                    f.qual,
                    reach.chain(graph, i)
                ),
            });
        }
    }
    findings
}

/// Runs the dataflow rules (A12 nondet-taint, A13 lossy-persist, A14
/// swallowed-error) over the hot-path call graph.
pub fn analyze(graph: &CallGraph) -> Vec<Finding> {
    let mut findings = nondet_taint(graph);
    findings.extend(lossy_persist(graph));
    findings.extend(swallowed_error(graph));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::extract_fns;
    use crate::lexer::lex;

    fn graph_of(src: &str) -> CallGraph {
        let lexed = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        CallGraph::build(extract_fns("core", "crates/core/src/x.rs", &lexed, &raw))
    }

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn local_source_to_sink_is_found() {
        let g = graph_of(
            "struct AncEngine;\n\
             impl AncEngine {\n\
                 pub fn save_binary(&self, n: usize) {}\n\
                 pub fn ingest(&mut self) {\n\
                     let n = std::thread::available_parallelism();\n\
                     self.save_binary(n);\n\
                 }\n\
             }\n",
        );
        let f = analyze(&g);
        assert_eq!(rules(&f), vec!["nondet-taint"], "{f:?}");
        assert!(f[0].message.contains("available_parallelism"), "{}", f[0].message);
        assert!(f[0].message.contains("save_binary"), "{}", f[0].message);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn taint_crosses_function_returns_with_chain() {
        let g = graph_of(
            "struct AncEngine;\n\
             impl AncEngine {\n\
                 fn probe(&self) -> usize {\n\
                     let n = std::thread::available_parallelism();\n\
                     n\n\
                 }\n\
                 pub fn ingest(&mut self) {\n\
                     let threads = self.probe();\n\
                     crc32(threads);\n\
                 }\n\
             }\n\
             fn crc32(x: usize) {}\n",
        );
        let f = analyze(&g);
        assert_eq!(rules(&f), vec!["nondet-taint"], "{f:?}");
        assert!(f[0].message.contains("AncEngine::probe → AncEngine::ingest"), "{}", f[0].message);
    }

    #[test]
    fn taint_crosses_call_arguments() {
        let g = graph_of(
            "fn write_snapshot_atomic(buf: usize) {}\n\
             fn stage(x: usize) {\n\
                 let y = x;\n\
                 write_snapshot_atomic(y);\n\
             }\n\
             struct AncEngine;\n\
             impl AncEngine {\n\
                 pub fn run(&self) {\n\
                     let t = thread_rng();\n\
                     stage(t);\n\
                 }\n\
             }\n",
        );
        let f = analyze(&g);
        assert_eq!(rules(&f), vec!["nondet-taint"], "{f:?}");
        assert!(f[0].message.contains("thread_rng"), "{}", f[0].message);
        assert!(f[0].message.contains("stage"), "{}", f[0].message);
    }

    #[test]
    fn tainted_query_return_is_found_and_allow_suppresses() {
        let src_of = |allow: &str| {
            format!(
                "struct AncEngine;\n\
                 impl AncEngine {{\n\
                     {allow}pub fn same_cluster(&self) -> bool {{\n\
                         let h = std::time::Instant::now();\n\
                         h\n\
                     }}\n\
                 }}\n"
            )
        };
        let f = analyze(&graph_of(&src_of("")));
        assert_eq!(rules(&f), vec!["nondet-taint"], "{f:?}");
        assert!(f[0].message.contains("same_cluster"), "{}", f[0].message);
        let f = analyze(&graph_of(&src_of("// audit:allow(nondet-taint) -- test decoy\n")));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hash_iteration_is_a_source() {
        let g = graph_of(
            "use std::collections::HashMap;\n\
             struct AncEngine;\n\
             impl AncEngine {\n\
                 pub fn dump(&self, m: &HashMap<u32, u32>) {\n\
                     let order = m.keys();\n\
                     crc32(order);\n\
                 }\n\
             }\n\
             fn crc32(x: usize) {}\n",
        );
        let f = analyze(&g);
        assert_eq!(rules(&f), vec!["nondet-taint"], "{f:?}");
        assert!(f[0].message.contains("hash-order iteration `m.keys()`"), "{}", f[0].message);
    }

    #[test]
    fn untainted_sink_calls_are_clean() {
        let g = graph_of(
            "struct AncEngine;\n\
             impl AncEngine {\n\
                 pub fn save_binary(&self, n: usize) {}\n\
                 pub fn ingest(&mut self, edges: usize) {\n\
                     let n = edges + 1;\n\
                     self.save_binary(n);\n\
                 }\n\
             }\n",
        );
        assert!(analyze(&g).is_empty());
    }

    #[test]
    fn narrow_cast_on_serialization_path_is_found() {
        let g = graph_of(
            "struct AncEngine;\n\
             impl AncEngine {\n\
                 pub fn save_binary(&self, out: &mut Vec<u8>) {\n\
                     self.encode_len(out, 70000);\n\
                 }\n\
                 fn encode_len(&self, out: &mut Vec<u8>, n: usize) {\n\
                     out.push(n as u8);\n\
                 }\n\
             }\n",
        );
        let f = analyze(&g);
        assert_eq!(rules(&f), vec!["lossy-persist"], "{f:?}");
        assert!(f[0].message.contains("`as u8` cast"), "{}", f[0].message);
        assert!(f[0].message.contains("AncEngine::save_binary → AncEngine::encode_len"));
        assert_eq!(f[0].line, 7);
    }

    #[test]
    fn narrow_cast_off_serialization_path_is_clean() {
        let g = graph_of(
            "struct Other;\n\
             impl Other {\n\
                 fn stats(&self, n: usize) -> u8 {\n\
                     n as u8\n\
                 }\n\
             }\n",
        );
        assert!(analyze(&g).is_empty());
    }

    #[test]
    fn allowed_narrow_cast_is_clean() {
        let g = graph_of(
            "struct AncEngine;\n\
             impl AncEngine {\n\
                 pub fn save_binary(&self, out: &mut Vec<u8>, n: usize) {\n\
                     // audit:allow(lossy-persist) -- masked to 7 bits\n\
                     out.push((n & 0x7F) as u8);\n\
                 }\n\
             }\n",
        );
        assert!(analyze(&g).is_empty());
    }

    #[test]
    fn swallowed_results_on_recovery_paths_are_found() {
        let g = graph_of(
            "struct DurableEngine;\n\
             impl DurableEngine {\n\
                 pub fn open(&mut self) {\n\
                     self.replay();\n\
                 }\n\
                 fn replay(&mut self) {\n\
                     let _ = self.step();\n\
                     self.step().ok();\n\
                 }\n\
                 fn step(&mut self) -> Result<u32, u32> {\n\
                     Err(7)\n\
                 }\n\
             }\n",
        );
        let f = analyze(&g);
        assert_eq!(rules(&f), vec!["swallowed-error", "swallowed-error"], "{f:?}");
        assert!(f[0].message.contains("let _ ="), "{}", f[0].message);
        assert!(f[1].message.contains(".ok()"), "{}", f[1].message);
        assert!(f[0].message.contains("DurableEngine::open → DurableEngine::replay"));
    }

    #[test]
    fn swallow_off_recovery_path_and_used_ok_are_clean() {
        let g = graph_of(
            "struct Other;\n\
             impl Other {\n\
                 pub fn run(&mut self) {\n\
                     let _ = self.step();\n\
                     let v = self.step().ok();\n\
                     drop(v);\n\
                 }\n\
                 fn step(&mut self) -> Result<u32, u32> {\n\
                     Err(7)\n\
                 }\n\
             }\n",
        );
        assert!(analyze(&g).is_empty());
    }

    #[test]
    fn allowed_swallow_is_clean() {
        let g = graph_of(
            "struct DurableEngine;\n\
             impl DurableEngine {\n\
                 pub fn open(&mut self) {\n\
                     // audit:allow(swallowed-error) -- stats are observability-only\n\
                     let _ = self.step();\n\
                 }\n\
                 fn step(&mut self) -> Result<u32, u32> {\n\
                     Err(7)\n\
                 }\n\
             }\n",
        );
        assert!(analyze(&g).is_empty());
    }

    #[test]
    fn params_and_deps_are_extracted() {
        let lexed = lex("fn f<T: Ord>(a: usize, mut b: u32, (c, d): (u32, u32)) -> usize {\n\
                 let x = a + b;\n\
                 x\n\
             }\n");
        let raw: Vec<&str> = "fn f…".lines().collect();
        let fns = extract_fns("core", "x.rs", &lexed, &raw);
        assert_eq!(fns.len(), 1);
        let flow = &fns[0].flow;
        assert!(flow.params.contains("a") && flow.params.contains("b"), "{:?}", flow.params);
        assert!(!flow.params.contains("T"));
        assert!(flow.deps["x"].contains("a"), "{:?}", flow.deps);
        assert!(flow.ret_idents.contains("x"), "{:?}", flow.ret_idents);
    }
}
