//! A real Rust token lexer for the audit pass.
//!
//! PR 2's `scrub.rs` was a per-line state machine good enough for blanking
//! strings and comments, but it could not see *structure*: it reset string
//! state at end of line (plain Rust strings may span lines), it could not
//! tell which brace closes a module, and the scanner built on it exempted
//! everything from the first `#[cfg(test)]` to end of file — unsound for
//! live code that follows a test module. This module replaces it with a
//! character-accurate lexer producing three aligned views of a source file:
//!
//! * [`LexedFile::tokens`] — the token stream (identifiers, lifetimes,
//!   literals, punctuation with `::` fused), each carrying its 1-based line.
//!   Comments are dropped; string/char/number literal *content* is not
//!   tokenized (a literal is one opaque token), so rule patterns spelled in
//!   message strings can never look like code.
//! * [`LexedFile::code_lines`] — layout-preserving "code only" text per
//!   input line (comments removed, literal interiors blanked), the input for
//!   the substring-matching line rules A1–A5.
//! * [`LexedFile::test_lines`] — per-line flag: the line lies inside the
//!   span of an item carrying `#[cfg(test)]` (or follows a file-level
//!   `#![cfg(test)]`). Spans are brace-tracked to the matching close, so the
//!   exemption covers exactly the test module body — not the file tail.
//!
//! Handled literal forms: strings with escapes (multi-line), raw strings
//! `r"…"`/`r#"…"#` with any hash depth, byte strings `b"…"`/`br#"…"#`, char
//! and byte-char literals (`'x'`, `'\u{1F600}'`, `b'\n'`), raw identifiers
//! `r#match`, and the char-literal vs. lifetime ambiguity (`'a'` vs `'a`).
//! Block comments nest to arbitrary depth and span lines.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// A lifetime (`'a`, `'static`); `text` excludes the quote.
    Lifetime,
    /// Any literal: string/char/byte/number. Content is opaque (`text`
    /// empty); the token only marks that a literal occupied this position.
    Literal,
    /// Punctuation; `text` is the character, or the fused `"::"`.
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Identifier text / lifetime name / punctuation string; empty for
    /// literals.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// The lexer's output: tokens plus the per-line views.
#[derive(Clone, Debug, Default)]
pub struct LexedFile {
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Code-only text per input line (aligned with the input's lines).
    pub code_lines: Vec<String>,
    /// Whether each line lies inside a `#[cfg(test)]` item span.
    pub test_lines: Vec<bool>,
    /// Whether each line lies inside a `#[cfg(feature = …)]` item span
    /// (code requiring a non-default feature). The line rules still apply
    /// there, but the call graph excludes it: A6/A7 audit the
    /// default-feature hot path, and `debug-invariants`-style diagnostics
    /// are compiled out of it.
    pub gated_lines: Vec<bool>,
}

impl LexedFile {
    /// Whether 0-based line index `idx` is exempt test code.
    pub fn is_test_line(&self, idx: usize) -> bool {
        self.test_lines.get(idx).copied().unwrap_or(false)
    }

    /// Whether 0-based line index `idx` requires a non-default feature.
    pub fn is_gated_line(&self, idx: usize) -> bool {
        self.gated_lines.get(idx).copied().unwrap_or(false)
    }
}

/// Lexes `source` into tokens and per-line views.
pub fn lex(source: &str) -> LexedFile {
    let chars: Vec<char> = source.chars().collect();
    let mut lx = Lexer::new(&chars);
    lx.run();
    // A trailing newline opens an empty line buffer; drop it so the views
    // align with `source.lines()`.
    if source.ends_with('\n') && lx.lines.last().is_some_and(|l| l.is_empty()) {
        lx.lines.pop();
    }
    let n_lines = lx.lines.len().max(1);
    let mut file = LexedFile {
        tokens: lx.tokens,
        code_lines: if lx.lines.is_empty() { vec![String::new()] } else { lx.lines },
        test_lines: vec![false; n_lines],
        gated_lines: vec![false; n_lines],
    };
    mark_attr_spans(&file.tokens, "test", &mut file.test_lines);
    mark_attr_spans(&file.tokens, "feature", &mut file.gated_lines);
    file
}

struct Lexer<'a> {
    b: &'a [char],
    i: usize,
    line: usize,
    tokens: Vec<Token>,
    lines: Vec<String>,
}

impl<'a> Lexer<'a> {
    fn new(b: &'a [char]) -> Self {
        Self { b, i: 0, line: 1, tokens: Vec::new(), lines: vec![String::new()] }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.b.get(self.i + ahead).copied()
    }

    /// Consumes one character as *code*: it appears in the code line view.
    fn bump_code(&mut self) -> char {
        let c = self.b[self.i];
        self.i += 1;
        if c == '\n' {
            self.newline();
        } else {
            self.lines.last_mut().expect("line buffer").push(c);
        }
        c
    }

    /// Consumes one character as *blank* (literal interior): position kept,
    /// content replaced by a space in the line view.
    fn bump_blank(&mut self) {
        let c = self.b[self.i];
        self.i += 1;
        if c == '\n' {
            self.newline();
        } else {
            self.lines.last_mut().expect("line buffer").push(' ');
        }
    }

    /// Consumes one character silently (comments): nothing in the line view.
    fn bump_drop(&mut self) {
        let c = self.b[self.i];
        self.i += 1;
        if c == '\n' {
            self.newline();
        }
    }

    fn newline(&mut self) {
        self.line += 1;
        self.lines.push(String::new());
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' | 'b' | 'c' if self.raw_string_hashes().is_some() => {
                    let hashes = self.raw_string_hashes().expect("checked");
                    self.raw_string_literal(hashes);
                }
                'b' | 'c' if self.peek(1) == Some('"') && !self.prev_is_word() => {
                    self.bump_code(); // the b/c prefix
                    self.string_literal();
                }
                'b' if self.peek(1) == Some('\'') && !self.prev_is_word() => {
                    self.bump_code(); // the b prefix
                    self.char_or_lifetime();
                }
                'r' if self.peek(1) == Some('#')
                    && self.peek(2).is_some_and(is_ident_start)
                    && !self.prev_is_word() =>
                {
                    // Raw identifier r#match.
                    let line = self.line;
                    self.bump_code();
                    self.bump_code();
                    let text = self.ident_text();
                    self.push(TokenKind::Ident, text, line);
                }
                '\'' => self.char_or_lifetime(),
                ':' if self.peek(1) == Some(':') => {
                    let line = self.line;
                    self.bump_code();
                    self.bump_code();
                    self.push(TokenKind::Punct, "::".into(), line);
                }
                _ if is_ident_start(c) => {
                    let line = self.line;
                    let text = self.ident_text();
                    self.push(TokenKind::Ident, text, line);
                }
                _ if c.is_ascii_digit() => {
                    // Number literal: consume the alphanumeric/underscore run
                    // (covers hex/bin/suffixes; `1.0` lexes as two literals
                    // around a '.' — adequate for the audit's purposes).
                    let line = self.line;
                    while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                        self.bump_code();
                    }
                    self.push(TokenKind::Literal, String::new(), line);
                }
                _ if c.is_whitespace() => {
                    self.bump_code();
                }
                _ => {
                    let line = self.line;
                    self.bump_code();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn prev_is_word(&self) -> bool {
        self.i > 0 && {
            let p = self.b[self.i - 1];
            p.is_alphanumeric() || p == '_'
        }
    }

    fn ident_text(&mut self) -> String {
        let start = self.i;
        while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            self.bump_code();
        }
        self.b[start..self.i].iter().collect()
    }

    fn line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != '\n' {
            self.bump_drop();
        }
    }

    fn block_comment(&mut self) {
        self.bump_drop(); // '/'
        self.bump_drop(); // '*'
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i] == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump_drop();
                self.bump_drop();
            } else if self.b[self.i] == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump_drop();
                self.bump_drop();
            } else {
                self.bump_drop();
            }
        }
    }

    /// `"…"` with escapes; may span lines (unlike the old scrubber, which
    /// reset at EOL and mis-lexed multi-line strings).
    fn string_literal(&mut self) {
        let line = self.line;
        self.bump_code(); // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                '\\' => {
                    self.bump_blank();
                    if self.i < self.b.len() {
                        self.bump_blank(); // the escaped char (covers \" \\)
                    }
                }
                '"' => {
                    self.bump_code(); // closing quote
                    break;
                }
                _ => self.bump_blank(),
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// If position `i` starts a raw (byte/C) string — `r"`, `r#"`, `br##"`,
    /// `cr"` … — returns the number of `#`s.
    fn raw_string_hashes(&self) -> Option<u32> {
        if self.prev_is_word() {
            return None;
        }
        let mut j = 0;
        if matches!(self.peek(0), Some('b') | Some('c')) {
            j += 1;
        }
        if self.peek(j) != Some('r') {
            return None;
        }
        j += 1;
        let mut hashes = 0u32;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        (self.peek(j) == Some('"')).then_some(hashes)
    }

    fn raw_string_literal(&mut self, hashes: u32) {
        let line = self.line;
        // Consume prefix (b, r, #s) and opening quote as code.
        while self.peek(0) != Some('"') {
            self.bump_code();
        }
        self.bump_code(); // opening quote
        while self.i < self.b.len() {
            if self.b[self.i] == '"' && (0..hashes as usize).all(|k| self.peek(1 + k) == Some('#'))
            {
                self.bump_code(); // closing quote
                for _ in 0..hashes {
                    self.bump_code();
                }
                break;
            }
            self.bump_blank();
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// `'x'`, `'\n'`, `'\u{…}'` are char literals; `'a`, `'static` are
    /// lifetimes. An unmatched `'` must never open string-like state.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        if self.peek(1) == Some('\\') {
            // Escaped char literal: blank to the closing quote.
            self.bump_blank(); // opening '
            self.bump_blank(); // backslash
            if self.i < self.b.len() {
                self.bump_blank(); // escaped char
            }
            while self.i < self.b.len() && self.b[self.i] != '\'' {
                self.bump_blank(); // \u{…} payload
            }
            if self.i < self.b.len() {
                self.bump_blank(); // closing '
            }
            self.push(TokenKind::Literal, String::new(), line);
        } else if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            self.bump_blank(); // opening '
            self.bump_blank(); // the char
            self.bump_blank(); // closing '
            self.push(TokenKind::Literal, String::new(), line);
        } else if self.peek(1).is_some_and(is_ident_start) {
            self.bump_code(); // the quote
            let text = self.ident_text();
            self.push(TokenKind::Lifetime, text, line);
        } else {
            self.bump_code();
            self.push(TokenKind::Punct, "'".into(), line);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

// --- #[cfg(…)] span tracking ----------------------------------------------

/// Marks the lines covered by items whose `#[cfg(…)]` predicate requires
/// `marker` (`test` for test spans, `feature` for feature-gated spans).
///
/// An outer attribute `#[cfg(…)]` with the marker ident at even `not(…)`
/// depth — so `#[cfg(not(test))]` stays live — covers the item that
/// follows: subsequent attributes are skipped, then the span runs to the
/// matching `}` of the item's first brace (brace-tracked, so only the
/// module/fn/impl body is covered — code after a test module is scanned
/// again), or to the `;` of a braceless item (including cfg-gated
/// *statements* such as a gated call). A file-level `#![cfg(test)]` covers
/// the rest of the file.
fn mark_attr_spans(tokens: &[Token], marker: &str, out_lines: &mut [bool]) {
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct("#") {
            i += 1;
            continue;
        }
        let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct("!"));
        let open = i + if inner { 2 } else { 1 };
        if !tokens.get(open).is_some_and(|t| t.is_punct("[")) {
            i += 1;
            continue;
        }
        let Some(close) = matching(tokens, open, "[", "]") else {
            i += 1;
            continue;
        };
        if !attr_requires(&tokens[open + 1..close], marker) {
            i = close + 1;
            continue;
        }
        let start_line = tokens[i].line;
        if inner {
            // `#![cfg(test)]`: the whole enclosing scope — for the audit's
            // file-granular view, the rest of the file.
            for flag in out_lines[start_line.saturating_sub(1)..].iter_mut() {
                *flag = true;
            }
            return;
        }
        // Skip any further attributes between the cfg and the item.
        let mut j = close + 1;
        while tokens.get(j).is_some_and(|t| t.is_punct("#"))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // The item span: to the matching `}` of its first brace, or to `;`.
        let mut end_line = tokens.get(j).map_or(start_line, |t| t.line);
        let mut k = j;
        while let Some(t) = tokens.get(k) {
            if t.is_punct(";") {
                end_line = t.line;
                break;
            }
            if t.is_punct("{") {
                match matching(tokens, k, "{", "}") {
                    Some(c) => end_line = tokens[c].line,
                    None => end_line = tokens.last().map_or(end_line, |t| t.line),
                }
                break;
            }
            end_line = t.line;
            k += 1;
        }
        let hi = end_line.min(out_lines.len());
        for flag in out_lines[start_line.saturating_sub(1)..hi].iter_mut() {
            *flag = true;
        }
        i = j;
    }
}

/// Index of the token matching the opener at `open` (which must be `open_p`),
/// honoring nesting.
pub(crate) fn matching(
    tokens: &[Token],
    open: usize,
    open_p: &str,
    close_p: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_p) {
            depth += 1;
        } else if t.is_punct(close_p) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether the attribute tokens (between `[` and `]`) are a `cfg(…)` whose
/// predicate requires `marker` to hold: the marker ident appears at even
/// `not(…)` depth (so `#[cfg(not(test))]` does not count as test code).
fn attr_requires(attr: &[Token], marker: &str) -> bool {
    if !attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    let mut not_stack: Vec<usize> = Vec::new(); // paren depths of open not(…)
    let mut depth = 0usize;
    let mut k = 1;
    while k < attr.len() {
        let t = &attr[k];
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth = depth.saturating_sub(1);
            while not_stack.last().is_some_and(|&d| d > depth) {
                not_stack.pop();
            }
        } else if t.is_ident("not") && attr.get(k + 1).is_some_and(|t| t.is_punct("(")) {
            not_stack.push(depth + 1);
        } else if t.is_ident(marker) && not_stack.len().is_multiple_of(2) {
            return true;
        }
        k += 1;
    }
    false
}

// --- suppression markers ---------------------------------------------------

/// Rule ids named by an `audit:allow(<rules>)` marker on this *raw* line.
///
/// Syntax: `// audit:allow(rule-a, rule-b) -- why this is fine`. The marker
/// is looked up on the raw (unlexed) line because it lives in a comment.
pub fn suppressed_rules(raw_line: &str) -> Vec<String> {
    let Some(at) = raw_line.find("audit:allow(") else {
        return Vec::new();
    };
    let rest = &raw_line[at + "audit:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close].split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect()
}

/// Lock name named by an `audit:lock(<name>)` marker on this *raw* line.
///
/// The concurrency rules (A9/A11) infer a lock's identity from the
/// receiver ident at the acquisition site (`shared.deques.lock()` → lock
/// `deques`). When that inference is wrong — typically an indexed element
/// lock (`deques[i].lock()`) that must not share a node with the list lock
/// — the site carries `// audit:lock(<name>)` to name the lock explicitly.
/// Looked up on the raw line because the marker lives in a comment.
pub fn lock_name_override(raw_line: &str) -> Option<String> {
    let at = raw_line.find("audit:lock(")?;
    let rest = &raw_line[at + "audit:lock(".len()..];
    let close = rest.find(')')?;
    let name = rest[..close].trim();
    (!name.is_empty()).then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> Vec<String> {
        lex(src).code_lines
    }

    #[test]
    fn line_comments_are_dropped() {
        let out = code("let x = 1; // Instant::now\n/// doc .iter()\ncode();\n");
        assert_eq!(out[0], "let x = 1; ");
        assert_eq!(out[1], "");
        assert_eq!(out[2], "code();");
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let out = code("a(); /* one /* two\nstill comment */ still */ b();\nc();\n");
        assert_eq!(out[0], "a(); ");
        assert_eq!(out[1], " b();");
        assert_eq!(out[2], "c();");
    }

    #[test]
    fn strings_are_blanked_not_removed() {
        let out = code("let s = \"thread_rng and .iter()\"; f(s);\n");
        assert!(!out[0].contains("thread_rng"));
        assert!(!out[0].contains(".iter()"));
        assert!(out[0].contains("f(s);"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let out = code("let s = \"a \\\" Instant::now\"; g();\n");
        assert!(!out[0].contains("Instant::now"));
        assert!(out[0].contains("g();"));
    }

    #[test]
    fn multi_line_strings_stay_blanked() {
        // The old scrubber reset string state at EOL; the lexer must not.
        let out = code("let s = \"first\nthread_rng()\nlast\"; h();\n");
        assert!(!out[1].contains("thread_rng"), "{:?}", out[1]);
        assert!(out[2].contains("h();"));
    }

    #[test]
    fn raw_and_byte_strings_are_blanked() {
        let out = code("let s = r#\"has \"quotes\" and thread_rng\"#; h();\n");
        assert!(!out[0].contains("thread_rng"), "{:?}", out[0]);
        assert!(out[0].contains("h();"));
        let out = code("let b = b\"thread_rng\"; let rb = br##\"x \"# thread_rng\"##; i();\n");
        assert!(!out[0].contains("thread_rng"), "{:?}", out[0]);
        assert!(out[0].contains("i();"));
    }

    #[test]
    fn c_strings_are_blanked_not_leaked() {
        // Plain c-string: content blanked, no spurious `c` ident.
        let f = lex("let cs = c\"lit thread_rng\"; m();\n");
        assert!(!f.code_lines[0].contains("thread_rng"), "{:?}", f.code_lines[0]);
        assert!(f.code_lines[0].contains("m();"));
        assert!(!f.tokens.iter().any(|t| t.is_ident("c")), "no phantom `c` ident");
        // Raw c-string: the inner quote must not end the literal early
        // (before the fix, `thread_rng` leaked out as a live ident — a
        // false nondet-taint source).
        let f = lex("let cr = cr#\"raw \" thread_rng\"#; n();\n");
        assert!(!f.code_lines[0].contains("thread_rng"), "{:?}", f.code_lines[0]);
        assert!(f.code_lines[0].contains("n();"));
        assert!(!f.tokens.iter().any(|t| t.is_ident("thread_rng")));
    }

    #[test]
    fn amp_lifetime_vs_char_disambiguation() {
        // `&'static` and `&'_` are lifetimes; `&'a'` and `x & 'y'` are
        // references to / conjunctions with char literals.
        let f = lex("fn f(x: &'static str, y: &'_ u8) { g(x, y); }\n");
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["static", "_"]);
        let f = lex("let c = &'a'; let p = x & 'y'; h();\n");
        assert!(f.tokens.iter().all(|t| t.kind != TokenKind::Lifetime));
        assert_eq!(f.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(), 2);
        assert!(f.code_lines[0].contains("h();"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let out = code("fn f<'a>(x: &'a str) -> char { '\"' }\n");
        assert!(out[0].contains("&'a str"));
        let out = code("let c = 'x'; let q = '\\''; let u = '\\u{1F600}'; i();\n");
        assert!(out[0].contains("i();"));
    }

    #[test]
    fn tokens_carry_lines_and_kinds() {
        let f = lex("fn foo() {\n    bar::baz(1);\n}\n");
        let idents: Vec<(&str, usize)> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(idents, vec![("fn", 1), ("foo", 1), ("bar", 2), ("baz", 2)]);
        assert!(f.tokens.iter().any(|t| t.is_punct("::") && t.line == 2));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let f = lex("let r#match = 1; r#match.count();\n");
        assert_eq!(f.tokens.iter().filter(|t| t.is_ident("match")).count(), 2);
    }

    #[test]
    fn test_module_span_is_bounded() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() {}\n\
                   }\n\
                   fn also_live() {}\n";
        let f = lex(src);
        assert_eq!(f.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_live() {
        let f = lex("#[cfg(not(test))]\nfn live() {}\n");
        assert!(f.test_lines.iter().all(|&t| !t));
        let f = lex("#[cfg(all(test, feature = \"x\"))]\nmod t {\n}\n");
        assert_eq!(f.test_lines, vec![true, true, true]);
        let f = lex("#[cfg(not(all(test)))]\nfn live() {}\n");
        assert!(f.test_lines.iter().all(|&t| !t));
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let f = lex("#[cfg(test)]\nuse std::time::Instant;\nfn live() {}\n");
        assert_eq!(f.test_lines, vec![true, true, false]);
    }

    #[test]
    fn attrs_between_cfg_and_item_are_covered() {
        let f = lex("#[cfg(test)]\n#[allow(dead_code)]\nmod t {\n    fn x() {}\n}\nfn live() {}\n");
        assert_eq!(f.test_lines, vec![true, true, true, true, true, false]);
    }

    #[test]
    fn inner_cfg_test_exempts_rest_of_file() {
        let f = lex("#![cfg(test)]\nfn a() {}\nfn b() {}\n");
        assert!(f.test_lines.iter().all(|&t| t));
    }

    #[test]
    fn suppression_parsing() {
        assert_eq!(
            suppressed_rules("let t = x; // audit:allow(wall-clock) -- display only"),
            vec!["wall-clock"]
        );
        assert_eq!(
            suppressed_rules("// audit:allow(hash-iter, unwrap-budget) -- reason"),
            vec!["hash-iter", "unwrap-budget"]
        );
        assert!(suppressed_rules("plain code line").is_empty());
        assert!(suppressed_rules("// audit:allow( unclosed").is_empty());
    }

    #[test]
    fn lock_name_override_parsing() {
        assert_eq!(
            lock_name_override("deques[i].lock(); // audit:lock(deque) -- element lock"),
            Some("deque".to_string())
        );
        assert_eq!(lock_name_override("plain code line"), None);
        assert_eq!(lock_name_override("// audit:lock( unclosed"), None);
        assert_eq!(lock_name_override("// audit:lock()"), None);
    }
}
