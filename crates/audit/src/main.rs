//! `anc-audit` binary: run the determinism + hot-path lint pass over the
//! workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p anc-audit --release [-- --root <dir>] [--format text|json|sarif] [--bless]
//! cargo run -p anc-audit -- --diff <git-ref>
//! cargo run -p anc-audit -- --explain <rule>
//! ```
//!
//! Exits 0 when the tree is clean (no unsuppressed deny-tier findings and
//! the A5/A7 counts are within the checked-in baselines), 1 on findings,
//! 2 on usage/I-O errors. `--bless` (alias: `--update-baseline`) rewrites
//! `crates/audit/baseline_a5.txt` and `crates/audit/baseline_a7.txt` from
//! the current counts — only do this after *removing* sites; additions need
//! an inline `audit:allow`. `--format json` emits a machine-readable report
//! on stdout (consumed by `ci.sh` into `results/audit.json`, including the
//! scan's `elapsed_seconds`); `--format sarif` emits SARIF 2.1.0 for
//! standard tooling ingestion. `--diff <git-ref>` is differential mode: the
//! named ref's tree is materialized (scannable sources + baselines), both
//! trees are scanned, and only findings *absent from the baseline ref*
//! fail — line numbers are ignored when matching, so pure shifts do not
//! read as new findings. `--explain` prints one rule's rationale, an
//! example finding, and its suppression syntax, accepting either the rule
//! name (`lock-order`) or the short id (`A9`); `--explain all` prints
//! every rule.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::Instant;

use anc_audit::{
    concurrency::LockEdge, explain, format_baseline, format_baseline_a7, parse_baseline, ratchet,
    ratchet_a7, scan_tree, Finding, RuleDoc, BASELINE_A7_PATH, BASELINE_PATH, RULES,
};

fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_findings(findings: &[Finding]) -> String {
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn json_counts(counts: &BTreeMap<String, usize>) -> String {
    let rows: Vec<String> =
        counts.iter().map(|(path, n)| format!("\"{}\":{}", json_escape(path), n)).collect();
    format!("{{{}}}", rows.join(","))
}

fn json_strings(items: &[String]) -> String {
    let rows: Vec<String> = items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    format!("[{}]", rows.join(","))
}

fn json_lock_edges(edges: &[LockEdge]) -> String {
    let rows: Vec<String> = edges
        .iter()
        .map(|e| {
            format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"line\":{},\"via\":\"{}\"}}",
                json_escape(&e.from),
                json_escape(&e.to),
                json_escape(&e.file),
                e.line,
                json_escape(&e.via)
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn json_rules() -> String {
    let rows: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!("{{\"id\":\"{}\",\"rule\":\"{}\"}}", json_escape(r.id), json_escape(r.rule))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// SARIF 2.1.0 document over the error-tier findings: one `rules` entry per
/// audit rule (the rule *name* is the stable `ruleId`) and one error-level
/// `result` per finding.
fn sarif_output(errors: &[Finding]) -> String {
    let rules: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                json_escape(r.rule),
                json_escape(r.id),
                json_escape(r.rationale)
            )
        })
        .collect();
    let results: Vec<String> = errors
        .iter()
        .map(|f| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                json_escape(f.rule),
                json_escape(&f.message),
                json_escape(&f.file),
                f.line.max(1) // ratchet findings carry line 0; SARIF lines are 1-based
            )
        })
        .collect();
    format!(
        "{{\"version\":\"2.1.0\",\"$schema\":\
         \"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{{\"tool\":{{\"driver\":\
         {{\"name\":\"anc-audit\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

/// Identity of a finding for differential mode: rule + file + message with
/// ASCII digits stripped, so edits that only shift line numbers (in the
/// location *or* inside chain messages) do not read as new findings.
fn finding_key(f: &Finding) -> (String, String, String) {
    let msg: String = f.message.chars().filter(|c| !c.is_ascii_digit()).collect();
    (f.rule.to_string(), f.file.clone(), msg)
}

/// Scans `root` and folds in the A5/A7 ratchets against the baselines *in
/// that tree* (missing baseline files mean empty budgets — a baseline ref
/// may predate them). Returns the owned error-tier findings.
fn scan_errors(root: &Path) -> Result<Vec<Finding>, String> {
    let report = scan_tree(root).map_err(|e| format!("cannot scan {}: {e}", root.display()))?;
    let mut baselines: Vec<BTreeMap<String, usize>> = Vec::new();
    for rel in [BASELINE_PATH, BASELINE_A7_PATH] {
        let text = std::fs::read_to_string(root.join(rel)).unwrap_or_default();
        baselines.push(parse_baseline(&text));
    }
    let (a5_errors, _) = ratchet(&baselines[0], &report.unwrap_counts);
    let (a7_errors, _) = ratchet_a7(&baselines[1], &report.alloc_counts);
    let mut errors = report.findings;
    errors.extend(a5_errors);
    errors.extend(a7_errors);
    Ok(errors)
}

/// Materializes the scannable subset of `git_ref` (workspace + vendored
/// rayon sources, plus the ratchet baselines) into a temp directory that
/// `scan_tree` can walk.
fn materialize_ref(root: &Path, git_ref: &str) -> Result<PathBuf, String> {
    let root_str = root.to_str().ok_or("workspace root path is not valid UTF-8")?;
    let ls = Command::new("git")
        .args(["-C", root_str, "ls-tree", "-r", "--name-only", git_ref])
        .output()
        .map_err(|e| format!("cannot run git: {e}"))?;
    if !ls.status.success() {
        return Err(format!(
            "git ls-tree {git_ref} failed: {}",
            String::from_utf8_lossy(&ls.stderr).trim()
        ));
    }
    let listing = String::from_utf8_lossy(&ls.stdout);
    let wanted: Vec<&str> = listing
        .lines()
        .filter(|p| {
            *p == BASELINE_PATH
                || *p == BASELINE_A7_PATH
                || (p.ends_with(".rs")
                    && (p.starts_with("crates/") || p.starts_with("vendor/rayon/src/")))
        })
        .collect();
    if wanted.is_empty() {
        return Err(format!("ref {git_ref} contains no scannable sources"));
    }
    let dir = std::env::temp_dir().join(format!("anc-audit-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for rel in wanted {
        let show = Command::new("git")
            .args(["-C", root_str, "show", &format!("{git_ref}:{rel}")])
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !show.status.success() {
            return Err(format!(
                "git show {git_ref}:{rel} failed: {}",
                String::from_utf8_lossy(&show.stderr).trim()
            ));
        }
        let dest = dir.join(rel);
        if let Some(parent) = dest.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(&dest, &show.stdout)
            .map_err(|e| format!("cannot write {}: {e}", dest.display()))?;
    }
    Ok(dir)
}

/// Differential mode: fail only on findings whose (rule, file, digitless
/// message) key is absent from the baseline ref's scan.
fn run_diff(root: &Path, git_ref: &str) -> ExitCode {
    let baseline_dir = match materialize_ref(root, git_ref) {
        Ok(dir) => dir,
        Err(e) => {
            eprintln!("--diff: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = (|| {
        let base = scan_errors(&baseline_dir)?;
        let current = scan_errors(root)?;
        let base_keys: BTreeSet<_> = base.iter().map(finding_key).collect();
        let fresh: Vec<Finding> =
            current.into_iter().filter(|f| !base_keys.contains(&finding_key(f))).collect();
        Ok::<_, String>((base_keys.len(), fresh))
    })();
    if let Err(e) = std::fs::remove_dir_all(&baseline_dir) {
        if e.kind() != std::io::ErrorKind::NotFound {
            eprintln!("--diff: cannot clean up {}: {e}", baseline_dir.display());
        }
    }
    match outcome {
        Err(e) => {
            eprintln!("--diff: {e}");
            ExitCode::from(2)
        }
        Ok((base_count, fresh)) if fresh.is_empty() => {
            println!(
                "[anc-audit] OK: no findings beyond baseline {git_ref} ({base_count} baselined)"
            );
            ExitCode::SUCCESS
        }
        Ok((_, fresh)) => {
            for f in &fresh {
                println!("{f}");
            }
            println!(
                "[anc-audit] FAIL: {} finding(s) not present in baseline {git_ref}",
                fresh.len()
            );
            ExitCode::from(1)
        }
    }
}

fn print_rule(doc: &RuleDoc) {
    println!("{} `{}`", doc.id, doc.rule);
    println!("  rationale:   {}", doc.rationale);
    println!("  example:     {}", doc.example);
    println!("  suppression: {}", doc.suppression);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    // Scan wall-time is observability-only (recorded into results/audit.json
    // by ci.sh); it never influences findings.
    // audit:allow(wall-clock) -- timing the audit itself for CI telemetry
    let started = Instant::now();
    let mut root: Option<PathBuf> = None;
    let mut bless = false;
    let mut format = Format::Text;
    let mut diff_ref: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--diff" => match args.next() {
                Some(git_ref) => diff_ref = Some(git_ref),
                None => {
                    eprintln!("--diff needs a git ref argument (e.g. HEAD)");
                    return ExitCode::from(2);
                }
            },
            "--bless" | "--update-baseline" => bless = true,
            "--explain" => match args.next() {
                Some(rule) if rule == "all" => {
                    for doc in RULES {
                        print_rule(doc);
                    }
                    return ExitCode::SUCCESS;
                }
                Some(rule) => match explain(&rule) {
                    Some(doc) => {
                        print_rule(doc);
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown rule {rule:?}; known: {} (or A1–A14, or `all`)",
                            RULES.iter().map(|r| r.rule).collect::<Vec<_>>().join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!(
                        "--explain needs a rule name (e.g. lock-order), an id (A9), or `all`"
                    );
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("--format needs `text`, `json`, or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: \
                     anc-audit [--root <dir>] [--format text|json|sarif] [--bless] \
                     [--diff <git-ref>] [--explain <rule>]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().as_deref().and_then(find_root)) {
        Some(r) => r,
        None => {
            eprintln!("cannot find workspace root (a dir with Cargo.toml + crates/); pass --root");
            return ExitCode::from(2);
        }
    };
    if let Some(git_ref) = diff_ref {
        return run_diff(&root, &git_ref);
    }

    let report = match scan_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let a5_file = root.join(BASELINE_PATH);
    let a7_file = root.join(BASELINE_A7_PATH);
    if bless {
        let writes = [
            (&a5_file, format_baseline(&report.unwrap_counts)),
            (&a7_file, format_baseline_a7(&report.alloc_counts)),
        ];
        for (path, text) in writes {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        eprintln!(
            "[anc-audit] baselines blessed: A5 {} file(s) / {} site(s), A7 {} file(s) / {} site(s)",
            report.unwrap_counts.len(),
            report.unwrap_counts.values().sum::<usize>(),
            report.alloc_counts.len(),
            report.alloc_counts.values().sum::<usize>()
        );
    }
    let mut baselines: Vec<BTreeMap<String, usize>> = Vec::new();
    for path in [&a5_file, &a7_file] {
        match std::fs::read_to_string(path) {
            Ok(text) => baselines.push(parse_baseline(&text)),
            Err(e) => {
                eprintln!(
                    "cannot read baseline {}: {e}; run with --bless to create it",
                    path.display()
                );
                return ExitCode::from(2);
            }
        }
    }
    let (a5_errors, a5_notes) = ratchet(&baselines[0], &report.unwrap_counts);
    let (a7_errors, a7_notes) = ratchet_a7(&baselines[1], &report.alloc_counts);

    let errors: Vec<&Finding> =
        report.findings.iter().chain(a5_errors.iter()).chain(a7_errors.iter()).collect();
    let notes: Vec<String> = a5_notes.into_iter().chain(a7_notes).collect();
    let ok = errors.is_empty();

    if format == Format::Json {
        let error_rows: Vec<Finding> = errors.iter().map(|f| (*f).clone()).collect();
        println!(
            "{{\"ok\":{ok},\"elapsed_seconds\":{:.3},\"rules\":{},\"findings\":{},\
             \"unwrap_counts\":{},\"alloc_counts\":{},\
             \"alloc_sites\":{},\"lock_edges\":{},\"notes\":{}}}",
            started.elapsed().as_secs_f64(),
            json_rules(),
            json_findings(&error_rows),
            json_counts(&report.unwrap_counts),
            json_counts(&report.alloc_counts),
            json_findings(&report.alloc_sites),
            json_lock_edges(&report.lock_edges),
            json_strings(&notes)
        );
    } else if format == Format::Sarif {
        let error_rows: Vec<Finding> = errors.iter().map(|f| (*f).clone()).collect();
        println!("{}", sarif_output(&error_rows));
    } else {
        for f in &errors {
            println!("{f}");
        }
        for note in &notes {
            println!("note: {note}");
        }
        if ok {
            println!(
                "[anc-audit] OK: workspace clean ({} unwrap/expect, {} hot-path alloc site(s) \
                 within baseline)",
                report.unwrap_counts.values().sum::<usize>(),
                report.alloc_counts.values().sum::<usize>()
            );
        } else {
            println!(
                "[anc-audit] FAIL: {} finding(s) — see DESIGN.md §8 for rules and suppression \
                 syntax",
                errors.len()
            );
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
