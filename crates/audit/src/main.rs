//! `anc-audit` binary: run the determinism + hot-path lint pass over the
//! workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p anc-audit --release [-- --root <dir>] [--format text|json] [--bless]
//! cargo run -p anc-audit -- --explain <rule>
//! ```
//!
//! Exits 0 when the tree is clean (no unsuppressed deny-tier findings and
//! the A5/A7 counts are within the checked-in baselines), 1 on findings,
//! 2 on usage/I-O errors. `--bless` (alias: `--update-baseline`) rewrites
//! `crates/audit/baseline_a5.txt` and `crates/audit/baseline_a7.txt` from
//! the current counts — only do this after *removing* sites; additions need
//! an inline `audit:allow`. `--format json` emits a machine-readable report
//! on stdout (consumed by `ci.sh` into `results/audit.json`). `--explain`
//! prints one rule's rationale, an example finding, and its suppression
//! syntax, accepting either the rule name (`lock-order`) or the short id
//! (`A9`); `--explain all` prints every rule.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use anc_audit::{
    concurrency::LockEdge, explain, format_baseline, format_baseline_a7, parse_baseline, ratchet,
    ratchet_a7, scan_tree, Finding, RuleDoc, BASELINE_A7_PATH, BASELINE_PATH, RULES,
};

fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Escapes `s` as the contents of a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_findings(findings: &[Finding]) -> String {
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn json_counts(counts: &BTreeMap<String, usize>) -> String {
    let rows: Vec<String> =
        counts.iter().map(|(path, n)| format!("\"{}\":{}", json_escape(path), n)).collect();
    format!("{{{}}}", rows.join(","))
}

fn json_strings(items: &[String]) -> String {
    let rows: Vec<String> = items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
    format!("[{}]", rows.join(","))
}

fn json_lock_edges(edges: &[LockEdge]) -> String {
    let rows: Vec<String> = edges
        .iter()
        .map(|e| {
            format!(
                "{{\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"line\":{},\"via\":\"{}\"}}",
                json_escape(&e.from),
                json_escape(&e.to),
                json_escape(&e.file),
                e.line,
                json_escape(&e.via)
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn json_rules() -> String {
    let rows: Vec<String> = RULES
        .iter()
        .map(|r| {
            format!("{{\"id\":\"{}\",\"rule\":\"{}\"}}", json_escape(r.id), json_escape(r.rule))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

fn print_rule(doc: &RuleDoc) {
    println!("{} `{}`", doc.id, doc.rule);
    println!("  rationale:   {}", doc.rationale);
    println!("  example:     {}", doc.example);
    println!("  suppression: {}", doc.suppression);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut bless = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--bless" | "--update-baseline" => bless = true,
            "--explain" => match args.next() {
                Some(rule) if rule == "all" => {
                    for doc in RULES {
                        print_rule(doc);
                    }
                    return ExitCode::SUCCESS;
                }
                Some(rule) => match explain(&rule) {
                    Some(doc) => {
                        print_rule(doc);
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!(
                            "unknown rule {rule:?}; known: {} (or A1–A11, or `all`)",
                            RULES.iter().map(|r| r.rule).collect::<Vec<_>>().join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!(
                        "--explain needs a rule name (e.g. lock-order), an id (A9), or `all`"
                    );
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("--format needs `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: \
                     anc-audit [--root <dir>] [--format text|json] [--bless] [--explain <rule>]"
                );
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().as_deref().and_then(find_root)) {
        Some(r) => r,
        None => {
            eprintln!("cannot find workspace root (a dir with Cargo.toml + crates/); pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match scan_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let a5_file = root.join(BASELINE_PATH);
    let a7_file = root.join(BASELINE_A7_PATH);
    if bless {
        let writes = [
            (&a5_file, format_baseline(&report.unwrap_counts)),
            (&a7_file, format_baseline_a7(&report.alloc_counts)),
        ];
        for (path, text) in writes {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
        eprintln!(
            "[anc-audit] baselines blessed: A5 {} file(s) / {} site(s), A7 {} file(s) / {} site(s)",
            report.unwrap_counts.len(),
            report.unwrap_counts.values().sum::<usize>(),
            report.alloc_counts.len(),
            report.alloc_counts.values().sum::<usize>()
        );
    }
    let mut baselines: Vec<BTreeMap<String, usize>> = Vec::new();
    for path in [&a5_file, &a7_file] {
        match std::fs::read_to_string(path) {
            Ok(text) => baselines.push(parse_baseline(&text)),
            Err(e) => {
                eprintln!(
                    "cannot read baseline {}: {e}; run with --bless to create it",
                    path.display()
                );
                return ExitCode::from(2);
            }
        }
    }
    let (a5_errors, a5_notes) = ratchet(&baselines[0], &report.unwrap_counts);
    let (a7_errors, a7_notes) = ratchet_a7(&baselines[1], &report.alloc_counts);

    let errors: Vec<&Finding> =
        report.findings.iter().chain(a5_errors.iter()).chain(a7_errors.iter()).collect();
    let notes: Vec<String> = a5_notes.into_iter().chain(a7_notes).collect();
    let ok = errors.is_empty();

    if json {
        let error_rows: Vec<Finding> = errors.iter().map(|f| (*f).clone()).collect();
        println!(
            "{{\"ok\":{ok},\"rules\":{},\"findings\":{},\"unwrap_counts\":{},\"alloc_counts\":{},\
             \"alloc_sites\":{},\"lock_edges\":{},\"notes\":{}}}",
            json_rules(),
            json_findings(&error_rows),
            json_counts(&report.unwrap_counts),
            json_counts(&report.alloc_counts),
            json_findings(&report.alloc_sites),
            json_lock_edges(&report.lock_edges),
            json_strings(&notes)
        );
    } else {
        for f in &errors {
            println!("{f}");
        }
        for note in &notes {
            println!("note: {note}");
        }
        if ok {
            println!(
                "[anc-audit] OK: workspace clean ({} unwrap/expect, {} hot-path alloc site(s) \
                 within baseline)",
                report.unwrap_counts.values().sum::<usize>(),
                report.alloc_counts.values().sum::<usize>()
            );
        } else {
            println!(
                "[anc-audit] FAIL: {} finding(s) — see DESIGN.md §8 for rules and suppression \
                 syntax",
                errors.len()
            );
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
