//! `anc-audit` binary: run the determinism lint pass over the workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p anc-audit --release [-- --root <dir>] [--update-baseline]
//! ```
//!
//! Exits 0 when the tree is clean (no unsuppressed findings and the
//! unwrap/expect counts are within the checked-in baseline), 1 on findings,
//! 2 on usage/I-O errors. `--update-baseline` rewrites
//! `crates/audit/baseline_a5.txt` from the current counts — only do this
//! after *removing* unwraps; additions need an inline `audit:allow`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use anc_audit::{format_baseline, parse_baseline, ratchet, scan_tree, BASELINE_PATH};

fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown argument {other:?}; usage: anc-audit [--root <dir>] [--update-baseline]");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().as_deref().and_then(find_root)) {
        Some(r) => r,
        None => {
            eprintln!("cannot find workspace root (a dir with Cargo.toml + crates/); pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match scan_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_file = root.join(BASELINE_PATH);
    if update_baseline {
        if let Err(e) = std::fs::write(&baseline_file, format_baseline(&report.unwrap_counts)) {
            eprintln!("cannot write {}: {e}", baseline_file.display());
            return ExitCode::from(2);
        }
        println!(
            "[anc-audit] baseline updated: {} file(s), {} unwrap/expect call(s)",
            report.unwrap_counts.len(),
            report.unwrap_counts.values().sum::<usize>()
        );
    }
    let baseline = match std::fs::read_to_string(&baseline_file) {
        Ok(text) => parse_baseline(&text),
        Err(e) => {
            eprintln!(
                "cannot read baseline {}: {e}; run with --update-baseline to create it",
                baseline_file.display()
            );
            return ExitCode::from(2);
        }
    };
    let (budget_errors, notes) = ratchet(&baseline, &report.unwrap_counts);

    let mut failed = false;
    for f in report.findings.iter().chain(budget_errors.iter()) {
        println!("{f}");
        failed = true;
    }
    for note in &notes {
        println!("note: {note}");
    }
    if failed {
        println!(
            "[anc-audit] FAIL: {} finding(s) — see DESIGN.md §8 for rules and suppression syntax",
            report.findings.len() + budget_errors.len()
        );
        ExitCode::from(1)
    } else {
        println!(
            "[anc-audit] OK: workspace clean ({} unwrap/expect within baseline)",
            report.unwrap_counts.values().sum::<usize>()
        );
        ExitCode::SUCCESS
    }
}
