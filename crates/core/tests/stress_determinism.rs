//! Schedule-perturbation determinism for the full engine
//! (`--features stress-schedules`).
//!
//! `batch_determinism.rs` proves the thread count is not an input to the
//! engine's state; this suite closes the remaining gap: with the pool's
//! seeded perturbation hooks active (`ANC_STRESS_SEED`, see
//! `vendor/rayon/src/stress.rs`), workers win races against the submitter,
//! steals interleave with owner pops, and completions race the latch wait —
//! and the ingest snapshot plus every per-level cluster extraction must
//! still be byte-identical to the unperturbed single-thread reference, at
//! 2/4/8 threads across several fixed seeds.
//!
//! Without the feature the hooks are no-ops and this degrades to a plain
//! determinism sweep; CI runs it with the feature enabled.
//!
//! This file holds a single `#[test]` on purpose: it mutates the global
//! `RAYON_NUM_THREADS` and `ANC_STRESS_SEED` variables, which would race
//! with sibling tests in the same binary.

use anc_core::{AncConfig, AncEngine, BatchMode, ClusterCache, ClusterMode};
use anc_graph::gen::connected_caveman;

/// Snapshot JSON plus per-level cluster labels, extracted through a nested
/// `join` so the sweep exercises parallel-inside-parallel scheduling (the
/// same fingerprint as `batch_determinism.rs`).
fn ingest_fingerprint(batch: BatchMode) -> (String, Vec<Vec<u32>>) {
    let lg = connected_caveman(4, 6);
    let cfg = AncConfig {
        rep: 1,
        mu: 3,
        epsilon: 0.25,
        k: 3,
        parallel_updates: true,
        batch,
        ..Default::default()
    };
    let mut engine = AncEngine::new(lg.graph, cfg, 42);
    let m = engine.graph().m() as u32;
    for step in 0..6u32 {
        let edges: Vec<u32> = (0..40).map(|i| (i * 7 + step * 3) % m).collect();
        let stats = engine.activate_batch(&edges, 1.0 + step as f64 * 0.4);
        assert_eq!(stats.edges_in, edges.len());
    }
    engine.check_invariants().unwrap();
    let snapshot = serde_json::to_string(&engine.to_snapshot()).unwrap();

    let n = engine.graph().n() as u32;
    let (g, pyr, levels) = (engine.graph(), engine.pyramids(), engine.num_levels());
    let labels_at = |level: usize, mode: ClusterMode| -> Vec<u32> {
        let mut cache = ClusterCache::new(levels);
        let (c, _) = cache.query(g, pyr, level, mode);
        (0..n).map(|v| c.label(v)).collect()
    };
    let mut labels = Vec::new();
    for level in 0..levels {
        let (power, even) = rayon::join(
            || labels_at(level, ClusterMode::Power),
            || labels_at(level, ClusterMode::Even),
        );
        labels.push(power);
        labels.push(even);
    }
    (snapshot, labels)
}

#[test]
fn perturbed_schedules_never_change_engine_state() {
    for batch in [BatchMode::Exact, BatchMode::Fused] {
        // Reference: single thread, no perturbation.
        std::env::remove_var("ANC_STRESS_SEED");
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let reference = ingest_fingerprint(batch);

        for threads in ["2", "4", "8"] {
            std::env::set_var("RAYON_NUM_THREADS", threads);
            for seed in ["0", "42", "3405691582"] {
                std::env::set_var("ANC_STRESS_SEED", seed);
                let run = ingest_fingerprint(batch);
                assert_eq!(
                    reference.0, run.0,
                    "{batch:?}: snapshot diverged from the 1-thread reference \
                     at {threads} threads, stress seed {seed}"
                );
                assert_eq!(
                    reference.1, run.1,
                    "{batch:?}: clusters diverged from the 1-thread reference \
                     at {threads} threads, stress seed {seed}"
                );
            }
        }
    }
    std::env::remove_var("ANC_STRESS_SEED");
    std::env::remove_var("RAYON_NUM_THREADS");
}
