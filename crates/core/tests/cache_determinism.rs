//! Thread-count determinism of the cluster cache's parallel cold voting
//! pass: the word-aligned chunks merge in input order, so the packed bitset
//! — and everything extracted from it — is byte-identical for any
//! `RAYON_NUM_THREADS`.
//!
//! This file holds a single `#[test]` on purpose: it mutates the global
//! `RAYON_NUM_THREADS` variable, which would race with sibling tests in the
//! same binary.

use anc_core::{AncConfig, AncEngine, ClusterCache, ClusterMode};
use anc_graph::gen::connected_caveman;

fn cold_fill_fingerprint(threads: &str) -> Vec<(Vec<u64>, Vec<u32>)> {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let lg = connected_caveman(4, 6);
    let cfg = AncConfig { rep: 1, mu: 3, epsilon: 0.25, k: 3, ..Default::default() };
    let mut engine = AncEngine::new(lg.graph, cfg, 42);
    let m = engine.graph().m() as u32;
    for i in 0..60u32 {
        engine.activate((i * 7 + 3) % m, 1.0 + i as f64 * 0.2);
    }
    // A standalone cache so every query is a parallel cold fill under the
    // current thread count.
    let mut cache = ClusterCache::new(engine.num_levels());
    let mut out = Vec::new();
    for level in 0..engine.num_levels() {
        let (c, _) = cache.query(engine.graph(), engine.pyramids(), level, ClusterMode::Power);
        let words = cache.voted_bits(level).expect("just filled").words().to_vec();
        let labels: Vec<u32> = (0..engine.graph().n() as u32).map(|v| c.label(v)).collect();
        out.push((words, labels));
    }
    out
}

#[test]
fn cold_fill_is_thread_count_invariant() {
    let runs: Vec<_> = ["1", "2", "4", "8"].iter().map(|t| cold_fill_fingerprint(t)).collect();
    std::env::remove_var("RAYON_NUM_THREADS");
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(&runs[0], run, "cold fill diverged between 1 and {} threads", [1, 2, 4, 8][i]);
    }
}
