//! Thread-count determinism of the cluster cache's parallel cold voting
//! pass: the word-aligned chunks merge in input order, so the packed bitset
//! — and everything extracted from it — is byte-identical for any
//! `RAYON_NUM_THREADS`. The sweep also fingerprints the engine snapshot and
//! runs a mixed workload whose cold fills execute from inside a nested
//! `rayon::join` (pool tasks run nested parallel calls inline).
//!
//! This file holds a single `#[test]` on purpose: it mutates the global
//! `RAYON_NUM_THREADS` variable, which would race with sibling tests in the
//! same binary.

use anc_core::{AncConfig, AncEngine, ClusterCache, ClusterMode};
use anc_graph::gen::connected_caveman;

struct Fingerprint {
    snapshot: String,
    /// Per level: cold-fill bitset words and power-mode labels.
    levels: Vec<(Vec<u64>, Vec<u32>)>,
    /// Per level: (power labels, even labels) extracted via nested `join`
    /// on fresh caches — each arm is its own parallel cold fill.
    joined: Vec<(Vec<u32>, Vec<u32>)>,
}

impl PartialEq for Fingerprint {
    fn eq(&self, other: &Self) -> bool {
        self.snapshot == other.snapshot
            && self.levels == other.levels
            && self.joined == other.joined
    }
}

fn cold_fill_fingerprint(threads: &str) -> Fingerprint {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let lg = connected_caveman(4, 6);
    let cfg = AncConfig { rep: 1, mu: 3, epsilon: 0.25, k: 3, ..Default::default() };
    let mut engine = AncEngine::new(lg.graph, cfg, 42);
    let m = engine.graph().m() as u32;
    for i in 0..60u32 {
        engine.activate((i * 7 + 3) % m, 1.0 + i as f64 * 0.2);
    }
    let snapshot = serde_json::to_string(&engine.to_snapshot()).unwrap();
    let n = engine.graph().n() as u32;

    // A standalone cache so every query is a parallel cold fill under the
    // current thread count.
    let mut cache = ClusterCache::new(engine.num_levels());
    let mut levels = Vec::new();
    for level in 0..engine.num_levels() {
        let (c, _) = cache.query(engine.graph(), engine.pyramids(), level, ClusterMode::Power);
        let words = cache.voted_bits(level).expect("just filled").words().to_vec();
        let labels: Vec<u32> = (0..n).map(|v| c.label(v)).collect();
        levels.push((words, labels));
    }

    // Mixed workload: both join arms run their own cold fill on a fresh
    // cache, so the fill's fan-out executes nested inside pool tasks. The
    // arms borrow graph/pyramids directly — the engine itself embeds a
    // RefCell cache and is not Sync.
    let (g, pyr, num_levels) = (engine.graph(), engine.pyramids(), engine.num_levels());
    let extract = |mode: ClusterMode, level: usize| -> Vec<u32> {
        let mut cache = ClusterCache::new(num_levels);
        let (c, _) = cache.query(g, pyr, level, mode);
        (0..n).map(|v| c.label(v)).collect()
    };
    let mut joined = Vec::new();
    for level in 0..num_levels {
        joined.push(rayon::join(
            || extract(ClusterMode::Power, level),
            || extract(ClusterMode::Even, level),
        ));
    }

    Fingerprint { snapshot, levels, joined }
}

#[test]
fn cold_fill_is_thread_count_invariant() {
    let runs: Vec<_> = ["1", "2", "4", "8"].iter().map(|t| cold_fill_fingerprint(t)).collect();
    std::env::remove_var("RAYON_NUM_THREADS");
    for (i, run) in runs.iter().enumerate().skip(1) {
        assert!(&runs[0] == run, "cold fill diverged between 1 and {} threads", [1, 2, 4, 8][i]);
    }
}
