//! Property test: checkpoint/restore is transparent at any point in any
//! activation stream — the restored engine is observationally identical and
//! continues identically.

use anc_core::{AncConfig, AncEngine};
use anc_graph::gen::erdos_renyi;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_transparent_mid_stream(
        seed in 0u64..16,
        split in 1usize..30,
        events in prop::collection::vec((0usize..10_000, 0.0f64..1.0), 2..40),
    ) {
        let g = erdos_renyi(30, 60, seed);
        if g.m() == 0 { return Ok(()); }
        let cfg = AncConfig { rep: 1, k: 2, ..Default::default() };
        let mut reference = AncEngine::new(g.clone(), cfg.clone(), seed);
        let mut live = AncEngine::new(g.clone(), cfg, seed);
        let m = g.m();
        let split = split.min(events.len());
        let mut t = 0.0;

        // Phase 1 on both engines.
        for &(sel, dt) in &events[..split] {
            t += dt;
            reference.activate((sel % m) as u32, t);
            live.activate((sel % m) as u32, t);
        }
        // Checkpoint `live`, drop it, restore.
        let mut buf = Vec::new();
        live.save_json(&mut buf).unwrap();
        drop(live);
        let mut restored = AncEngine::load_json(buf.as_slice())
            .map_err(|e| TestCaseError::fail(format!("restore failed: {e}")))?;

        // Phase 2 on reference and restored.
        for &(sel, dt) in &events[split..] {
            t += dt;
            reference.activate((sel % m) as u32, t);
            restored.activate((sel % m) as u32, t);
        }

        prop_assert_eq!(restored.activations(), reference.activations());
        for e in 0..m as u32 {
            let (a, b) = (restored.similarity(e), reference.similarity(e));
            prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                "edge {}: {} vs {}", e, a, b);
        }
        prop_assert!(restored.check_invariants().is_ok());
    }
}
