//! Property tests for the incremental cluster-query cache: across arbitrary
//! mixed streams of single activations, exact batches, and adaptive batches
//! (with rebuild thresholds low enough to trigger index reconstruction), a
//! cached `cluster_all` must stay label-identical to a cold recomputation at
//! every level and in both extraction modes — including across rescale
//! boundaries, which the cache must treat as no-ops.

use std::sync::Arc;

use anc_core::cluster::cluster_all;
use anc_core::{AncConfig, AncEngine, ClusterMode, QueryDecision};
use anc_graph::gen::{connected_caveman, erdos_renyi};
use anc_graph::Graph;
use proptest::prelude::*;

fn small_cfg() -> AncConfig {
    AncConfig {
        k: 2,
        rep: 1,
        mu: 2,
        epsilon: 0.2,
        // A tiny rescale interval so streams routinely cross rescale
        // boundaries — which must never dirty or regenerate the cache.
        rescale: anc_decay::RescaleConfig { every_activations: 9, exponent_guard: 200.0 },
        ..Default::default()
    }
}

fn graph_for(seed: u64) -> Graph {
    if seed.is_multiple_of(2) {
        erdos_renyi(24, 50, seed)
    } else {
        connected_caveman(3, 5).graph
    }
}

/// One step of the stream: which update path to take, the raw edges, and
/// the time increment.
#[derive(Clone, Debug)]
enum Step {
    Single(usize),
    Batch(Vec<usize>),
    Adaptive(Vec<usize>),
}

fn stream() -> impl Strategy<Value = (u64, Vec<(Step, f64)>)> {
    // The vendored proptest has no `prop_oneof`; pick the variant with a
    // discriminant drawn alongside the payload.
    let step =
        (0usize..3, prop::collection::vec(0usize..10_000, 1..20)).prop_map(
            |(kind, raw)| match kind {
                0 => Step::Single(raw[0]),
                1 => Step::Batch(raw),
                _ => Step::Adaptive(raw),
            },
        );
    (0u64..32, prop::collection::vec((step, 0.05f64..0.8), 1..8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance bar: cached ≡ cold at every level, both modes, after
    /// every step of a mixed update stream.
    #[test]
    fn cached_cluster_all_equals_cold_recompute((seed, steps) in stream()) {
        let g = graph_for(seed);
        let m = g.m();
        let mut engine = AncEngine::new(g, small_cfg(), seed);
        // Pre-warm a subset of levels so steps exercise both materialized
        // (dirty-repair) and unmaterialized (cold-fill) paths.
        for level in (0..engine.num_levels()).step_by(2) {
            engine.cluster_all_cached(level, ClusterMode::Power);
        }
        let mut t = 0.0;
        for (step, dt) in steps {
            t += dt;
            match step {
                Step::Single(raw) => {
                    engine.activate((raw % m) as u32, t);
                }
                Step::Batch(raw) => {
                    let batch: Vec<u32> = raw.into_iter().map(|i| (i % m) as u32).collect();
                    let _ = engine.activate_batch(&batch, t);
                }
                Step::Adaptive(raw) => {
                    let batch: Vec<u32> = raw.into_iter().map(|i| (i % m) as u32).collect();
                    // A low threshold so longer batches take the
                    // reconstruct-index path and hit cache invalidation.
                    let _ = engine.activate_batch_adaptive(&batch, t, Some(12));
                }
            }
            for level in 0..engine.num_levels() {
                for mode in [ClusterMode::Even, ClusterMode::Power] {
                    let (cached, stats) = engine.cluster_all_cached(level, mode);
                    let cold = cluster_all(engine.graph(), engine.pyramids(), level, mode);
                    prop_assert_eq!(
                        &*cached, &cold,
                        "level {} {:?} diverged (decision {:?})", level, mode, stats.decision
                    );
                }
            }
        }
        engine.check_invariants().unwrap();
    }

    /// Generation snapshot consistency: two queries with no intervening
    /// update report the same generation and share the same allocation; an
    /// index-moving update forces a fresh generation.
    #[test]
    fn generations_are_snapshot_consistent((seed, steps) in stream()) {
        let g = graph_for(seed);
        let m = g.m();
        let mut engine = AncEngine::new(g, small_cfg(), seed);
        let level = engine.default_level();
        let mut t = 0.0;
        for (step, dt) in steps {
            t += dt;
            let edges: Vec<u32> = match step {
                Step::Single(raw) => vec![(raw % m) as u32],
                Step::Batch(raw) | Step::Adaptive(raw) => {
                    raw.into_iter().map(|i| (i % m) as u32).collect()
                }
            };
            let _ = engine.activate_batch(&edges, t);
            let (a, sa) = engine.cluster_all_cached(level, ClusterMode::Power);
            let (b, sb) = engine.cluster_all_cached(level, ClusterMode::Power);
            prop_assert!(Arc::ptr_eq(&a, &b), "unchanged generation must share the Arc");
            prop_assert_eq!(sa.generation, sb.generation);
            prop_assert_eq!(sb.decision, QueryDecision::Hit);
            prop_assert_eq!(sb.dirty_edges, 0, "second read must see a clean level");
        }
    }

    /// Forcing the threshold to 0 (every repair becomes a wholesale rebuild)
    /// must never change any answer — the repair and rebuild paths are
    /// interchangeable implementations of the same function.
    #[test]
    fn rebuild_threshold_never_changes_answers((seed, steps) in stream()) {
        let g = graph_for(seed);
        let m = g.m();
        let mut repair = AncEngine::new(g.clone(), small_cfg(), seed);
        let mut rebuild = AncEngine::new(g, small_cfg(), seed);
        rebuild.cluster_cache_mut().set_dirty_rebuild_fraction(0.0);
        let level = repair.default_level();
        repair.cluster_all_cached(level, ClusterMode::Even);
        rebuild.cluster_all_cached(level, ClusterMode::Even);
        let mut t = 0.0;
        for (step, dt) in steps {
            t += dt;
            let edges: Vec<u32> = match step {
                Step::Single(raw) => vec![(raw % m) as u32],
                Step::Batch(raw) | Step::Adaptive(raw) => {
                    raw.into_iter().map(|i| (i % m) as u32).collect()
                }
            };
            let _ = repair.activate_batch(&edges, t);
            let _ = rebuild.activate_batch(&edges, t);
            let (a, _) = repair.cluster_all_cached(level, ClusterMode::Even);
            let (b, _) = rebuild.cluster_all_cached(level, ClusterMode::Even);
            prop_assert_eq!(&*a, &*b, "threshold must be behavior-neutral");
        }
    }
}
