//! Property tests for the incremental Voronoi-partition updates
//! (Algorithms 1–3): after *any* sequence of positive weight changes, the
//! incrementally maintained partition must satisfy all shortest-path
//! invariants and agree in distances with a from-scratch rebuild.

use anc_core::voronoi::VoronoiPartition;
use anc_graph::gen::{connected_caveman, erdos_renyi};
use anc_graph::{EdgeId, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct UpdatePlan {
    graph_seed: u64,
    seed_count: usize,
    /// (edge index selector, new weight) pairs.
    changes: Vec<(usize, f64)>,
}

fn plan_strategy() -> impl Strategy<Value = UpdatePlan> {
    // Weights are drawn as 10^u with u ∈ [-4, 4]: the extreme dynamic range
    // exercises the float-absorption path in Probe (a parent improvement can
    // round to exactly the child's stored distance), which once produced
    // stale-seed corruption.
    (0u64..64, 1usize..6, prop::collection::vec((0usize..10_000, -4.0f64..4.0), 1..24)).prop_map(
        |(graph_seed, seed_count, changes)| UpdatePlan {
            graph_seed,
            seed_count,
            changes: changes.into_iter().map(|(sel, exp)| (sel, 10f64.powf(exp))).collect(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ER graphs: arbitrary update sequences keep invariants and match a
    /// rebuild.
    #[test]
    fn er_updates_match_rebuild(plan in plan_strategy()) {
        let g = erdos_renyi(30, 60, plan.graph_seed);
        if g.m() == 0 { return Ok(()); }
        let n = g.n();
        let seeds: Vec<NodeId> = (0..plan.seed_count.min(n))
            .map(|i| ((i * 997 + plan.graph_seed as usize) % n) as NodeId)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut w = vec![1.0f64; g.m()];
        let mut p = VoronoiPartition::build(&g, &w, seeds.clone());
        for &(sel, new_w) in &plan.changes {
            let e = (sel % g.m()) as EdgeId;
            let old = w[e as usize];
            w[e as usize] = new_w;
            p.on_weight_change(&g, &w, e, old);
            prop_assert!(p.check_invariants(&g, &w).is_ok(),
                "invariants: {:?}", p.check_invariants(&g, &w));
        }
        let fresh = VoronoiPartition::build(&g, &w, seeds);
        for v in 0..n as NodeId {
            let (a, b) = (p.dist(v), fresh.dist(v));
            if a.is_finite() || b.is_finite() {
                prop_assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()),
                    "node {} live {} rebuild {}", v, a, b);
            }
        }
    }

    /// Caveman graphs (strong cluster structure, bridges): same property.
    #[test]
    fn caveman_updates_match_rebuild(plan in plan_strategy()) {
        let lg = connected_caveman(4, 5);
        let g = &lg.graph;
        let n = g.n();
        let seeds: Vec<NodeId> = (0..plan.seed_count.min(n))
            .map(|i| ((i * 7 + 1) % n) as NodeId)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut w = vec![1.0f64; g.m()];
        let mut p = VoronoiPartition::build(g, &w, seeds.clone());
        for &(sel, new_w) in &plan.changes {
            let e = (sel % g.m()) as EdgeId;
            let old = w[e as usize];
            w[e as usize] = new_w;
            p.on_weight_change(g, &w, e, old);
        }
        prop_assert!(p.check_invariants(g, &w).is_ok());
        let fresh = VoronoiPartition::build(g, &w, seeds);
        for v in 0..n as NodeId {
            prop_assert!((p.dist(v) - fresh.dist(v)).abs() < 1e-7 * (1.0 + fresh.dist(v).abs()));
        }
    }

    /// Weight changes far from the seeds leave seed distances untouched
    /// (locality, Lemma 11/12 flavor).
    #[test]
    fn seeds_never_move(plan in plan_strategy()) {
        let g = erdos_renyi(25, 50, plan.graph_seed ^ 0xabc);
        if g.m() == 0 { return Ok(()); }
        let seeds: Vec<NodeId> = vec![0, (g.n() / 2) as NodeId];
        let mut w = vec![1.0f64; g.m()];
        let mut p = VoronoiPartition::build(&g, &w, seeds.clone());
        for &(sel, new_w) in &plan.changes {
            let e = (sel % g.m()) as EdgeId;
            let old = w[e as usize];
            w[e as usize] = new_w;
            p.on_weight_change(&g, &w, e, old);
            for &s in &seeds {
                prop_assert_eq!(p.dist(s), 0.0);
                prop_assert_eq!(p.seed_of(s), s);
            }
        }
    }
}
