//! The parallelism-never-changes-results invariant (DESIGN.md §7): the
//! engine's state is a pure function of (graph, config, seed, stream). The
//! rayon worker count is **not** an input — the grouped σ recomputation and
//! index-repair fan-outs split work into contiguous, order-preserving
//! chunks, so any thread count produces byte-identical snapshots.
//!
//! This file holds a single `#[test]` on purpose: it mutates the global
//! `RAYON_NUM_THREADS` variable, which would race with sibling tests in the
//! same binary.

use anc_core::{AncConfig, AncEngine, BatchMode};
use anc_graph::gen::connected_caveman;

fn ingest_snapshot(threads: &str, batch: BatchMode) -> String {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let lg = connected_caveman(4, 6);
    let cfg = AncConfig {
        rep: 1,
        mu: 3,
        epsilon: 0.25,
        k: 3,
        parallel_updates: true,
        batch,
        ..Default::default()
    };
    let mut engine = AncEngine::new(lg.graph, cfg, 42);
    let m = engine.graph().m() as u32;
    for step in 0..6u32 {
        let edges: Vec<u32> = (0..40).map(|i| (i * 7 + step * 3) % m).collect();
        let stats = engine.activate_batch(&edges, 1.0 + step as f64 * 0.4);
        assert_eq!(stats.edges_in, edges.len());
    }
    engine.check_invariants().unwrap();
    serde_json::to_string(&engine.to_snapshot()).unwrap()
}

#[test]
fn thread_count_never_changes_results() {
    for batch in [BatchMode::Exact, BatchMode::Fused] {
        let snapshots: Vec<String> =
            ["1", "2", "8"].iter().map(|t| ingest_snapshot(t, batch)).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(snapshots[0], snapshots[1], "{batch:?}: 1 vs 2 threads diverged");
        assert_eq!(snapshots[0], snapshots[2], "{batch:?}: 1 vs 8 threads diverged");
    }
}
