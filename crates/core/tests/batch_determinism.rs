//! The parallelism-never-changes-results invariant (DESIGN.md §7): the
//! engine's state is a pure function of (graph, config, seed, stream). The
//! rayon worker count is **not** an input — the grouped σ recomputation and
//! index-repair fan-outs split work into contiguous, order-preserving
//! chunks, so any thread count produces byte-identical snapshots *and*
//! cluster extractions, even when the extraction itself runs from inside a
//! nested `rayon::join` (pool tasks run nested parallel calls inline).
//!
//! This file holds a single `#[test]` on purpose: it mutates the global
//! `RAYON_NUM_THREADS` variable, which would race with sibling tests in the
//! same binary.

use anc_core::{AncConfig, AncEngine, BatchMode, ClusterCache, ClusterMode};
use anc_graph::gen::connected_caveman;

/// Snapshot JSON plus per-level cluster labels, extracted through a nested
/// `join` so the sweep exercises parallel-inside-parallel scheduling.
fn ingest_fingerprint(threads: &str, batch: BatchMode) -> (String, Vec<Vec<u32>>) {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let lg = connected_caveman(4, 6);
    let cfg = AncConfig {
        rep: 1,
        mu: 3,
        epsilon: 0.25,
        k: 3,
        parallel_updates: true,
        batch,
        ..Default::default()
    };
    let mut engine = AncEngine::new(lg.graph, cfg, 42);
    let m = engine.graph().m() as u32;
    for step in 0..6u32 {
        let edges: Vec<u32> = (0..40).map(|i| (i * 7 + step * 3) % m).collect();
        let stats = engine.activate_batch(&edges, 1.0 + step as f64 * 0.4);
        assert_eq!(stats.edges_in, edges.len());
    }
    engine.check_invariants().unwrap();
    let snapshot = serde_json::to_string(&engine.to_snapshot()).unwrap();

    // Mixed workload: both arms of the join extract clusters on their own
    // standalone cache (the engine's embedded cache is a RefCell and not
    // Sync), so each arm's parallel cold fill runs nested inside pool
    // tasks.
    let n = engine.graph().n() as u32;
    let (g, pyr, levels) = (engine.graph(), engine.pyramids(), engine.num_levels());
    let labels_at = |level: usize, mode: ClusterMode| -> Vec<u32> {
        let mut cache = ClusterCache::new(levels);
        let (c, _) = cache.query(g, pyr, level, mode);
        (0..n).map(|v| c.label(v)).collect()
    };
    let mut labels = Vec::new();
    for level in 0..levels {
        let (power, even) = rayon::join(
            || labels_at(level, ClusterMode::Power),
            || labels_at(level, ClusterMode::Even),
        );
        labels.push(power);
        labels.push(even);
    }
    (snapshot, labels)
}

#[test]
fn thread_count_never_changes_results() {
    for batch in [BatchMode::Exact, BatchMode::Fused] {
        let runs: Vec<_> =
            ["1", "2", "4", "8"].iter().map(|t| ingest_fingerprint(t, batch)).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        for (i, run) in runs.iter().enumerate().skip(1) {
            let t = ["1", "2", "4", "8"][i];
            assert_eq!(runs[0].0, run.0, "{batch:?}: snapshot diverged between 1 and {t} threads");
            assert_eq!(runs[0].1, run.1, "{batch:?}: clusters diverged between 1 and {t} threads");
        }
    }
}
