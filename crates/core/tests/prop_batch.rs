//! Property tests for the batch-ingestion pipeline: in the default
//! [`BatchMode::Exact`], `activate_batch` is an exact refactoring of the
//! serial per-activation loop — same similarities (bit for bit), same
//! clusterings, across arbitrary streams, batch shapes and rescale timing.

use anc_core::{AncConfig, AncEngine, BatchMode, ClusterMode};
use anc_graph::gen::{connected_caveman, erdos_renyi};
use anc_graph::Graph;
use proptest::prelude::*;

fn small_cfg() -> AncConfig {
    AncConfig {
        k: 2,
        rep: 1,
        mu: 2,
        epsilon: 0.2,
        // A tiny rescale interval so streams routinely cross mid-batch
        // rescales — the trickiest point of the deferred-repair design.
        rescale: anc_decay::RescaleConfig { every_activations: 9, exponent_guard: 200.0 },
        ..Default::default()
    }
}

fn graph_for(seed: u64) -> Graph {
    if seed.is_multiple_of(2) {
        erdos_renyi(24, 50, seed)
    } else {
        connected_caveman(3, 5).graph
    }
}

/// Batches of raw edge indices with per-batch time increments.
fn batched_stream() -> impl Strategy<Value = (u64, Vec<(Vec<usize>, f64)>)> {
    (
        0u64..32,
        prop::collection::vec((prop::collection::vec(0usize..10_000, 1..14), 0.05f64..0.8), 1..8),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_batch_equals_serial_activation_loop((seed, stream) in batched_stream()) {
        let g = graph_for(seed);
        let m = g.m();
        let mut serial = AncEngine::new(g.clone(), small_cfg(), seed);
        let mut batched = AncEngine::new(g, small_cfg(), seed);
        let mut t = 0.0;
        for (raw, dt) in stream {
            t += dt;
            let batch: Vec<u32> = raw.into_iter().map(|i| (i % m) as u32).collect();
            for &e in &batch {
                serial.activate(e, t);
            }
            let stats = batched.activate_batch(&batch, t);
            prop_assert_eq!(stats.edges_in, batch.len());
        }
        // Identical anchored similarities, bit for bit…
        for (e, (a, b)) in serial.sim_anchored().iter().zip(batched.sim_anchored()).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "sim of edge {} diverged", e);
        }
        prop_assert_eq!(serial.rescales(), batched.rescales());
        // …and identical clusterings at every level, both semantics.
        for level in 0..serial.num_levels() {
            for mode in [ClusterMode::Even, ClusterMode::Power] {
                prop_assert_eq!(
                    serial.cluster_all(level, mode),
                    batched.cluster_all(level, mode),
                    "clustering diverged at level {}", level
                );
            }
        }
        batched.check_invariants().unwrap();
    }

    #[test]
    fn fused_batch_keeps_invariants((seed, stream) in batched_stream()) {
        let g = graph_for(seed);
        let m = g.m();
        let cfg = AncConfig { batch: BatchMode::Fused, ..small_cfg() };
        let mut engine = AncEngine::new(g, cfg, seed);
        let mut t = 0.0;
        let mut total = 0usize;
        for (raw, dt) in stream {
            t += dt;
            let batch: Vec<u32> = raw.into_iter().map(|i| (i % m) as u32).collect();
            let stats = engine.activate_batch(&batch, t);
            // Fused σ work is bounded by the deduplicated trigger set.
            prop_assert!(stats.sigma_recomputes <= 2 * batch.len());
            prop_assert!(stats.dirty_edges <= batch.len());
            total += batch.len();
        }
        prop_assert_eq!(engine.activations(), total as u64);
        engine.check_invariants().unwrap();
    }
}
