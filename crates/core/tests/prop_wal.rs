//! Crash-recovery property tests for the append-only activation log
//! (DESIGN.md §11): a log truncated at *any* byte offset — record boundary
//! or mid-record — recovers to exactly the state reached by replaying the
//! longest verifiable record prefix over the base snapshot, bit-identically
//! (compared via Exact binary snapshot bytes). Corrupted headers and
//! damaged record payloads surface as the right [`RestoreError`] variants.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use anc_core::persist::{SNAPSHOT_FILE, WAL_FILE};
use anc_core::{
    AncConfig, AncEngine, DurabilityOptions, DurableEngine, RestoreError, SnapshotProfile,
    WalReader,
};
use anc_decay::RescaleConfig;
use anc_graph::gen::erdos_renyi;
use proptest::prelude::*;

/// Fresh scratch directory per case (proptest shrinks re-enter the test).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("anc-prop-wal-{tag}-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One fuzzed durable operation.
#[derive(Clone, Debug)]
enum Op {
    Activate(usize),
    Batch(Vec<usize>),
    Adaptive(Vec<usize>),
    Reinforce(Vec<usize>),
    Rescale,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 0usize..10_000, prop::collection::vec(0usize..10_000, 1..12)).prop_map(
        |(kind, single, list)| match kind {
            0 => Op::Activate(single),
            1 => Op::Batch(list),
            2 => Op::Adaptive(list),
            3 => Op::Reinforce(list),
            _ => Op::Rescale,
        },
    )
}

/// Rescale every 7 activations so streams cross rescale boundaries and the
/// log interleaves with triggered (unlogged, deterministic) rescales.
fn fuzz_cfg() -> AncConfig {
    AncConfig {
        k: 2,
        rep: 1,
        mu: 2,
        epsilon: 0.2,
        rescale: RescaleConfig { every_activations: 7, exponent_guard: 200.0 },
        ..Default::default()
    }
}

fn apply_durable(d: &mut DurableEngine, op: &Op, t: f64) {
    let m = d.engine().graph().m();
    let to_edges = |sels: &[usize]| -> Vec<u32> { sels.iter().map(|s| (s % m) as u32).collect() };
    match op {
        Op::Activate(sel) => d.activate((sel % m) as u32, t).unwrap(),
        Op::Batch(sels) => {
            let _ = d.activate_batch(&to_edges(sels), t).unwrap();
        }
        Op::Adaptive(sels) => {
            let _ = d.activate_batch_adaptive(&to_edges(sels), t, Some(12)).unwrap();
        }
        Op::Reinforce(sels) => d.reinforce_edges(&to_edges(sels)).unwrap(),
        Op::Rescale => d.force_rescale().unwrap(),
    }
}

fn exact_bytes(engine: &AncEngine) -> Vec<u8> {
    let mut buf = Vec::new();
    engine.save_binary(&mut buf, SnapshotProfile::Exact).unwrap();
    buf
}

/// No compaction mid-stream: the whole history stays in one log file, so a
/// truncation point can land inside any record of the run.
fn no_compact() -> DurabilityOptions {
    DurabilityOptions { compact_every: usize::MAX, profile: SnapshotProfile::Exact }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Chop the log at an arbitrary byte offset; recovery must equal an
    /// explicit prefix replay over the base snapshot, bit for bit, and the
    /// recovered engine must still satisfy every invariant.
    #[test]
    fn truncated_log_recovers_to_prefix_replay(
        seed in 0u64..16,
        ops in prop::collection::vec((op_strategy(), 0.01f64..0.8), 1..14),
        cut_sel in 0usize..100_000,
    ) {
        let g = erdos_renyi(16, 32, seed);
        if g.m() == 0 { return Ok(()); }
        let dir = scratch("trunc");
        let engine = AncEngine::new(g, fuzz_cfg(), seed);
        let mut durable = DurableEngine::create(engine, &dir, no_compact()).unwrap();
        let mut t = 0.0;
        for (op, dt) in &ops {
            t += dt;
            apply_durable(&mut durable, op, t);
        }
        drop(durable);

        let snapshot = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
        let log = std::fs::read(dir.join(WAL_FILE)).unwrap();
        // Any offset from "just the header" to "one byte short of complete".
        let cut = 20 + cut_sel % (log.len() - 20);
        let torn = &log[..cut];

        // Reference: base snapshot + longest verifiable record prefix.
        let mut reference = AncEngine::load_binary(snapshot.as_slice()).unwrap();
        let mut reader = WalReader::new(torn).unwrap();
        let mut prefix_records = 0u64;
        loop {
            match reader.next() {
                Ok(Some(record)) => { record.apply(&mut reference); prefix_records += 1; }
                Ok(None) => break,
                Err(RestoreError::Truncated { .. })
                | Err(RestoreError::ChecksumMismatch { .. })
                | Err(RestoreError::Codec(_)) => break,
                Err(other) => panic!("unexpected reader error: {other}"),
            }
        }

        // Crash-recover from the torn file.
        let crash_dir = scratch("trunc-crash");
        std::fs::write(crash_dir.join(SNAPSHOT_FILE), &snapshot).unwrap();
        std::fs::write(crash_dir.join(WAL_FILE), torn).unwrap();
        let recovered = DurableEngine::open(&crash_dir, no_compact()).unwrap();

        prop_assert!(recovered.engine().check_invariants().is_ok());
        prop_assert_eq!(recovered.wal_records(), prefix_records);
        prop_assert_eq!(
            exact_bytes(recovered.engine()),
            exact_bytes(&reference),
            "recovered state diverged from prefix replay (cut at {} of {})",
            cut, log.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
    }

    /// Flip a byte anywhere in the log: recovery still succeeds (damage is
    /// indistinguishable from a torn tail and truncated away), and a direct
    /// read of the damaged area yields the right typed error.
    #[test]
    fn corrupted_log_yields_typed_error_and_recovers(
        seed in 0u64..16,
        ops in prop::collection::vec((op_strategy(), 0.01f64..0.8), 1..10),
        flip_sel in 0usize..100_000,
    ) {
        let g = erdos_renyi(16, 32, seed);
        if g.m() == 0 { return Ok(()); }
        let dir = scratch("flip");
        let engine = AncEngine::new(g, fuzz_cfg(), seed);
        let mut durable = DurableEngine::create(engine, &dir, no_compact()).unwrap();
        let mut t = 0.0;
        for (op, dt) in &ops {
            t += dt;
            apply_durable(&mut durable, op, t);
        }
        drop(durable);

        let mut log = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let at = flip_sel % log.len();
        log[at] ^= 0x20;

        if at < 20 {
            // Header damage: magic, version, base or header CRC.
            let err = match WalReader::new(&log) {
                Err(e) => e,
                Ok(_) => panic!("damaged header accepted"),
            };
            prop_assert!(
                matches!(
                    err,
                    RestoreError::BadMagic
                        | RestoreError::ChecksumMismatch { .. }
                        | RestoreError::UnsupportedVersion(_)
                ),
                "unexpected header error: {}", err
            );
        } else {
            // Body damage: the reader must stop with a typed error (or, if
            // the flip landed in a length field making a record run past
            // the end, a truncation) — never a panic, never a bad record.
            let mut reader = WalReader::new(&log).unwrap();
            let mut scratch_engine = AncEngine::load_binary(
                std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap().as_slice()).unwrap();
            loop {
                match reader.next() {
                    Ok(Some(record)) => record.apply(&mut scratch_engine),
                    Ok(None) => break,
                    Err(RestoreError::Truncated { .. })
                    | Err(RestoreError::ChecksumMismatch { .. })
                    | Err(RestoreError::Codec(_)) => break,
                    Err(other) => panic!("unexpected reader error: {other}"),
                }
            }
            // And full recovery over the damaged file still comes up green.
            std::fs::write(dir.join(WAL_FILE), &log).unwrap();
            let recovered = DurableEngine::open(&dir, no_compact()).unwrap();
            prop_assert!(recovered.engine().check_invariants().is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
