//! Fuzz-style invariant testing (DESIGN.md §8): random activation streams —
//! mixed single/batch/adaptive, small enough rescale intervals to cross
//! several rescale boundaries — with [`AncEngine::check_invariants`]
//! asserted after **every** step, plus negative tests that corrupted
//! snapshots are rejected with the right [`InvariantViolation`] variant.

use anc_core::{AncConfig, AncEngine, InvariantViolation, RestoreError, SnapshotProfile};
use anc_decay::RescaleConfig;
use anc_graph::gen::{connected_caveman, erdos_renyi};
use proptest::prelude::*;

/// One fuzzed stream event: a single activation or a batch.
#[derive(Clone, Debug)]
enum Event {
    Single(usize),
    Batch(Vec<usize>),
    Adaptive(Vec<usize>),
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (0u8..3, 0usize..10_000, prop::collection::vec(0usize..10_000, 1..24)).prop_map(
        |(kind, single, batch)| match kind {
            0 => Event::Single(single),
            1 => Event::Batch(batch),
            _ => Event::Adaptive(batch),
        },
    )
}

fn stream_strategy() -> impl Strategy<Value = (u64, Vec<(Event, f64)>)> {
    (0u64..32, prop::collection::vec((event_strategy(), 0.0f64..1.5), 1..16))
}

/// Rescale every 9 activations so a typical fuzz stream crosses several
/// PosM/NegM rescale boundaries (Lemma 10's exercised path).
fn fuzz_cfg() -> AncConfig {
    AncConfig {
        k: 2,
        rep: 1,
        mu: 2,
        epsilon: 0.2,
        rescale: RescaleConfig { every_activations: 9, exponent_guard: 200.0 },
        ..Default::default()
    }
}

fn apply(engine: &mut AncEngine, event: &Event, t: f64) {
    let m = engine.graph().m();
    match event {
        Event::Single(sel) => engine.activate((sel % m) as u32, t),
        Event::Batch(sels) => {
            let edges: Vec<u32> = sels.iter().map(|s| (s % m) as u32).collect();
            let stats = engine.activate_batch(&edges, t);
            assert_eq!(stats.edges_in, edges.len());
        }
        Event::Adaptive(sels) => {
            let edges: Vec<u32> = sels.iter().map(|s| (s % m) as u32).collect();
            // A tiny threshold makes some adaptive calls take the rebuild
            // path, the rest the grouped-repair path.
            let stats = engine.activate_batch_adaptive(&edges, t, Some(12));
            assert_eq!(stats.edges_in, edges.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every invariant holds after every step of a mixed stream.
    #[test]
    fn invariants_hold_after_every_step((seed, events) in stream_strategy()) {
        let g = erdos_renyi(20, 45, seed);
        if g.m() == 0 { return Ok(()); }
        let mut engine = AncEngine::new(g, fuzz_cfg(), seed);
        let mut t = 0.0;
        for (event, dt) in &events {
            t += dt;
            apply(&mut engine, event, t);
            if let Err(v) = engine.check_invariants() {
                return Err(TestCaseError::fail(format!("after {event:?} at t={t}: {v}")));
            }
        }
    }

    /// Snapshot round-trips mid-stream preserve the invariants and the
    /// state: decayed quantities byte-identical, index distances equal up
    /// to rounding (the restore derives `1/S*` afresh, so repairs after it
    /// can differ in the last ulps from the live engine's accumulated
    /// rescale products).
    #[test]
    fn snapshot_roundtrip_mid_stream_keeps_invariants((seed, events) in stream_strategy()) {
        let lg = connected_caveman(3, 5);
        let mut engine = AncEngine::new(lg.graph, fuzz_cfg(), seed);
        let mut t = 0.0;
        let half = events.len() / 2;
        for (event, dt) in &events[..half] {
            t += dt;
            apply(&mut engine, event, t);
        }
        let snap = serde_json::to_string(&engine.to_snapshot()).unwrap();
        let mut restored = AncEngine::from_snapshot(
            serde_json::from_str(&snap).unwrap()).unwrap();
        prop_assert!(restored.check_invariants().is_ok());
        for (event, dt) in &events[half..] {
            t += dt;
            apply(&mut engine, event, t);
            apply(&mut restored, event, t);
            prop_assert!(restored.check_invariants().is_ok());
        }
        let (a, b) = (engine.to_snapshot(), restored.to_snapshot());
        prop_assert_eq!(a.activations, b.activations);
        prop_assert_eq!(a.rescales, b.rescales);
        for field in [
            (serde_json::to_string(&a.activeness).unwrap(),
             serde_json::to_string(&b.activeness).unwrap(), "activeness"),
            (serde_json::to_string(&a.node_sum).unwrap(),
             serde_json::to_string(&b.node_sum).unwrap(), "node_sum"),
            (serde_json::to_string(&a.sim).unwrap(),
             serde_json::to_string(&b.sim).unwrap(), "sim"),
            (serde_json::to_string(&a.clock).unwrap(),
             serde_json::to_string(&b.clock).unwrap(), "clock"),
        ] {
            prop_assert_eq!(field.0, field.1, "restored engine diverged in {}", field.2);
        }
        for p in 0..engine.pyramids().k() {
            for l in 0..engine.num_levels() {
                for v in 0..engine.graph().n() as u32 {
                    let (da, db) = (
                        engine.pyramids().partition(p, l).dist(v),
                        restored.pyramids().partition(p, l).dist(v),
                    );
                    prop_assert!((da - db).abs() <= 1e-9 * (1.0 + db.abs()),
                        "pyramid {} level {} node {}: {} vs {}", p, l, v, da, db);
                }
            }
        }
    }

    /// Binary snapshots round-trip at every step of a mixed stream that
    /// crosses rescale boundaries (DESIGN.md §11): both profiles restore
    /// invariant-clean and re-save byte-identically (idempotent encoding),
    /// and an Exact restore then *evolves* bit-identically to the live
    /// engine under the remaining stream suffix.
    #[test]
    fn binary_roundtrip_fuzz_mid_stream((seed, events) in stream_strategy()) {
        let g = erdos_renyi(20, 45, seed);
        if g.m() == 0 { return Ok(()); }
        let mut engine = AncEngine::new(g, fuzz_cfg(), seed);
        let mut t = 0.0;
        for (event, dt) in &events {
            t += dt;
            apply(&mut engine, event, t);

            let mut exact = Vec::new();
            engine.save_binary(&mut exact, SnapshotProfile::Exact).unwrap();
            let restored = AncEngine::load_binary(exact.as_slice()).unwrap();
            prop_assert!(restored.check_invariants().is_ok());
            let mut resave = Vec::new();
            restored.save_binary(&mut resave, SnapshotProfile::Exact).unwrap();
            prop_assert_eq!(&exact, &resave, "Exact re-save diverged at t={}", t);

            let mut compact = Vec::new();
            engine.save_binary(&mut compact, SnapshotProfile::Compact).unwrap();
            let restored_c = AncEngine::load_binary(compact.as_slice()).unwrap();
            prop_assert!(restored_c.check_invariants().is_ok());
            let mut resave_c = Vec::new();
            restored_c.save_binary(&mut resave_c, SnapshotProfile::Compact).unwrap();
            prop_assert_eq!(&compact, &resave_c, "Compact re-save diverged at t={}", t);
        }

        // An Exact restore taken now must track the live engine through a
        // continuation stream: decayed state byte-identical, index distances
        // equal up to last-ulp rounding (the restore derives `1/S*` afresh,
        // so post-restore repairs can differ from the live engine's
        // accumulated rescale products in the final bits).
        let mut exact = Vec::new();
        engine.save_binary(&mut exact, SnapshotProfile::Exact).unwrap();
        let mut restored = AncEngine::load_binary(exact.as_slice()).unwrap();
        for (event, dt) in &events {
            t += dt;
            apply(&mut engine, event, t);
            apply(&mut restored, event, t);
            prop_assert!(restored.check_invariants().is_ok());
        }
        let (a, b) = (engine.to_snapshot(), restored.to_snapshot());
        prop_assert_eq!(a.activations, b.activations);
        prop_assert_eq!(a.rescales, b.rescales);
        prop_assert_eq!(
            serde_json::to_string(&a.activeness).unwrap(),
            serde_json::to_string(&b.activeness).unwrap(),
            "activeness diverged under continuation"
        );
        prop_assert_eq!(
            serde_json::to_string(&a.sim).unwrap(),
            serde_json::to_string(&b.sim).unwrap(),
            "similarity diverged under continuation"
        );
        for p in 0..engine.pyramids().k() {
            for l in 0..engine.num_levels() {
                for v in 0..engine.graph().n() as u32 {
                    let (da, db) = (
                        engine.pyramids().partition(p, l).dist(v),
                        restored.pyramids().partition(p, l).dist(v),
                    );
                    // Exact equality covers matching infinities on nodes
                    // unreachable from every seed (∞ − ∞ is NaN).
                    prop_assert!(da == db || (da - db).abs() <= 1e-9 * (1.0 + db.abs()),
                        "pyramid {} level {} node {}: {} vs {}", p, l, v, da, db);
                }
            }
        }
    }
}

// --- negative tests: corruption is caught with the right variant ---------

fn snapshot_after_activity() -> anc_core::EngineSnapshot {
    let lg = connected_caveman(3, 4);
    let mut engine = AncEngine::new(lg.graph, fuzz_cfg(), 7);
    let m = engine.graph().m() as u32;
    for i in 0..20u32 {
        engine.activate(i % m, 0.3 * f64::from(i));
    }
    engine.to_snapshot()
}

#[test]
fn corrupted_similarity_is_rejected_as_similarity_violation() {
    let mut snap = snapshot_after_activity();
    snap.sim[0] = -1.0; // similarities must be strictly positive (Eq. 1)
    let err = AncEngine::from_snapshot(snap).err().expect("corrupt snapshot accepted");
    assert!(
        matches!(err, RestoreError::Invariant(InvariantViolation::Similarity(_))),
        "expected Similarity violation, got {err}"
    );
}

#[test]
fn non_finite_similarity_is_rejected() {
    let mut snap = snapshot_after_activity();
    snap.sim[1] = f64::NAN;
    let err = AncEngine::from_snapshot(snap).err().expect("corrupt snapshot accepted");
    assert!(
        matches!(err, RestoreError::Invariant(InvariantViolation::Similarity(_))),
        "expected Similarity violation, got {err}"
    );
}

#[test]
fn live_engine_detects_activeness_corruption() {
    let lg = connected_caveman(3, 4);
    let mut engine = AncEngine::new(lg.graph, fuzz_cfg(), 7);
    engine.activate(0, 1.0);
    assert!(engine.check_invariants().is_ok());
    // Desynchronize the cached per-node sums from the edge activeness
    // (test-only accessor): Def. 2's A(v) = Σ activeness must now fail.
    engine.corrupt_node_sum_for_test(0, 1e-3);
    let err = engine.check_invariants().unwrap_err();
    assert!(
        matches!(err, InvariantViolation::Activeness(_)),
        "expected Activeness violation, got {err}"
    );
}
