//! End-to-end property tests for the online engine: arbitrary activation
//! streams must (i) keep every engine invariant, (ii) leave the index
//! identical to a from-scratch reconstruction over the same weights, and
//! (iii) be unaffected by when batched rescales happen.

use anc_core::{AncConfig, AncEngine, ClusterMode};
use anc_decay::RescaleConfig;
use anc_graph::gen::{connected_caveman, erdos_renyi};
use proptest::prelude::*;

fn stream_strategy() -> impl Strategy<Value = (u64, Vec<(usize, f64)>)> {
    (0u64..32, prop::collection::vec((0usize..10_000, 0.0f64..1.5), 1..40))
}

fn small_cfg() -> AncConfig {
    AncConfig { k: 2, rep: 1, mu: 2, epsilon: 0.2, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_invariants_under_streams((seed, events) in stream_strategy()) {
        let g = erdos_renyi(24, 50, seed);
        if g.m() == 0 { return Ok(()); }
        let mut engine = AncEngine::new(g, small_cfg(), seed);
        let m = engine.graph().m();
        let mut t = 0.0;
        for &(sel, dt) in &events {
            t += dt;
            engine.activate((sel % m) as u32, t);
        }
        prop_assert!(engine.check_invariants().is_ok(),
            "{:?}", engine.check_invariants());
    }

    #[test]
    fn online_equals_reconstruct((seed, events) in stream_strategy()) {
        let lg = connected_caveman(3, 5);
        let mut engine = AncEngine::new(lg.graph, small_cfg(), seed);
        let m = engine.graph().m();
        let mut t = 0.0;
        for &(sel, dt) in &events {
            t += dt;
            engine.activate((sel % m) as u32, t);
        }
        let k = engine.pyramids().k();
        let levels = engine.num_levels();
        let n = engine.graph().n();
        let live: Vec<f64> = (0..k)
            .flat_map(|p| (0..levels).flat_map(move |l| (0..n).map(move |v| (p, l, v))))
            .map(|(p, l, v)| engine.pyramids().partition(p, l).dist(v as u32))
            .collect();
        engine.reconstruct_index();
        let fresh: Vec<f64> = (0..k)
            .flat_map(|p| (0..levels).flat_map(move |l| (0..n).map(move |v| (p, l, v))))
            .map(|(p, l, v)| engine.pyramids().partition(p, l).dist(v as u32))
            .collect();
        for (a, b) in live.iter().zip(&fresh) {
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "live {} vs rebuild {}", a, b);
        }
    }

    /// Aggressive rescaling (every 2 activations) must give the same
    /// clustering as lazy rescaling (never), on the same stream.
    #[test]
    fn rescale_schedule_is_unobservable((seed, events) in stream_strategy()) {
        let lg = connected_caveman(3, 4);
        let eager_cfg = AncConfig {
            rescale: RescaleConfig { every_activations: 2, exponent_guard: 200.0 },
            ..small_cfg()
        };
        let lazy_cfg = AncConfig {
            rescale: RescaleConfig { every_activations: usize::MAX, exponent_guard: 400.0 },
            ..small_cfg()
        };
        let mut eager = AncEngine::new(lg.graph.clone(), eager_cfg, seed);
        let mut lazy = AncEngine::new(lg.graph.clone(), lazy_cfg, seed);
        let m = lg.graph.m();
        let mut t = 0.0;
        for &(sel, dt) in &events {
            t += dt;
            eager.activate((sel % m) as u32, t);
            lazy.activate((sel % m) as u32, t);
        }
        // True similarities agree…
        for e in 0..m as u32 {
            let (a, b) = (eager.similarity(e), lazy.similarity(e));
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "edge {}: eager {} lazy {}", e, a, b);
        }
        // …and so do the clusterings at every level.
        for level in 0..eager.num_levels() {
            let ca = eager.cluster_all(level, ClusterMode::Power);
            let cb = lazy.cluster_all(level, ClusterMode::Power);
            prop_assert_eq!(ca, cb, "clusterings diverge at level {}", level);
        }
    }
}
