//! Lock-free single-writer snapshot publication (the serving layer's
//! epoch'd `Arc` handoff; DESIGN.md §14).
//!
//! The serving design (ROADMAP item 2) runs one writer thread that owns the
//! engine and many reader threads that answer queries from immutable
//! snapshots. This module is the handoff between them: [`Publisher`] owns
//! the tail of an append-only chain of immutable links, and every
//! [`ReadHandle`] holds a private cursor into that chain.
//!
//! * **Publication** appends one link: a single `OnceLock::set` on the old
//!   tail's `next` slot (one release store under the hood — the writer
//!   never contends, never waits, never takes a lock).
//! * **Reads** chase `next` pointers with `OnceLock::get` acquire loads
//!   ([`ReadHandle::latest`]) — no mutex, no rwlock, no spinning: the read
//!   path is wait-free after publication, which is exactly what audit rule
//!   A11 (`blocking-in-reader`) polices over the serving read surface.
//! * **Memory** is bounded by the slowest cursor: links strictly behind
//!   every `ReadHandle` (and the publisher's tail) are dropped as cursors
//!   advance. A lagging handle that releases a long chain segment at once
//!   unlinks it iteratively, so the drop cannot overflow the stack.
//!
//! Epochs count publications: the initial value is epoch 0 and every
//! [`Publisher::publish`] increments by one, so readers can tell "did I see
//! a newer snapshot" without comparing contents.

use std::sync::{Arc, OnceLock};

/// One immutable link of the publication chain.
struct Link<T> {
    epoch: u64,
    value: Arc<T>,
    next: OnceLock<Arc<Link<T>>>,
}

impl<T> Drop for Link<T> {
    fn drop(&mut self) {
        // Unlink the suffix iteratively: dropping the last handle to a long
        // unread segment must not recurse once per link. Each hop moves the
        // `next` Arc out, so the inner `Link` drops with an empty `next`.
        let mut next = self.next.take();
        while let Some(arc) = next {
            match Arc::into_inner(arc) {
                Some(mut link) => next = link.next.take(),
                // Another cursor still references the rest of the chain.
                None => break,
            }
        }
    }
}

/// The single-writer side: owns the chain tail and appends new values.
///
/// `publish` takes `&mut self`, so the type itself enforces the
/// single-writer protocol — clone [`ReadHandle`]s freely instead.
pub struct Publisher<T> {
    tail: Arc<Link<T>>,
}

impl<T> Publisher<T> {
    /// Creates a publisher whose chain starts at `initial` (epoch 0).
    pub fn new(initial: T) -> Self {
        Self { tail: Arc::new(Link { epoch: 0, value: Arc::new(initial), next: OnceLock::new() }) }
    }

    /// Publishes `value` as the new latest snapshot and returns its epoch.
    ///
    /// Cost: one allocation plus one `OnceLock::set` (a release store);
    /// readers observe the new link on their next [`ReadHandle::latest`].
    pub fn publish(&mut self, value: T) -> u64 {
        let link = Arc::new(Link {
            epoch: self.tail.epoch + 1,
            value: Arc::new(value),
            next: OnceLock::new(),
        });
        let epoch = link.epoch;
        // Single writer (`&mut self`): the tail's `next` is necessarily
        // unset, so this `set` cannot fail.
        let _ = self.tail.next.set(Arc::clone(&link));
        self.tail = link;
        epoch
    }

    /// Epoch of the most recently published value (0 = only the initial).
    pub fn epoch(&self) -> u64 {
        self.tail.epoch
    }

    /// The most recently published value.
    pub fn current(&self) -> Arc<T> {
        Arc::clone(&self.tail.value)
    }

    /// Creates a reader cursor positioned at the current tail.
    pub fn subscribe(&self) -> ReadHandle<T> {
        ReadHandle { at: Arc::clone(&self.tail) }
    }
}

/// A reader cursor into the publication chain.
///
/// Clone one per reader thread; each clone advances independently. All
/// operations are wait-free (pure atomic loads plus `Arc` refcounting).
pub struct ReadHandle<T> {
    at: Arc<Link<T>>,
}

impl<T> Clone for ReadHandle<T> {
    fn clone(&self) -> Self {
        Self { at: Arc::clone(&self.at) }
    }
}

impl<T> ReadHandle<T> {
    /// Advances the cursor to the newest published value and returns it.
    ///
    /// Wait-free: each step is one `OnceLock::get` acquire load, and the
    /// number of steps is bounded by the publications since the previous
    /// call on this handle.
    pub fn latest(&mut self) -> Arc<T> {
        while let Some(next) = self.at.next.get() {
            self.at = Arc::clone(next);
        }
        Arc::clone(&self.at.value)
    }

    /// The value at the cursor without advancing it.
    pub fn current(&self) -> Arc<T> {
        Arc::clone(&self.at.value)
    }

    /// Epoch of the value at the cursor (advanced by [`Self::latest`]).
    pub fn epoch(&self) -> u64 {
        self.at.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_epoch_zero() {
        let p = Publisher::new(7u32);
        let mut r = p.subscribe();
        assert_eq!(p.epoch(), 0);
        assert_eq!(*r.latest(), 7);
        assert_eq!(r.epoch(), 0);
    }

    #[test]
    fn publish_advances_epoch_and_readers_catch_up() {
        let mut p = Publisher::new(0u32);
        let mut r = p.subscribe();
        assert_eq!(p.publish(1), 1);
        assert_eq!(p.publish(2), 2);
        assert_eq!(*r.latest(), 2, "reader skips to the newest value");
        assert_eq!(r.epoch(), 2);
        assert_eq!(*p.current(), 2);
    }

    #[test]
    fn cloned_handles_advance_independently() {
        let mut p = Publisher::new(0u32);
        let mut a = p.subscribe();
        let b = a.clone();
        p.publish(1);
        assert_eq!(*a.latest(), 1);
        assert_eq!(b.epoch(), 0, "the clone's cursor did not move");
        assert_eq!(*b.current(), 0);
    }

    #[test]
    fn concurrent_readers_observe_monotone_epochs() {
        let mut p = Publisher::new(0u64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut r = p.subscribe();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..10_000 {
                        let v = *r.latest();
                        assert!(v >= last, "published values regressed: {v} < {last}");
                        last = v;
                        assert_eq!(r.epoch(), v, "epoch tracks the published value");
                    }
                    last
                })
            })
            .collect();
        for i in 1..=5_000u64 {
            p.publish(i);
        }
        for h in handles {
            h.join().expect("reader thread");
        }
        assert_eq!(p.epoch(), 5_000);
    }

    #[test]
    fn lagging_handle_drops_long_chain_without_overflow() {
        let mut p = Publisher::new(0u32);
        let lagging = p.subscribe();
        for i in 0..200_000u32 {
            p.publish(i);
        }
        // `lagging` holds the head of a 200k-link chain; dropping it must
        // unlink iteratively (a recursive drop would blow the stack here).
        drop(lagging);
        drop(p);
    }

    #[test]
    fn chain_prefix_is_freed_as_readers_advance() {
        let mut p = Publisher::new(vec![0u8; 1024]);
        let mut r = p.subscribe();
        for i in 0..100u8 {
            p.publish(vec![i; 1024]);
            // The reader keeps up, so the chain stays short; this test is
            // mostly a leak canary under Miri-like tooling and asserts the
            // values flow through correctly.
            assert_eq!(r.latest()[0], i);
        }
    }
}
