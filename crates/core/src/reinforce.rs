//! Local reinforcement (paper Section IV-B/C): folding an activation's
//! structural context into the similarity function `S_t`.
//!
//! Upon an activation on trigger edge `e(u, v)`, three processes are
//! evaluated per trigger node (shown for `u`; `v` is symmetric):
//!
//! * **Direct consolidation** `AF(e) = F(e) · σ(u,v) / deg(u)` — the
//!   activation consolidates `u`–`v` proportionally to their active
//!   similarity, damped by `u`'s degree.
//! * **Triadic consolidation**
//!   `TF(e) = Σ_{w ∈ N(u)∩N(v)} √(F(u,w)·F(v,w)) · σ(w,u) / deg(u)` —
//!   active common friends reinforce the pair.
//! * **Wedge stretch**
//!   `WSF(e) = Σ_{w ∈ N(u)\N(v)} F(w,u) · σ(w,u) / deg(u)` — exclusive
//!   friends pull `u` away.
//!
//! The trigger node's type decides the combination (Eqs. 2–4): a **core**
//! adds `AF + TF`; a **periphery** subtracts `WSF`; a **p-core** applies
//! `AF + TF − WSF`.
//!
//! Everything here operates on *anchored* values: `S_t` is PosM (Lemma 4),
//! σ is NeuM (Lemma 3), so the anchored update equals the true update up to
//! the global factor, preserving maintainability.

use anc_graph::{EdgeId, NodeId};

use crate::similarity::{Scratch, SimilarityCtx};
use crate::NodeType;

/// Parameters consumed by the reinforcement step.
#[derive(Clone, Copy, Debug)]
pub struct ReinforceParams {
    /// Active-neighbor threshold ε.
    pub epsilon: f64,
    /// Core threshold µ.
    pub mu: usize,
    /// Lower clamp for the **anchored** similarity after the update (the
    /// engine passes `floor × boost` so the clamp is on the true value).
    pub floor_anchored: f64,
}

/// The three process values for one trigger node, exposed for tests and the
/// ablation harness.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Processes {
    /// Direct consolidation.
    pub af: f64,
    /// Triadic consolidation.
    pub tf: f64,
    /// Wedge stretch.
    pub wsf: f64,
}

impl Processes {
    /// The signed contribution to `ΔF(e)` under the trigger node's type
    /// (Eqs. 2–4).
    pub fn delta(&self, node_type: NodeType) -> f64 {
        match node_type {
            NodeType::Core => self.af + self.tf,
            NodeType::Periphery => -self.wsf,
            NodeType::PCore => self.af + self.tf - self.wsf,
        }
    }
}

/// Computes the three processes for trigger node `u` of edge `e(u, v)`.
///
/// Requires `scratch.sigmas` to hold `sigma_all(u)` output (σ(u, w) aligned
/// with `g.edges_of(u)`), and marks `N(v)` itself.
fn processes_for(
    ctx: &SimilarityCtx<'_>,
    sim: &[f64],
    e: EdgeId,
    u: NodeId,
    v: NodeId,
    sigmas_u: &[f64],
    scratch: &mut Scratch,
) -> Processes {
    let g = ctx.g;
    let deg_u = g.degree(u) as f64;
    debug_assert!(deg_u >= 1.0, "trigger node must have the trigger edge");

    // Mark N(v), remembering F(v, x) for triadic lookups.
    let stamp_v = scratch.mark_neighbors(g, v, |e_vx| sim[e_vx as usize]);

    let mut p = Processes::default();
    for (slot, (w, e_uw)) in g.edges_of(u).enumerate() {
        let sigma_uw = sigmas_u[slot];
        if w == v {
            // Direct consolidation uses σ(u, v) = σ of the trigger edge.
            p.af = sim[e as usize] * sigma_uw / deg_u;
            continue;
        }
        if scratch.marked(w, stamp_v) {
            // w ∈ N(u) ∩ N(v): triadic consolidation.
            let f_uw = sim[e_uw as usize];
            let f_vw = scratch.value(w);
            p.tf += (f_uw * f_vw).sqrt() * sigma_uw / deg_u;
        } else {
            // w ∈ N(u) \ N(v): wedge stretch.
            p.wsf += sim[e_uw as usize] * sigma_uw / deg_u;
        }
    }
    p
}

/// Outcome of one local-reinforcement application.
#[derive(Clone, Copy, Debug)]
pub struct ReinforceOutcome {
    /// Anchored similarity before.
    pub old_sim: f64,
    /// Anchored similarity after (clamped to the floor).
    pub new_sim: f64,
    /// Classification of trigger node `u`.
    pub type_u: NodeType,
    /// Classification of trigger node `v`.
    pub type_v: NodeType,
    /// Processes evaluated at `u`.
    pub proc_u: Processes,
    /// Processes evaluated at `v`.
    pub proc_v: Processes,
}

/// Precomputed σ context for one trigger node, as produced by the engine's
/// fused batch path (σ once per distinct trigger node, in parallel).
#[derive(Clone, Copy, Debug)]
pub struct CachedTrigger<'a> {
    /// `sigma_all` output for the node, aligned with `g.edges_of(node)`.
    pub sigmas: &'a [f64],
    /// The node's classification under those σ values.
    pub node_type: NodeType,
}

/// Applies one local reinforcement with trigger edge `e` to the anchored
/// similarity array `sim`, reading activeness through `ctx`.
///
/// Both trigger-node deltas are evaluated against the pre-update state and
/// applied together, making the update symmetric in `u`/`v` and independent
/// of endpoint order. Cost: `O(Σ_{w ∈ N(u)} deg w + Σ_{w ∈ N(v)} deg w)`.
pub fn apply_reinforcement(
    ctx: &SimilarityCtx<'_>,
    sim: &mut [f64],
    e: EdgeId,
    params: &ReinforceParams,
    scratch: &mut Scratch,
) -> ReinforceOutcome {
    let (u, v) = ctx.g.endpoints(e);

    // σ(u, ·) over all of u's neighbors; also yields u's classification.
    ctx.sigma_all(u, scratch);
    let sigmas_u = std::mem::take(&mut scratch.sigmas);
    let type_u = ctx.node_type_from_sigmas(u, params.epsilon, params.mu, &sigmas_u);

    // The second row goes through the pooled `sigmas_b` buffer so both rows
    // can be live at once without allocating per activation.
    scratch.sigmas = std::mem::take(&mut scratch.sigmas_b);
    ctx.sigma_all(v, scratch);
    let sigmas_v = std::mem::take(&mut scratch.sigmas);
    let type_v = ctx.node_type_from_sigmas(v, params.epsilon, params.mu, &sigmas_v);

    let out = apply_reinforcement_cached(
        ctx,
        sim,
        e,
        params.floor_anchored,
        CachedTrigger { sigmas: &sigmas_u, node_type: type_u },
        CachedTrigger { sigmas: &sigmas_v, node_type: type_v },
        scratch,
    );

    // Return both sigma buffers for reuse.
    scratch.sigmas = sigmas_u;
    scratch.sigmas_b = sigmas_v;
    out
}

/// Variant of [`apply_reinforcement`] consuming σ values and node types
/// computed elsewhere — σ is NeuM and depends only on activeness, never on
/// `sim`, so a batch that lands all activeness bumps first can compute σ
/// once per distinct trigger node and replay reinforcements against the
/// cache (the engine's [`crate::config::BatchMode::Fused`] path).
pub fn apply_reinforcement_cached(
    ctx: &SimilarityCtx<'_>,
    sim: &mut [f64],
    e: EdgeId,
    floor_anchored: f64,
    trig_u: CachedTrigger<'_>,
    trig_v: CachedTrigger<'_>,
    scratch: &mut Scratch,
) -> ReinforceOutcome {
    let (u, v) = ctx.g.endpoints(e);
    let proc_u = processes_for(ctx, sim, e, u, v, trig_u.sigmas, scratch);
    let proc_v = processes_for(ctx, sim, e, v, u, trig_v.sigmas, scratch);

    let old_sim = sim[e as usize];
    let delta = proc_u.delta(trig_u.node_type) + proc_v.delta(trig_v.node_type);
    let mut new_sim = old_sim + delta;
    if !new_sim.is_finite() || new_sim < floor_anchored {
        new_sim = floor_anchored;
    }
    sim[e as usize] = new_sim;

    ReinforceOutcome {
        old_sim,
        new_sim,
        type_u: trig_u.node_type,
        type_v: trig_v.node_type,
        proc_u,
        proc_v,
    }
}

/// Runs one full-graph reinforcement pass: every edge is treated as a
/// trigger once, in edge-id order (the paper's `S_0` initialization appends
/// "activations over all edges in E (in arbitrary order)" per repetition).
///
/// After the pass the similarity vector is renormalized to mean 1. The
/// reinforcement update is 1-homogeneous in `F` (AF, TF and WSF are all
/// linear in the similarity vector), so repeated passes grow `F`
/// exponentially; since every consumer of `S_t` (the distance metric, the
/// Voronoi partitions, the voting) is invariant under uniform scaling —
/// the same property the global decay factor relies on — the
/// renormalization is unobservable except that it keeps the floor clamp
/// from artificially severing edges after many repetitions.
pub fn full_pass(
    ctx: &SimilarityCtx<'_>,
    sim: &mut [f64],
    params: &ReinforceParams,
    scratch: &mut Scratch,
) {
    for e in 0..ctx.g.m() as EdgeId {
        apply_reinforcement(ctx, sim, e, params, scratch);
    }
    let mean = sim.iter().sum::<f64>() / sim.len().max(1) as f64;
    if mean.is_finite() && mean > 0.0 {
        for s in sim.iter_mut() {
            *s = (*s / mean).max(params.floor_anchored);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::Graph;

    fn ctx_fixture() -> (Graph, Vec<f64>, Vec<f64>) {
        // Two triangles sharing edge (1,2), plus a pendant 4 on node 1:
        // 0-1, 0-2, 1-2, 1-3, 2-3, 1-4.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (1, 4)]);
        let act = vec![1.0; g.m()];
        let mut node_sum = vec![0.0; g.n()];
        for (e, u, v) in g.iter_edges() {
            node_sum[u as usize] += act[e as usize];
            node_sum[v as usize] += act[e as usize];
        }
        (g, act, node_sum)
    }

    const PARAMS: ReinforceParams = ReinforceParams { epsilon: 0.2, mu: 2, floor_anchored: 1e-9 };

    #[test]
    fn hand_computed_processes() {
        let (g, act, node_sum) = ctx_fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let sim = vec![1.0; g.m()];
        let mut scratch = Scratch::new(g.n());
        let e = g.edge_id(1, 2).unwrap();

        // For trigger node 1 (deg 4): σ(1,2) = num/den with common {0,3},
        // num = (a(1,0)+a(2,0)) + (a(1,3)+a(2,3)) = 4, den = A(1)+A(2) = 4+3 = 7.
        // AF = F(e)·σ(1,2)/4 = (4/7)/4 = 1/7.
        // Common neighbors of 1 and 2: {0, 3}:
        //   σ(1,0): common {2}; num = a(1,2)+a(0,2) = 2; den = 4+2 = 6 → 1/3.
        //   σ(1,3): common {2}; num = 2; den = 4+2 = 6 → 1/3.
        //   TF = √(1·1)·(1/3)/4 + √(1·1)·(1/3)/4 = 1/6.
        // Exclusive neighbor of 1 wrt 2: {4}: σ(1,4) = 0 (no common) →
        //   WSF = 1·0/4 = 0.
        ctx.sigma_all(1, &mut scratch);
        let sigmas_u = scratch.sigmas.clone();
        let p = processes_for(&ctx, &sim, e, 1, 2, &sigmas_u, &mut scratch);
        assert!((p.af - 1.0 / 7.0).abs() < 1e-12, "af = {}", p.af);
        assert!((p.tf - 1.0 / 6.0).abs() < 1e-12, "tf = {}", p.tf);
        assert!(p.wsf.abs() < 1e-12, "wsf = {}", p.wsf);
    }

    #[test]
    fn delta_by_node_type() {
        let p = Processes { af: 0.3, tf: 0.2, wsf: 0.1 };
        assert!((p.delta(NodeType::Core) - 0.5).abs() < 1e-12);
        assert!((p.delta(NodeType::Periphery) + 0.1).abs() < 1e-12);
        assert!((p.delta(NodeType::PCore) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reinforcement_strengthens_triangle_edge() {
        let (g, act, node_sum) = ctx_fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let mut sim = vec![1.0; g.m()];
        let mut scratch = Scratch::new(g.n());
        let e = g.edge_id(1, 2).unwrap();
        let out = apply_reinforcement(&ctx, &mut sim, e, &PARAMS, &mut scratch);
        assert!(out.new_sim > out.old_sim, "shared triangle edge must strengthen");
        assert_eq!(sim[e as usize], out.new_sim);
        // Only the trigger edge changes.
        for (i, &value) in sim.iter().enumerate() {
            if i != e as usize {
                assert_eq!(value, 1.0);
            }
        }
    }

    #[test]
    fn pendant_edge_weakens() {
        let (g, act, node_sum) = ctx_fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let mut sim = vec![1.0; g.m()];
        let mut scratch = Scratch::new(g.n());
        // Edge (1,4): σ(1,4) = 0 → AF = TF = 0 for both. With µ = 5 both
        // endpoints are peripheries (deg 4 and 1 < 5); node 1 has exclusive
        // neighbors with positive σ → wedge stretch reduces F (Eq. 3).
        let params = ReinforceParams { mu: 5, ..PARAMS };
        let e = g.edge_id(1, 4).unwrap();
        let out = apply_reinforcement(&ctx, &mut sim, e, &params, &mut scratch);
        assert_eq!(out.type_u, NodeType::Periphery);
        assert_eq!(out.type_v, NodeType::Periphery);
        assert!(out.proc_u.wsf > 0.0);
        assert!(out.new_sim < out.old_sim, "pendant edge must weaken");
    }

    #[test]
    fn floor_clamps() {
        let (g, act, node_sum) = ctx_fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        // Tiny starting similarity on the pendant edge with a big floor margin:
        // repeated weakening must never cross the floor.
        let params = ReinforceParams { mu: 5, ..PARAMS }; // both ends periphery
        let mut sim = vec![1.0; g.m()];
        let e = g.edge_id(1, 4).unwrap();
        sim[e as usize] = 2e-9;
        let mut scratch = Scratch::new(g.n());
        for _ in 0..50 {
            apply_reinforcement(&ctx, &mut sim, e, &params, &mut scratch);
        }
        assert!(sim[e as usize] >= params.floor_anchored);
        assert_eq!(sim[e as usize], params.floor_anchored, "weakening must clamp at floor");
    }

    #[test]
    fn symmetric_in_endpoint_order() {
        // The outcome must not depend on which endpoint is canonical-first:
        // process deltas are computed from pre-state for both nodes.
        let (g, act, node_sum) = ctx_fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let mut scratch = Scratch::new(g.n());
        let e = g.edge_id(1, 2).unwrap();
        let sim0 = vec![1.0; g.m()];

        let mut s1 = sim0.clone();
        let out = apply_reinforcement(&ctx, &mut s1, e, &PARAMS, &mut scratch);
        // Recompute by hand swapping roles: delta = proc_u.delta + proc_v.delta
        // must equal out regardless of who is "u".
        let du = out.proc_u.delta(out.type_u);
        let dv = out.proc_v.delta(out.type_v);
        assert!((out.new_sim - (out.old_sim + du + dv)).abs() < 1e-12);
    }

    #[test]
    fn full_pass_polarizes_bridge_vs_intra() {
        // Two 4-cliques joined by one bridge; after a few passes the bridge
        // similarity must be well below intra-clique similarities.
        let lg = anc_graph::gen::connected_caveman(2, 4);
        let g = &lg.graph;
        let act = vec![1.0; g.m()];
        let mut node_sum = vec![0.0; g.n()];
        for (e, u, v) in g.iter_edges() {
            node_sum[u as usize] += act[e as usize];
            node_sum[v as usize] += act[e as usize];
        }
        let ctx = SimilarityCtx { g, act: &act, node_sum: &node_sum };
        let mut sim = vec![1.0; g.m()];
        let mut scratch = Scratch::new(g.n());
        for _ in 0..3 {
            full_pass(&ctx, &mut sim, &PARAMS, &mut scratch);
        }
        let bridge = g.edge_id(3, 4).unwrap();
        let intra = g.edge_id(0, 1).unwrap();
        assert!(
            sim[intra as usize] > 3.0 * sim[bridge as usize],
            "intra {} vs bridge {}",
            sim[intra as usize],
            sim[bridge as usize]
        );
    }
}
