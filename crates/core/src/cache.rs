//! The incremental cluster-query cache.
//!
//! [`crate::cluster::cluster_all`] answers every query cold: it re-evaluates
//! the voting function `H_l` on all `m` edges against all `k` partitions of
//! the level and re-runs component extraction from scratch. Yet the bounded
//! update algorithms (Section V, Algorithms 1–3) already report exactly
//! which nodes each update touched. [`ClusterCache`] exploits that:
//!
//! * per queried level it keeps a packed voted-edge bitset
//!   ([`crate::vote::EdgeBits`]), the voted-subgraph degree of every node,
//!   and the extracted [`Clustering`]s (shared as [`Arc`]s, so repeat
//!   queries are allocation-free);
//! * the **cold fill** runs the `O(m·k)` voting pass in parallel —
//!   word-aligned edge ranges fan out over the rayon shim and merge in
//!   input order, so the bitset is bit-identical for any thread count;
//! * on every index update, the affected node sets returned by
//!   [`crate::Pyramids::on_weight_change`]`{,_batch_traced}` are translated
//!   into **dirty edges** (edges incident to an affected node at that
//!   level). An edge's vote can only change when an endpoint's seed
//!   assignment changed in some partition, and every such endpoint is in
//!   that partition's affected set — so the translation is complete and
//!   only dirty edges ever need re-voting;
//! * a query on a dirty level re-votes just the dirty edges and repairs the
//!   clustering: **even** mode merges on-flips with a union-find over the
//!   cached labels and falls back to an epoch-tagged rebuild when an edge
//!   flips *off* (a split cannot be patched locally); **power** mode
//!   re-grows from the incrementally maintained voted-degree table,
//!   skipping the voting pass and the degree recount. Past a dirty-fraction
//!   threshold the level is refilled wholesale (the parallel cold pass is
//!   then cheaper than per-edge repair).
//!
//! Reads are snapshot-consistent: [`QueryStats::generation`] advances with
//! every index-mutating update, so two queries returning the same
//! generation saw the same logical index state (and in fact share the same
//! `Arc`). The cache is deliberately *not* serialized with engine snapshots
//! — a restored engine starts cold and refills lazily (see
//! [`crate::persist`]).

use std::sync::Arc;

use anc_graph::{EdgeId, Graph, NodeId};
use anc_metrics::Clustering;
use rayon::prelude::*;

use crate::cluster::{even_clustering_with, power_clustering_from_deg, ClusterMode};
use crate::pyramid::Pyramids;
use crate::vote::{extend_incident_edges, EdgeBits};

/// Default dirty-fraction past which a query refills the whole level
/// instead of repairing edge by edge (see
/// [`ClusterCache::set_dirty_rebuild_fraction`]).
pub const DIRTY_REBUILD_FRACTION: f64 = 0.25;

/// What a [`ClusterCache::query`] had to do to answer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryDecision {
    /// Served entirely from cache: no dirty edges, clustering already
    /// extracted.
    #[default]
    Hit,
    /// Bitset was current but the requested mode's clustering had not been
    /// extracted yet (e.g. first `Even` query after `Power` ones).
    Extract,
    /// Dirty edges were re-voted and the clustering repaired incrementally.
    Repair,
    /// The dirty fraction exceeded the threshold: the level was refilled by
    /// the parallel cold pass and re-extracted.
    Rebuild,
    /// First query of this level since construction or invalidation.
    ColdFill,
}

/// Observability record returned by every [`ClusterCache::query`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Cache generation at answer time. Advances with every index-mutating
    /// update fed to the cache, so two answers with equal generation are
    /// reads of the same logical index state.
    pub generation: u64,
    /// The answered level's rebuild epoch: bumped whenever a cached
    /// clustering is discarded (rebuild-on-split, threshold rebuild, cold
    /// fill) rather than incrementally patched.
    pub epoch: u64,
    /// Dirty edges pending at this level when the query arrived.
    pub dirty_edges: usize,
    /// Edges actually re-voted by this query.
    pub revoted: usize,
    /// Re-voted edges whose voting result flipped.
    pub flips: usize,
    /// The repair-vs-rebuild decision taken.
    pub decision: QueryDecision,
    /// Cumulative queries answered with an already-cached `Arc`.
    pub hits: u64,
    /// Cumulative queries that had to (re)extract a clustering.
    pub misses: u64,
}

impl QueryDecision {
    /// Work rank of the decision (`Hit` cheapest … `ColdFill` costliest);
    /// merging keeps the costlier side.
    fn cost_rank(self) -> u8 {
        match self {
            QueryDecision::Hit => 0,
            QueryDecision::Extract => 1,
            QueryDecision::Repair => 2,
            QueryDecision::Rebuild => 3,
            QueryDecision::ColdFill => 4,
        }
    }
}

/// Merges two query records so per-query stats can be folded into one
/// cumulative tally (`total += stats`), e.g. by the serving writer loop.
///
/// Per-query work counters (`dirty_edges`, `revoted`, `flips`) sum;
/// `generation`/`epoch` keep the newest; the cumulative cache counters
/// (`hits`, `misses`) keep the max since every record already carries the
/// cache-lifetime totals; `decision` keeps the costlier of the two.
impl std::ops::AddAssign<QueryStats> for QueryStats {
    fn add_assign(&mut self, rhs: QueryStats) {
        self.generation = self.generation.max(rhs.generation);
        self.epoch = self.epoch.max(rhs.epoch);
        self.dirty_edges += rhs.dirty_edges;
        self.revoted += rhs.revoted;
        self.flips += rhs.flips;
        if rhs.decision.cost_rank() > self.decision.cost_rank() {
            self.decision = rhs.decision;
        }
        self.hits = self.hits.max(rhs.hits);
        self.misses = self.misses.max(rhs.misses);
    }
}

/// Per-level cached state (materialized on first query of the level).
#[derive(Clone, Debug, Default)]
struct LevelCache {
    /// Packed voting results `H_l(e)` for every edge.
    voted: EdgeBits,
    /// Edges whose vote may be stale (set ⇔ listed in `dirty_list`).
    dirty: EdgeBits,
    dirty_list: Vec<EdgeId>,
    /// Each node's degree in the voted subgraph, maintained at vote flips —
    /// power extraction re-grows from this without recounting.
    kept_deg: Vec<u32>,
    even: Option<Arc<Clustering>>,
    power: Option<Arc<Clustering>>,
    epoch: u64,
}

/// The incremental cluster-query cache (one per [`crate::AncEngine`]).
///
/// Not serialized with snapshots: a restored engine constructs an empty
/// cache and refills it lazily on first query.
#[derive(Debug, Default)]
pub struct ClusterCache {
    levels: usize,
    per_level: Vec<Option<Box<LevelCache>>>,
    generation: u64,
    hits: u64,
    misses: u64,
    dirty_rebuild_fraction: f64,
    /// Pooled worker output buffers for the parallel voting pass.
    word_pool: Vec<Vec<u64>>,
    /// `collect_into_vec` target for the parallel voting pass (persists so
    /// repeated fills reuse one buffer).
    chunk_out: Vec<Vec<u64>>,
    /// Scratch for the affected-set → dirty-edge translation.
    edge_scratch: Vec<EdgeId>,
    /// Extraction scratch (rank order, DFS stack, labels, union-find).
    order_buf: Vec<NodeId>,
    stack_buf: Vec<NodeId>,
    label_buf: Vec<u32>,
    uf_buf: Vec<u32>,
    flip_buf: Vec<EdgeId>,
}

impl ClusterCache {
    /// An empty cache for an index with `levels` granularity levels.
    pub fn new(levels: usize) -> Self {
        let mut per_level = Vec::with_capacity(levels);
        per_level.resize_with(levels, || None);
        Self {
            levels,
            per_level,
            dirty_rebuild_fraction: DIRTY_REBUILD_FRACTION,
            ..Default::default()
        }
    }

    /// Number of levels covered.
    pub fn num_levels(&self) -> usize {
        self.levels
    }

    /// Current generation (see [`QueryStats::generation`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Cumulative queries served from an already-cached `Arc`.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative queries that had to (re)extract a clustering.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether any level has been materialized — when false, updates need
    /// no affected-set collection at all.
    pub fn has_materialized_levels(&self) -> bool {
        self.per_level.iter().any(|l| l.is_some())
    }

    /// Whether `level` currently holds a materialized voted-edge bitset.
    pub fn is_materialized(&self, level: usize) -> bool {
        self.per_level.get(level).is_some_and(|l| l.is_some())
    }

    /// Dirty edges pending at `level` (`None` if not materialized).
    pub fn dirty_count(&self, level: usize) -> Option<usize> {
        self.per_level.get(level).and_then(|l| l.as_ref()).map(|lc| lc.dirty_list.len())
    }

    /// The rebuild epoch of `level` (`None` if not materialized).
    pub fn level_epoch(&self, level: usize) -> Option<u64> {
        self.per_level.get(level).and_then(|l| l.as_ref()).map(|lc| lc.epoch)
    }

    /// The materialized voted-edge bitset of `level`, if any. Entries marked
    /// dirty may be stale; everything else equals the live voting function.
    pub fn voted_bits(&self, level: usize) -> Option<&EdgeBits> {
        self.per_level.get(level).and_then(|l| l.as_ref()).map(|lc| &lc.voted)
    }

    /// The dirty-edge bitset of `level`, if materialized (set bits are
    /// pending re-votes).
    pub fn dirty_bits(&self, level: usize) -> Option<&EdgeBits> {
        self.per_level.get(level).and_then(|l| l.as_ref()).map(|lc| &lc.dirty)
    }

    /// The maintained voted-subgraph degree table of `level`, if
    /// materialized.
    pub fn voted_degrees(&self, level: usize) -> Option<&[u32]> {
        self.per_level.get(level).and_then(|l| l.as_ref()).map(|lc| lc.kept_deg.as_slice())
    }

    /// The cached clustering of `(level, mode)` if it is currently
    /// extracted (shares the `Arc` queries return).
    pub fn cached(&self, level: usize, mode: ClusterMode) -> Option<Arc<Clustering>> {
        let lc = self.per_level.get(level).and_then(|l| l.as_ref())?;
        match mode {
            ClusterMode::Even => lc.even.clone(),
            ClusterMode::Power => lc.power.clone(),
        }
    }

    /// Overrides the dirty-fraction threshold above which a query refills
    /// the level wholesale instead of repairing per edge (default
    /// [`DIRTY_REBUILD_FRACTION`]). Values ≥ 1 disable threshold rebuilds;
    /// 0 forces every repair to rebuild.
    pub fn set_dirty_rebuild_fraction(&mut self, fraction: f64) {
        self.dirty_rebuild_fraction = fraction.max(0.0);
    }

    /// Records index updates applied without affected-set tracing (legal
    /// only while nothing is materialized — there is no cached state to
    /// dirty, but reads must still observe a new generation).
    pub fn note_untracked_updates(&mut self) {
        self.generation += 1;
    }

    /// Drops every materialized level (the index was rebuilt from scratch,
    /// so per-edge dirty tracking has no baseline to repair from) and
    /// advances the generation.
    pub fn invalidate_all(&mut self) {
        self.generation += 1;
        for slot in self.per_level.iter_mut() {
            *slot = None;
        }
    }

    /// Feeds one update's affected-node sets (pyramid-major partition
    /// order, as returned by [`Pyramids::on_weight_change`] or filled by
    /// [`Pyramids::on_weight_change_batch_traced`]) and marks the edges
    /// incident to them dirty at their level. Advances the generation iff
    /// any set is non-empty — a pure-noop batch leaves the cache untouched.
    ///
    /// Hot-path cost: `O(Σ deg)` over the affected nodes of materialized
    /// levels, allocation-free after warm-up.
    pub fn note_affected(&mut self, g: &Graph, affected: &[Vec<NodeId>]) {
        if affected.iter().all(|a| a.is_empty()) {
            return;
        }
        self.generation += 1;
        if !self.has_materialized_levels() {
            return;
        }
        let levels = self.levels;
        let mut buf = std::mem::take(&mut self.edge_scratch);
        for (slot, nodes) in affected.iter().enumerate() {
            if nodes.is_empty() {
                continue;
            }
            let Some(Some(lc)) = self.per_level.get_mut(slot % levels) else {
                continue;
            };
            buf.clear();
            extend_incident_edges(g, nodes, &mut buf);
            for &e in &buf {
                if !lc.dirty.get(e) {
                    lc.dirty.set(e, true);
                    lc.dirty_list.push(e);
                }
            }
        }
        self.edge_scratch = buf;
    }

    /// Answers `cluster_all(level, mode)` from the cache, repairing or
    /// (re)filling as needed. The returned `Arc` is shared with the cache —
    /// repeat queries at the same generation return the same allocation.
    pub fn query(
        &mut self,
        g: &Graph,
        pyr: &Pyramids,
        level: usize,
        mode: ClusterMode,
    ) -> (Arc<Clustering>, QueryStats) {
        let mut stats = QueryStats { generation: self.generation, ..Default::default() };
        let mut lc = match self.per_level[level].take() {
            Some(lc) => {
                stats.dirty_edges = lc.dirty_list.len();
                lc
            }
            None => {
                stats.decision = QueryDecision::ColdFill;
                Box::default()
            }
        };

        if stats.decision == QueryDecision::ColdFill {
            self.fill_level(g, pyr, level, &mut lc);
            lc.epoch += 1;
        } else if !lc.dirty_list.is_empty() {
            let threshold = (self.dirty_rebuild_fraction * g.m() as f64).floor() as usize;
            if lc.dirty_list.len() > threshold {
                stats.decision = QueryDecision::Rebuild;
                stats.revoted = g.m();
                self.fill_level(g, pyr, level, &mut lc);
                lc.epoch += 1;
                lc.even = None;
                lc.power = None;
            } else {
                stats.decision = QueryDecision::Repair;
                self.repair_level(g, pyr, level, &mut lc, &mut stats);
            }
        }

        let had_cached = match mode {
            ClusterMode::Even => lc.even.is_some(),
            ClusterMode::Power => lc.power.is_some(),
        };
        if had_cached {
            self.hits += 1;
        } else {
            self.misses += 1;
            if stats.decision == QueryDecision::Hit {
                stats.decision = QueryDecision::Extract;
            }
        }
        let clustering = self.extract(g, &mut lc, mode);

        stats.epoch = lc.epoch;
        stats.hits = self.hits;
        stats.misses = self.misses;
        self.per_level[level] = Some(lc);
        (clustering, stats)
    }

    /// Re-votes exactly the dirty edges and repairs the cached clusterings:
    /// no flips keeps both `Arc`s; on-flips merge the even clustering via
    /// union-find; any off-flip discards it (rebuild-on-split, epoch bump);
    /// any flip invalidates the power clustering, which re-grows from the
    /// maintained `kept_deg` on demand (skipping the voting pass).
    fn repair_level(
        &mut self,
        g: &Graph,
        pyr: &Pyramids,
        level: usize,
        lc: &mut LevelCache,
        stats: &mut QueryStats,
    ) {
        self.flip_buf.clear();
        let mut any_off = false;
        for &e in &lc.dirty_list {
            lc.dirty.set(e, false);
            let (u, v) = g.endpoints(e);
            let now = pyr.same_cluster(u, v, level);
            stats.revoted += 1;
            if now != lc.voted.get(e) {
                lc.voted.set(e, now);
                stats.flips += 1;
                if now {
                    lc.kept_deg[u as usize] += 1;
                    lc.kept_deg[v as usize] += 1;
                    self.flip_buf.push(e);
                } else {
                    lc.kept_deg[u as usize] -= 1;
                    lc.kept_deg[v as usize] -= 1;
                    any_off = true;
                }
            }
        }
        lc.dirty_list.clear();
        if stats.flips == 0 {
            return;
        }
        // Power rank order depends on every kept degree; drop and re-grow
        // lazily from the maintained table.
        lc.power = None;
        if any_off {
            // An off-flip can split a component; components cannot be
            // patched locally, so the even clustering rebuilds from the
            // (repaired) bitset on demand.
            lc.even = None;
            lc.epoch += 1;
        } else if let Some(old) = lc.even.take() {
            lc.even = Some(Arc::new(merge_even_on_flips(
                g,
                &old,
                &self.flip_buf,
                &mut self.uf_buf,
                &mut self.label_buf,
            )));
        }
    }

    /// The parallel cold voting pass: word-aligned edge ranges fan out over
    /// the rayon shim (`par_chunks` semantics via owned (start, buffer)
    /// tasks), merge in input order into the packed bitset, and the voted
    /// degrees are recounted serially — bit-identical for any
    /// `RAYON_NUM_THREADS`.
    fn fill_level(&mut self, g: &Graph, pyr: &Pyramids, level: usize, lc: &mut LevelCache) {
        let m = g.m();
        let words_len = m.div_ceil(64);
        lc.voted = EdgeBits::with_len(m);
        lc.dirty = EdgeBits::with_len(m);
        lc.dirty_list.clear();
        if words_len > 0 {
            // Chunks stay word-aligned; oversubscribe (~4× threads) so the
            // pool's stealing can balance ranges with uneven vote costs.
            let n_target = rayon::recommended_chunks(words_len);
            let chunk_words = words_len.div_ceil(n_target);
            let n_chunks = words_len.div_ceil(chunk_words);
            let mut bufs = std::mem::take(&mut self.word_pool);
            bufs.truncate(n_chunks);
            while bufs.len() < n_chunks {
                bufs.push(Vec::with_capacity(chunk_words));
            }
            let tasks: Vec<(usize, Vec<u64>)> =
                bufs.into_iter().enumerate().map(|(i, b)| (i * chunk_words, b)).collect();
            tasks
                // audit:allow(blocking-in-reader) -- cold fill is the writer path run inline: it executes under the cache's &mut borrow before the snapshot Arc is published; warm readers return the published Arc without reaching this dispatch
                .into_par_iter()
                .map(|(start, mut buf)| {
                    buf.clear();
                    let end = (start + chunk_words).min(words_len);
                    for wi in start..end {
                        let base = wi * 64;
                        let mut word = 0u64;
                        for bit in 0..(m - base).min(64) {
                            let e = (base + bit) as EdgeId;
                            let (u, v) = g.endpoints(e);
                            if pyr.same_cluster(u, v, level) {
                                word |= 1u64 << bit;
                            }
                        }
                        buf.push(word);
                    }
                    buf
                })
                // audit:allow(blocking-in-reader) -- same cold-fill dispatch as the into_par_iter above: writer path, pre-publication
                .collect_into_vec(&mut self.chunk_out);
            let words = lc.voted.words_mut();
            let mut at = 0;
            for chunk in self.chunk_out.drain(..) {
                words[at..at + chunk.len()].copy_from_slice(&chunk);
                at += chunk.len();
                self.word_pool.push(chunk);
            }
        }
        lc.kept_deg.clear();
        lc.kept_deg.resize(g.n(), 0);
        for (e, u, v) in g.iter_edges() {
            if lc.voted.get(e) {
                lc.kept_deg[u as usize] += 1;
                lc.kept_deg[v as usize] += 1;
            }
        }
        lc.even = None;
        lc.power = None;
    }

    /// Returns the requested mode's clustering, extracting it from the
    /// bitset if not cached (even: filtered components; power: re-grow from
    /// the maintained `kept_deg`, no voting pass).
    fn extract(&mut self, g: &Graph, lc: &mut LevelCache, mode: ClusterMode) -> Arc<Clustering> {
        match mode {
            ClusterMode::Even => {
                if let Some(c) = &lc.even {
                    return c.clone();
                }
                let c = Arc::new(even_clustering_with(g, |e| lc.voted.get(e)));
                lc.even = Some(c.clone());
                c
            }
            ClusterMode::Power => {
                if let Some(c) = &lc.power {
                    return c.clone();
                }
                let voted = &lc.voted;
                let c = Arc::new(power_clustering_from_deg(
                    g,
                    |e| voted.get(e),
                    &lc.kept_deg,
                    &mut self.order_buf,
                    &mut self.stack_buf,
                    &mut self.label_buf,
                ));
                lc.power = Some(c.clone());
                c
            }
        }
    }
}

/// Merges an even clustering with a set of newly voted-in edges: union-find
/// over the cached cluster ids, then canonical relabeling. Exactly the
/// connected components of the old components plus the new edges — valid
/// only when no edge flipped *off*.
fn merge_even_on_flips(
    g: &Graph,
    old: &Clustering,
    on_edges: &[EdgeId],
    uf: &mut Vec<u32>,
    labels: &mut Vec<u32>,
) -> Clustering {
    uf.clear();
    uf.extend(0..old.num_clusters() as u32);
    for &e in on_edges {
        let (u, v) = g.endpoints(e);
        let (a, b) = (uf_find(uf, old.label(u)), uf_find(uf, old.label(v)));
        if a != b {
            uf[a.max(b) as usize] = a.min(b);
        }
    }
    labels.clear();
    labels.extend((0..g.n() as NodeId).map(|v| uf_find(uf, old.label(v))));
    Clustering::from_labels(labels)
}

/// Union-find root with path halving.
#[inline]
fn uf_find(uf: &mut [u32], mut x: u32) -> u32 {
    while uf[x as usize] != x {
        uf[x as usize] = uf[uf[x as usize] as usize];
        x = uf[x as usize];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster_all;
    use anc_graph::gen::{connected_caveman, paper_figure2};

    fn fixture() -> (Graph, Vec<f64>, Pyramids) {
        let lg = connected_caveman(4, 5);
        let g = lg.graph;
        let w: Vec<f64> = g
            .iter_edges()
            .map(|(_, u, v)| if lg.labels[u as usize] == lg.labels[v as usize] { 0.3 } else { 9.0 })
            .collect();
        let pyr = Pyramids::build(&g, &w, 3, 0.7, 13);
        (g, w, pyr)
    }

    #[test]
    fn cold_fill_matches_cold_recompute_everywhere() {
        let (g, _, pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        for level in 0..pyr.num_levels() {
            for mode in [ClusterMode::Even, ClusterMode::Power] {
                let (c, stats) = cache.query(&g, &pyr, level, mode);
                assert_eq!(*c, cluster_all(&g, &pyr, level, mode), "level {level} {mode:?}");
                assert!(matches!(stats.decision, QueryDecision::ColdFill | QueryDecision::Extract));
            }
        }
    }

    #[test]
    fn repeat_query_is_a_pointer_hit() {
        let (g, _, pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        let l = pyr.default_level();
        let (a, s0) = cache.query(&g, &pyr, l, ClusterMode::Power);
        let (b, s1) = cache.query(&g, &pyr, l, ClusterMode::Power);
        assert!(Arc::ptr_eq(&a, &b), "repeat query must share the Arc");
        assert_eq!(s1.decision, QueryDecision::Hit);
        assert_eq!(s1.generation, s0.generation);
        assert_eq!(s1.hits, s0.hits + 1);
    }

    #[test]
    fn dirty_translation_repairs_to_cold_truth() {
        let (g, mut w, mut pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        // Warm every level.
        for level in 0..pyr.num_levels() {
            cache.query(&g, &pyr, level, ClusterMode::Power);
            cache.query(&g, &pyr, level, ClusterMode::Even);
        }
        let gen0 = cache.generation();
        // A drastic change: flip a heavy bridge to the lightest weight.
        for (step, e) in [0u32, 7, 13, 20].into_iter().enumerate() {
            let old = w[e as usize];
            w[e as usize] = if step % 2 == 0 { 0.05 } else { old * 20.0 };
            let affected = pyr.on_weight_change(&g, &w, e, old);
            cache.note_affected(&g, &affected);
            for level in 0..pyr.num_levels() {
                for mode in [ClusterMode::Even, ClusterMode::Power] {
                    let (c, _) = cache.query(&g, &pyr, level, mode);
                    assert_eq!(
                        *c,
                        cluster_all(&g, &pyr, level, mode),
                        "step {step} level {level} {mode:?}"
                    );
                }
            }
        }
        assert!(cache.generation() > gen0, "index-moving updates must advance the generation");
    }

    #[test]
    fn empty_affected_sets_leave_cache_untouched() {
        let (g, _, pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        let l = pyr.default_level();
        let (a, _) = cache.query(&g, &pyr, l, ClusterMode::Power);
        let gen = cache.generation();
        let empty = vec![Vec::new(); pyr.k() * pyr.num_levels()];
        cache.note_affected(&g, &empty);
        assert_eq!(cache.generation(), gen, "noop must not bump the generation");
        assert_eq!(cache.dirty_count(l), Some(0));
        let (b, stats) = cache.query(&g, &pyr, l, ClusterMode::Power);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(stats.decision, QueryDecision::Hit);
    }

    /// Satellite regression: a batch in which every delta is short-circuited
    /// by the exact no-op precheck must leave the cache completely untouched
    /// — no generation bump, no dirty edges, same `Arc` on re-query.
    #[test]
    fn pure_noop_batch_marks_nothing_dirty() {
        // Triangle with one overpriced edge: a–c can never be a shortest-path
        // tree edge in any partition (the 2-hop detour always wins), so a
        // weight *increase* on it is inert in every partition by the
        // `noop_weight_change` precheck — deterministically, for any seeds.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let e = g.edge_id(0, 2).expect("triangle edge");
        let mut w = vec![1.0; g.m()];
        w[e as usize] = 10.0;
        let mut pyr = Pyramids::build(&g, &w, 3, 0.7, 5);
        let mut cache = ClusterCache::new(pyr.num_levels());
        let l = pyr.default_level();
        let (before, _) = cache.query(&g, &pyr, l, ClusterMode::Power);
        let gen = cache.generation();
        let (old, new_w) = (10.0, 40.0);
        w[e as usize] = new_w;
        for p in 0..pyr.k() {
            for lv in 0..pyr.num_levels() {
                assert!(
                    pyr.partition(p, lv).noop_weight_change(&g, &w, e, old),
                    "overpriced triangle edge must be inert in every partition"
                );
            }
        }
        let mut traces = vec![Vec::new(); pyr.k() * pyr.num_levels()];
        let rs = pyr.on_weight_change_batch_traced(&g, &w, &[(e, old, new_w)], &mut traces);
        assert_eq!(rs.updates, 0, "every partition must skip the inert delta");
        assert!(traces.iter().all(|t| t.is_empty()), "noop trace must be empty");
        cache.note_affected(&g, &traces);
        assert_eq!(cache.generation(), gen, "pure-noop batch must not bump the generation");
        assert_eq!(cache.dirty_count(l), Some(0));
        let (after, stats) = cache.query(&g, &pyr, l, ClusterMode::Power);
        assert!(Arc::ptr_eq(&before, &after), "clustering pointer must be unchanged");
        assert_eq!(stats.decision, QueryDecision::Hit);
    }

    #[test]
    fn traced_batch_repair_feeds_equivalent_dirty_sets() {
        // The grouped traced repair must leave the cache equivalent to cold
        // recomputation, exactly like the per-update path.
        let (g, mut w, mut pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        for level in 0..pyr.num_levels() {
            cache.query(&g, &pyr, level, ClusterMode::Even);
            cache.query(&g, &pyr, level, ClusterMode::Power);
        }
        let mut traces = vec![Vec::new(); pyr.k() * pyr.num_levels()];
        let mut deltas = Vec::new();
        for (step, e) in [2u32, 9, 17, 4].into_iter().enumerate() {
            let old = w[e as usize];
            let new_w = if step % 2 == 0 { old * 0.1 } else { old * 8.0 };
            w[e as usize] = new_w;
            deltas.push((e, old, new_w));
        }
        let _ = pyr.on_weight_change_batch_traced(&g, &w, &deltas, &mut traces);
        cache.note_affected(&g, &traces);
        for level in 0..pyr.num_levels() {
            for mode in [ClusterMode::Even, ClusterMode::Power] {
                let (c, _) = cache.query(&g, &pyr, level, mode);
                assert_eq!(*c, cluster_all(&g, &pyr, level, mode), "level {level} {mode:?}");
            }
        }
    }

    #[test]
    fn threshold_zero_forces_rebuild_and_stays_correct() {
        let (g, mut w, mut pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        cache.set_dirty_rebuild_fraction(0.0);
        let l = pyr.num_levels() - 1;
        cache.query(&g, &pyr, l, ClusterMode::Power);
        let epoch0 = cache.level_epoch(l).expect("materialized");
        let e = 3u32;
        let old = w[e as usize];
        w[e as usize] = 0.01;
        let affected = pyr.on_weight_change(&g, &w, e, old);
        cache.note_affected(&g, &affected);
        if cache.dirty_count(l) == Some(0) {
            return; // change didn't reach this level; nothing to assert
        }
        let (c, stats) = cache.query(&g, &pyr, l, ClusterMode::Power);
        assert_eq!(stats.decision, QueryDecision::Rebuild);
        assert!(stats.epoch > epoch0, "rebuild must advance the epoch");
        assert_eq!(*c, cluster_all(&g, &pyr, l, ClusterMode::Power));
    }

    #[test]
    fn invalidate_drops_all_levels() {
        let (g, _, pyr) = fixture();
        let mut cache = ClusterCache::new(pyr.num_levels());
        cache.query(&g, &pyr, 0, ClusterMode::Even);
        assert!(cache.has_materialized_levels());
        let gen = cache.generation();
        cache.invalidate_all();
        assert!(!cache.has_materialized_levels());
        assert!(cache.generation() > gen);
        let (c, stats) = cache.query(&g, &pyr, 0, ClusterMode::Even);
        assert_eq!(stats.decision, QueryDecision::ColdFill);
        assert_eq!(*c, cluster_all(&g, &pyr, 0, ClusterMode::Even));
    }

    #[test]
    fn merge_even_unions_components() {
        // 0-1  2-3  plus a new edge 1-2 merging the two components.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let old = Clustering::from_labels(&[0, 0, 1, 1]);
        let e12 = g.edge_id(1, 2).expect("edge");
        let (mut uf, mut labels) = (Vec::new(), Vec::new());
        let merged = merge_even_on_flips(&g, &old, &[e12], &mut uf, &mut labels);
        assert_eq!(merged.num_clusters(), 1);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        for (n, edges) in [(1usize, vec![]), (2, vec![(0u32, 1u32)]), (0, vec![])] {
            let g = Graph::from_edges(n, &edges);
            let w = vec![1.0; g.m()];
            if n == 0 {
                // Pyramids::build requires n ≥ 1 seeds per level; skip.
                continue;
            }
            let pyr = Pyramids::build(&g, &w, 2, 0.7, 1);
            let mut cache = ClusterCache::new(pyr.num_levels());
            for mode in [ClusterMode::Even, ClusterMode::Power] {
                let (c, _) = cache.query(&g, &pyr, 0, mode);
                assert_eq!(*c, cluster_all(&g, &pyr, 0, mode));
            }
        }
    }

    #[test]
    fn paper_figure_stream_stays_equivalent() {
        let (g, mut w) = paper_figure2();
        let mut pyr = Pyramids::build(&g, &w, 2, 0.7, 42);
        let mut cache = ClusterCache::new(pyr.num_levels());
        for level in 0..pyr.num_levels() {
            cache.query(&g, &pyr, level, ClusterMode::Even);
        }
        let changes: &[(u32, u32, f64)] =
            &[(5, 6, 0.5), (1, 3, 9.0), (7, 8, 0.1), (7, 8, 12.0), (9, 10, 1.0)];
        for &(a, b, new_w) in changes {
            let e = g.edge_id(a - 1, b - 1).expect("paper edge");
            let old = w[e as usize];
            w[e as usize] = new_w;
            let affected = pyr.on_weight_change(&g, &w, e, old);
            cache.note_affected(&g, &affected);
            for level in 0..pyr.num_levels() {
                for mode in [ClusterMode::Even, ClusterMode::Power] {
                    let (c, _) = cache.query(&g, &pyr, level, mode);
                    assert_eq!(*c, cluster_all(&g, &pyr, level, mode), "({a},{b}) → {new_w}");
                }
            }
        }
    }
}
