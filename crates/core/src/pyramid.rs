//! The **pyramids** index `P` (paper Section V-A): `k` pyramids, each a
//! suite of `⌈log₂ n⌉` Voronoi partitions at geometrically growing seed
//! counts, used as a voting system for multi-granularity clustering.
//!
//! Level `l ∈ [1, ⌈log₂ n⌉]` samples `2^{l-1}` seeds uniformly at random
//! without replacement (following the paper's worked Example 3, where level
//! 1 has a single seed whose shortest-path tree spans the graph). Index
//! size and construction time are `O(n log² n + m log n)` (Lemma 7).
//!
//! The `log₂(n) × k` partitions are mutually independent in storage, update
//! and query processing, so updates parallelize embarrassingly (Lemma 13) —
//! [`Pyramids::on_weight_change`] fans out across partitions with rayon.

use anc_graph::{EdgeId, Graph, NodeId};
use rand::seq::index::sample;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

use crate::invariant::InvariantViolation;
use crate::voronoi::VoronoiPartition;

/// Counters from one grouped batch repair
/// ([`Pyramids::on_weight_change_batch`]), summed over all partitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "RepairStats carries the repair's update/skip counters"]
pub struct RepairStats {
    /// Bounded updates actually executed (Algorithms 1–3 invocations).
    pub updates: usize,
    /// Deltas short-circuited by the `O(1)` no-op precheck
    /// ([`VoronoiPartition::noop_weight_change`]).
    pub skips: usize,
}

impl std::ops::AddAssign for RepairStats {
    fn add_assign(&mut self, rhs: Self) {
        self.updates += rhs.updates;
        self.skips += rhs.skips;
    }
}

/// Pooled per-worker scratch for the grouped batch repairs: a private
/// weight array for the rewound replay plus a sink for affected nodes the
/// untraced path discards. Lives on [`Pyramids`] so repeated batches stop
/// allocating once the pool reaches its high-water mark.
#[derive(Clone, Debug, Default)]
struct RepairScratch {
    weights: Vec<f64>,
    discard: Vec<NodeId>,
}

/// The full index: `k × levels` Voronoi partitions plus the voting
/// threshold.
///
/// ```
/// use anc_core::Pyramids;
/// use anc_graph::gen::paper_figure2;
///
/// let (g, weights) = paper_figure2(); // the paper's 13-node example
/// let pyr = Pyramids::build(&g, &weights, 2, 0.7, 42);
/// assert_eq!(pyr.num_levels(), 4); // ⌈log₂ 13⌉, as in Example 3
/// // H_l: are two nodes co-clustered at the coarsest granularity?
/// let _ = pyr.same_cluster(0, 1, 0);
/// ```
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Pyramids {
    /// Flattened partitions: `partitions[p * levels + l]` is level `l`
    /// (0-based) of pyramid `p`.
    partitions: Vec<VoronoiPartition>,
    k: usize,
    levels: usize,
    needed_votes: usize,
    n: usize,
    /// Per-worker batch-repair buffers (transient; excluded from snapshots).
    #[serde(skip)]
    repair_scratch: Vec<RepairScratch>,
    /// Pooled per-partition seed buffers for [`Self::rebuild`] (transient).
    #[serde(skip)]
    seed_scratch: Vec<Vec<NodeId>>,
}

impl Pyramids {
    /// Builds the index over `g` with edge weights `weights` (reciprocal
    /// anchored similarity).
    ///
    /// * `k` — number of pyramids (paper default 4).
    /// * `theta` — voting support threshold (paper default 0.7).
    /// * `seed` — RNG seed for the per-level uniform seed sampling.
    ///
    /// Levels are built in parallel.
    pub fn build(g: &Graph, weights: &[f64], k: usize, theta: f64, seed: u64) -> Self {
        assert!(k >= 1);
        let n = g.n();
        let levels = Self::levels_for(n);
        // Pre-sample all seed sets deterministically, then build in parallel.
        let mut seed_sets = Vec::with_capacity(k * levels);
        for p in 0..k {
            for l in 0..levels {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((p as u64) << 32) ^ (l as u64));
                let want = (1usize << l).min(n);
                let chosen: Vec<NodeId> =
                    sample(&mut rng, n, want).into_iter().map(|i| i as NodeId).collect();
                seed_sets.push(chosen);
            }
        }
        let partitions: Vec<VoronoiPartition> = seed_sets
            .into_par_iter()
            .map(|seeds| VoronoiPartition::build(g, weights, seeds))
            .collect();
        let needed_votes = ((theta * k as f64).ceil() as usize).clamp(1, k);
        Self {
            partitions,
            k,
            levels,
            needed_votes,
            n,
            repair_scratch: Vec::with_capacity(0),
            seed_scratch: Vec::with_capacity(0),
        }
    }

    /// Rebuilds every partition in place from a fresh seed sampling —
    /// bit-identical to [`Self::build`] with the same `seed`, but reusing the
    /// partitions' own distance/parent/children buffers and the pooled seed
    /// scratch instead of allocating a new index. The engine's WAL-replay
    /// index reconstruction runs through here so recovery stays off the
    /// hot-path allocator.
    pub fn rebuild(&mut self, g: &Graph, weights: &[f64], seed: u64) {
        debug_assert_eq!(self.n, g.n(), "rebuild keeps the node count fixed");
        let n = self.n;
        let levels = self.levels;
        if self.seed_scratch.len() < self.partitions.len() {
            self.seed_scratch.resize_with(self.partitions.len(), Default::default);
        }
        for p in 0..self.k {
            for l in 0..levels {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((p as u64) << 32) ^ (l as u64));
                let want = (1usize << l).min(n);
                let chosen = &mut self.seed_scratch[p * levels + l];
                chosen.clear();
                chosen.extend(sample(&mut rng, n, want).into_iter().map(|i| i as NodeId));
            }
        }
        self.partitions
            .par_chunks_mut(1)
            .zip(self.seed_scratch.par_chunks_mut(1))
            .for_each(|(part, seeds)| part[0].rebuild(g, weights, &seeds[0]));
    }

    /// Number of granularity levels `⌈log₂ n⌉` (min 1).
    pub fn levels_for(n: usize) -> usize {
        if n <= 2 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as usize
        }
    }

    /// Number of pyramids `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of granularity levels.
    pub fn num_levels(&self) -> usize {
        self.levels
    }

    /// Votes needed for two nodes to be co-clustered (`⌈θk⌉`).
    pub fn needed_votes(&self) -> usize {
        self.needed_votes
    }

    /// The level whose seed count is closest to `√n` from above — the
    /// paper's Problem 1 entry granularity with `Θ(√n)` clusters.
    pub fn default_level(&self) -> usize {
        let target = (self.n as f64).sqrt();
        (0..self.levels).find(|&l| (1usize << l) as f64 >= target).unwrap_or(self.levels - 1)
    }

    /// Access a partition (pyramid `p`, 0-based level `l`).
    pub fn partition(&self, p: usize, l: usize) -> &VoronoiPartition {
        &self.partitions[p * self.levels + l]
    }

    /// Number of pyramids whose level-`l` partition puts `u` and `v` under
    /// the same seed (the vote count behind `H_l(u, v)`).
    #[inline]
    pub fn votes(&self, u: NodeId, v: NodeId, l: usize) -> usize {
        (0..self.k).filter(|&p| self.partition(p, l).same_seed(u, v)).count()
    }

    /// The voting function `H_l(u, v)` (Section V-B): 1 iff at least `⌈θk⌉`
    /// pyramids agree at level `l`.
    #[inline]
    pub fn same_cluster(&self, u: NodeId, v: NodeId, l: usize) -> bool {
        // Early exit once the threshold is reached or becomes unreachable.
        let mut have = 0;
        for p in 0..self.k {
            if self.partition(p, l).same_seed(u, v) {
                have += 1;
                if have >= self.needed_votes {
                    return true;
                }
            } else if have + (self.k - p - 1) < self.needed_votes {
                return false;
            }
        }
        false
    }

    /// Propagates one edge-weight change to every partition (Algorithms 1–3
    /// per partition), in parallel across the `k·⌈log₂ n⌉` independent
    /// partitions (Lemma 13). Returns, per partition (pyramid-major order,
    /// `p * levels + l`), the nodes whose seed assignment or distance
    /// changed.
    pub fn on_weight_change(
        &mut self,
        g: &Graph,
        weights: &[f64],
        e: EdgeId,
        old_w: f64,
    ) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.partitions.len()];
        self.on_weight_change_into(g, weights, e, old_w, &mut out);
        out
    }

    /// [`Self::on_weight_change`] filling caller-owned per-partition buffers
    /// (each cleared, then sorted and deduplicated) instead of allocating a
    /// fresh list per partition — the engine pools the buffers across
    /// activations so steady-state single-edge repairs stop allocating.
    pub fn on_weight_change_into(
        &mut self,
        g: &Graph,
        weights: &[f64],
        e: EdgeId,
        old_w: f64,
        out: &mut [Vec<NodeId>],
    ) {
        debug_assert_eq!(out.len(), self.partitions.len(), "one buffer per partition");
        let n_chunks = rayon::recommended_chunks(self.partitions.len()).max(1);
        let chunk = self.partitions.len().div_ceil(n_chunks).max(1);
        self.partitions.par_chunks_mut(chunk).zip(out.par_chunks_mut(chunk)).for_each(
            |(parts, outs)| {
                for (p, o) in parts.iter_mut().zip(outs.iter_mut()) {
                    o.clear();
                    p.on_weight_change_into(g, weights, e, old_w, o);
                    o.sort_unstable();
                    o.dedup();
                }
            },
        );
    }

    /// Applies a whole batch of ordered weight deltas with **one** parallel
    /// fan-out instead of one per edge (the engine's batch-ingestion
    /// pipeline; see DESIGN.md §7).
    ///
    /// `deltas` is the ordered list of `(e, old_w, new_w)` changes exactly
    /// as they occurred; the same edge may appear several times. `weights`
    /// must hold the *final* post-batch values (so for each edge, the last
    /// delta's `new_w` equals `weights[e]`).
    ///
    /// Deferring repairs naively would be unsound — a repair for one edge
    /// may propagate distances through regions another pending repair has
    /// yet to invalidate — so each worker replays the delta list *in
    /// order*, against a private weight array rewound to the pre-batch
    /// state, calling [`VoronoiPartition::on_weight_change`] at the exact
    /// per-step weights. Every partition therefore ends bit-identical to
    /// the serial per-edge path; since partitions are mutually independent
    /// (Lemma 13) and workers own disjoint partition chunks, the result is
    /// also independent of the thread count. Deltas that provably cannot
    /// move a partition are short-circuited by the `O(1)`
    /// [`VoronoiPartition::noop_weight_change`] precheck.
    pub fn on_weight_change_batch(
        &mut self,
        g: &Graph,
        weights: &[f64],
        deltas: &[(EdgeId, f64, f64)],
    ) -> RepairStats {
        if deltas.is_empty() {
            return RepairStats::default();
        }
        debug_assert!(
            deltas
                .iter()
                .rev()
                .scan(std::collections::HashSet::new(), |seen, &(e, _, new_w)| {
                    Some(!seen.insert(e) || new_w == weights[e as usize])
                })
                .all(|ok| ok),
            "last delta per edge must match the final weights"
        );
        // Modest 2× oversubscription only: each chunk task fills a full
        // private weight array, so shattering into many small chunks costs
        // more in copies than stealing wins back.
        let n_target = (rayon::current_num_threads() * 2).clamp(1, self.partitions.len());
        let chunk = self.partitions.len().div_ceil(n_target);
        let n_chunks = self.partitions.len().div_ceil(chunk);
        if self.repair_scratch.len() < n_chunks {
            self.repair_scratch.resize_with(n_chunks, Default::default);
        }
        // Workers fold their counters with `reduce` (addition is commutative
        // and associative, so the result is thread-count independent) rather
        // than collecting a per-chunk Vec on the hot path. Each worker owns
        // one pooled scratch slot (zip truncates to the partition chunks):
        // the weight array is refilled in place, and affected-node output is
        // appended to the pooled discard sink instead of a fresh Vec.
        self.partitions
            .par_chunks_mut(chunk)
            .zip(self.repair_scratch.par_chunks_mut(1))
            .map(|(parts, scratch)| {
                let s = &mut scratch[0];
                s.weights.clear();
                s.weights.extend_from_slice(weights);
                let mut stats = RepairStats::default();
                for p in parts.iter_mut() {
                    for &(e, old_w, _) in deltas.iter().rev() {
                        s.weights[e as usize] = old_w;
                    }
                    for &(e, old_w, new_w) in deltas {
                        s.weights[e as usize] = new_w;
                        if p.noop_weight_change(g, &s.weights, e, old_w) {
                            stats.skips += 1;
                        } else {
                            s.discard.clear();
                            p.on_weight_change_into(g, &s.weights, e, old_w, &mut s.discard);
                            stats.updates += 1;
                        }
                    }
                }
                stats
            })
            .reduce(RepairStats::default, |mut a, b| {
                a += b;
                a
            })
    }

    /// [`Self::on_weight_change_batch`] that additionally records, per
    /// partition (pyramid-major order), the union of all nodes whose seed
    /// assignment or distance changed at any point during the batch — the
    /// input of the cluster cache's affected-set → dirty-edge translation.
    ///
    /// `out` must hold one buffer per partition (`k · levels`); each is
    /// cleared, filled, sorted and deduplicated. The buffers are caller-owned
    /// so the engine can pool them across batches. The partitions themselves
    /// end bit-identical to the untraced variant (same per-delta replay).
    pub fn on_weight_change_batch_traced(
        &mut self,
        g: &Graph,
        weights: &[f64],
        deltas: &[(EdgeId, f64, f64)],
        out: &mut [Vec<NodeId>],
    ) -> RepairStats {
        debug_assert_eq!(out.len(), self.partitions.len(), "one trace buffer per partition");
        for o in out.iter_mut() {
            o.clear();
        }
        if deltas.is_empty() {
            return RepairStats::default();
        }
        // 2× oversubscription, matching the untraced batch repair: the
        // per-chunk private weight fill dominates finer-grained chunking.
        let n_target = (rayon::current_num_threads() * 2).clamp(1, self.partitions.len());
        let chunk = self.partitions.len().div_ceil(n_target);
        let n_chunks = self.partitions.len().div_ceil(chunk);
        if self.repair_scratch.len() < n_chunks {
            self.repair_scratch.resize_with(n_chunks, Default::default);
        }
        let stats = self
            .partitions
            .par_chunks_mut(chunk)
            .zip(out.par_chunks_mut(chunk))
            .zip(self.repair_scratch.par_chunks_mut(1))
            .map(|((parts, traces), scratch)| {
                // One pooled weight array per worker, rewound between
                // partitions exactly as in the untraced batch repair.
                let s = &mut scratch[0];
                s.weights.clear();
                s.weights.extend_from_slice(weights);
                let mut stats = RepairStats::default();
                for (p, trace) in parts.iter_mut().zip(traces.iter_mut()) {
                    for &(e, old_w, _) in deltas.iter().rev() {
                        s.weights[e as usize] = old_w;
                    }
                    for &(e, old_w, new_w) in deltas {
                        s.weights[e as usize] = new_w;
                        if p.noop_weight_change(g, &s.weights, e, old_w) {
                            stats.skips += 1;
                        } else {
                            p.on_weight_change_into(g, &s.weights, e, old_w, trace);
                            stats.updates += 1;
                        }
                    }
                    trace.sort_unstable();
                    trace.dedup();
                }
                stats
            })
            .reduce(RepairStats::default, |mut a, b| {
                a += b;
                a
            });
        stats
    }

    /// Serial variant of [`Self::on_weight_change`] (used to measure the
    /// Lemma 13 parallel speedup in the ablation benches).
    pub fn on_weight_change_serial(
        &mut self,
        g: &Graph,
        weights: &[f64],
        e: EdgeId,
        old_w: f64,
    ) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.partitions.len()];
        self.on_weight_change_serial_into(g, weights, e, old_w, &mut out);
        out
    }

    /// Serial variant of [`Self::on_weight_change_into`] (same caller-owned
    /// buffer contract).
    pub fn on_weight_change_serial_into(
        &mut self,
        g: &Graph,
        weights: &[f64],
        e: EdgeId,
        old_w: f64,
        out: &mut [Vec<NodeId>],
    ) {
        debug_assert_eq!(out.len(), self.partitions.len(), "one buffer per partition");
        for (p, o) in self.partitions.iter_mut().zip(out.iter_mut()) {
            o.clear();
            p.on_weight_change_into(g, weights, e, old_w, o);
            o.sort_unstable();
            o.dedup();
        }
    }

    /// Approximate distance query in the style of the underlying Das Sarma
    /// et al. sketch (the base structure of the pyramids, Section II/V-A):
    /// the estimate is the minimum of `dist(u, s) + dist(s, v)` over every
    /// partition in which `u` and `v` share a seed `s`.
    ///
    /// The estimate never underestimates the true distance (triangle
    /// inequality) and, with `⌈log₂ n⌉` geometric seed-set sizes per
    /// pyramid, carries the sketch's `O(log n)`-stretch guarantee with high
    /// probability. Returns `f64::INFINITY` when no partition joins the
    /// pair (e.g. different components). Distances are in the index's
    /// anchored units; `O(k log n)` time.
    pub fn approx_distance(&self, u: NodeId, v: NodeId) -> f64 {
        if u == v {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for p in &self.partitions {
            if p.same_seed(u, v) {
                let est = p.dist(u) + p.dist(v);
                if est < best {
                    best = est;
                }
            }
        }
        best
    }

    /// Absorbs a batched rescale into every partition's stored distances
    /// (multiplier `1/g`; Lemma 10). Partitions are independent, and the
    /// per-partition multiply is elementwise, so the fan-out is trivially
    /// deterministic.
    pub fn rescale(&mut self, mult: f64) {
        self.partitions.par_iter_mut().for_each(|p| p.rescale(mult));
    }

    /// Total heap bytes used by the index.
    pub fn memory_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.memory_bytes()).sum()
    }

    /// Raw parts for the compact binary snapshot codec (see DESIGN.md §11):
    /// `(partitions, k, levels, needed_votes, n)`.
    pub(crate) fn persist_parts(&self) -> (&[VoronoiPartition], usize, usize, usize, usize) {
        (&self.partitions, self.k, self.levels, self.needed_votes, self.n)
    }

    /// Reassembles an index from persisted parts. Inverse of
    /// [`Self::persist_parts`]; shape is validated by the caller via
    /// [`Self::check_invariants`].
    pub(crate) fn from_persist_parts(
        partitions: Vec<VoronoiPartition>,
        k: usize,
        levels: usize,
        needed_votes: usize,
        n: usize,
    ) -> Self {
        Self {
            partitions,
            k,
            levels,
            needed_votes,
            n,
            repair_scratch: Vec::with_capacity(0),
            seed_scratch: Vec::with_capacity(0),
        }
    }

    /// Checks the index shape (`k · ⌈log₂ n⌉` partitions with the Example 3
    /// seed counts, vote threshold in range) and every partition's
    /// shortest-path-forest invariants against `weights`; returns the first
    /// violation (testing aid).
    pub fn check_invariants(&self, g: &Graph, weights: &[f64]) -> Result<(), InvariantViolation> {
        if self.n != g.n() {
            return Err(InvariantViolation::IndexShape(format!(
                "index built for {} nodes, graph has {}",
                self.n,
                g.n()
            )));
        }
        if self.levels != Self::levels_for(self.n) {
            return Err(InvariantViolation::IndexShape(format!(
                "{} levels, want ⌈log₂ {}⌉ = {}",
                self.levels,
                self.n,
                Self::levels_for(self.n)
            )));
        }
        if self.partitions.len() != self.k * self.levels {
            return Err(InvariantViolation::IndexShape(format!(
                "{} partitions for k = {} × levels = {}",
                self.partitions.len(),
                self.k,
                self.levels
            )));
        }
        if self.needed_votes < 1 || self.needed_votes > self.k {
            return Err(InvariantViolation::IndexShape(format!(
                "vote threshold {} outside 1..={}",
                self.needed_votes, self.k
            )));
        }
        for p in 0..self.k {
            for l in 0..self.levels {
                let part = self.partition(p, l);
                let want_seeds = (1usize << l).min(self.n);
                if part.seeds().len() != want_seeds {
                    return Err(InvariantViolation::IndexShape(format!(
                        "pyramid {p} level {l} has {} seeds, want {want_seeds}",
                        part.seeds().len()
                    )));
                }
                part.check_invariants(g, weights).map_err(|detail| {
                    InvariantViolation::Partition { pyramid: p, level: l, detail }
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::{connected_caveman, paper_figure2};

    #[test]
    fn levels_formula() {
        assert_eq!(Pyramids::levels_for(2), 1);
        assert_eq!(Pyramids::levels_for(3), 2);
        assert_eq!(Pyramids::levels_for(13), 4); // paper Example 3: ⌈log₂ 13⌉ = 4
        assert_eq!(Pyramids::levels_for(16), 4);
        assert_eq!(Pyramids::levels_for(17), 5);
    }

    #[test]
    fn build_structure_matches_example_3() {
        let (g, w) = paper_figure2();
        let pyr = Pyramids::build(&g, &w, 2, 0.7, 42);
        assert_eq!(pyr.k(), 2);
        assert_eq!(pyr.num_levels(), 4);
        // Level l (0-based) has 2^l seeds (paper level l+1 has 2^l).
        for p in 0..2 {
            for l in 0..4 {
                assert_eq!(pyr.partition(p, l).seeds().len(), (1 << l).min(13));
            }
        }
        pyr.check_invariants(&g, &w).unwrap();
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, w) = paper_figure2();
        let a = Pyramids::build(&g, &w, 2, 0.7, 7);
        let b = Pyramids::build(&g, &w, 2, 0.7, 7);
        for p in 0..2 {
            for l in 0..4 {
                assert_eq!(a.partition(p, l).seeds(), b.partition(p, l).seeds());
            }
        }
        let c = Pyramids::build(&g, &w, 2, 0.7, 8);
        let same =
            (0..2).all(|p| (0..4).all(|l| a.partition(p, l).seeds() == c.partition(p, l).seeds()));
        assert!(!same, "different seeds must give different samples");
    }

    #[test]
    fn voting_thresholds() {
        // Example 4 arithmetic: k = 2, θ = 0.7 → ⌈1.4⌉ = 2 votes needed.
        let (g, w) = paper_figure2();
        let pyr = Pyramids::build(&g, &w, 2, 0.7, 1);
        assert_eq!(pyr.needed_votes(), 2);
        for l in 0..pyr.num_levels() {
            for (_, u, v) in g.iter_edges() {
                let votes = pyr.votes(u, v, l);
                assert_eq!(pyr.same_cluster(u, v, l), votes >= 2);
            }
        }
        // Level 0 has a single seed: if the graph is connected, every pair
        // shares it → all edges vote 1.
        assert!(g.iter_edges().all(|(_, u, v)| pyr.same_cluster(u, v, 0)));
    }

    #[test]
    fn update_matches_rebuild_across_all_partitions() {
        let lg = connected_caveman(4, 5);
        let g = &lg.graph;
        let mut w = vec![1.0; g.m()];
        let mut pyr = Pyramids::build(g, &w, 3, 0.7, 9);
        // Apply a few weight changes and verify invariants after each.
        let changes: &[(usize, f64)] = &[(0, 0.3), (5, 4.0), (0, 2.0), (9, 0.1)];
        for &(e, new_w) in changes {
            let old = w[e];
            w[e] = new_w;
            pyr.on_weight_change(g, &w, e as EdgeId, old);
            pyr.check_invariants(g, &w).unwrap();
        }
        // Distances equal a fresh build with the same seeds.
        for p in 0..3 {
            for l in 0..pyr.num_levels() {
                let seeds = pyr.partition(p, l).seeds().to_vec();
                let fresh = VoronoiPartition::build(g, &w, seeds);
                for v in 0..g.n() as NodeId {
                    assert!(
                        (pyr.partition(p, l).dist(v) - fresh.dist(v)).abs() < 1e-9,
                        "pyramid {p} level {l} node {v}"
                    );
                }
            }
        }
    }

    /// The grouped batch repair must reproduce the per-delta serial path
    /// **bit for bit**, including an edge that changes twice in one batch
    /// (intermediate weights matter) and inert deltas (counted as skips).
    #[test]
    fn batch_repair_matches_serial_replay_bitwise() {
        let lg = connected_caveman(4, 5);
        let g = &lg.graph;
        let w0 = vec![1.0; g.m()];
        let mut serial = Pyramids::build(g, &w0, 3, 0.7, 9);
        let mut batched = Pyramids::build(g, &w0, 3, 0.7, 9);

        // Edge 0 changes twice; edge 5 and 9 once each.
        let steps: &[(EdgeId, f64)] = &[(0, 0.3), (5, 4.0), (0, 2.0), (9, 0.1)];
        let mut w = w0.clone();
        let mut deltas = Vec::new();
        for &(e, new_w) in steps {
            let old = w[e as usize];
            w[e as usize] = new_w;
            serial.on_weight_change(g, &w, e, old);
            deltas.push((e, old, new_w));
        }
        let stats = batched.on_weight_change_batch(g, &w, &deltas);
        assert_eq!(
            stats.updates + stats.skips,
            deltas.len() * 3 * batched.num_levels(),
            "every delta visits every partition"
        );
        assert!(stats.skips > 0, "some delta × partition pairs must be inert");
        for p in 0..3 {
            for l in 0..serial.num_levels() {
                for v in 0..g.n() as NodeId {
                    assert_eq!(
                        serial.partition(p, l).dist(v).to_bits(),
                        batched.partition(p, l).dist(v).to_bits(),
                        "pyramid {p} level {l} node {v}"
                    );
                    assert_eq!(
                        serial.partition(p, l).seed_of(v),
                        batched.partition(p, l).seed_of(v)
                    );
                }
            }
        }
        batched.check_invariants(g, &w).unwrap();
    }

    /// In-place [`Pyramids::rebuild`] must be bit-identical to a fresh
    /// [`Pyramids::build`] with the same seed — seeds, distances and parent
    /// forests — even when the starting state was built under different
    /// weights and a different seed.
    #[test]
    fn rebuild_matches_fresh_build_bitwise() {
        let lg = connected_caveman(4, 5);
        let g = &lg.graph;
        let w0 = vec![1.0; g.m()];
        let w1: Vec<f64> = (0..g.m()).map(|e| if e % 3 == 0 { 0.4 } else { 2.5 }).collect();
        let mut rebuilt = Pyramids::build(g, &w0, 3, 0.7, 1);
        rebuilt.rebuild(g, &w1, 9);
        let fresh = Pyramids::build(g, &w1, 3, 0.7, 9);
        for p in 0..3 {
            for l in 0..fresh.num_levels() {
                assert_eq!(rebuilt.partition(p, l).seeds(), fresh.partition(p, l).seeds());
                for v in 0..g.n() as NodeId {
                    assert_eq!(
                        rebuilt.partition(p, l).dist(v).to_bits(),
                        fresh.partition(p, l).dist(v).to_bits(),
                        "pyramid {p} level {l} node {v}"
                    );
                    assert_eq!(
                        rebuilt.partition(p, l).seed_of(v),
                        fresh.partition(p, l).seed_of(v)
                    );
                }
            }
        }
        rebuilt.check_invariants(g, &w1).unwrap();
    }

    #[test]
    fn batch_repair_empty_is_noop() {
        let (g, w) = paper_figure2();
        let mut pyr = Pyramids::build(&g, &w, 2, 0.7, 42);
        let stats = pyr.on_weight_change_batch(&g, &w, &[]);
        assert_eq!(stats, RepairStats::default());
        pyr.check_invariants(&g, &w).unwrap();
    }

    #[test]
    fn serial_and_parallel_updates_agree() {
        let lg = connected_caveman(3, 4);
        let g = &lg.graph;
        let mut w1 = vec![1.0; g.m()];
        let mut w2 = vec![1.0; g.m()];
        let mut a = Pyramids::build(g, &w1, 2, 0.7, 3);
        let mut b = Pyramids::build(g, &w2, 2, 0.7, 3);
        for (e, new_w) in [(1usize, 0.2), (4, 3.0), (1, 1.0)] {
            let old = w1[e];
            w1[e] = new_w;
            w2[e] = new_w;
            a.on_weight_change(g, &w1, e as EdgeId, old);
            b.on_weight_change_serial(g, &w2, e as EdgeId, old);
        }
        for p in 0..2 {
            for l in 0..a.num_levels() {
                for v in 0..g.n() as NodeId {
                    assert_eq!(a.partition(p, l).dist(v), b.partition(p, l).dist(v));
                }
            }
        }
    }

    #[test]
    fn default_level_gives_sqrt_n_seeds() {
        let (g, w) = paper_figure2(); // n = 13, √13 ≈ 3.6 → level with 4 seeds = l 2
        let pyr = Pyramids::build(&g, &w, 2, 0.7, 5);
        assert_eq!(pyr.default_level(), 2);
    }

    #[test]
    fn approx_distance_upper_bounds_exact() {
        let lg = connected_caveman(4, 6);
        let g = &lg.graph;
        let w: Vec<f64> = g
            .iter_edges()
            .map(|(_, u, v)| if lg.labels[u as usize] == lg.labels[v as usize] { 0.5 } else { 3.0 })
            .collect();
        let pyr = Pyramids::build(g, &w, 4, 0.7, 17);
        for u in (0..g.n() as NodeId).step_by(3) {
            for v in (0..g.n() as NodeId).step_by(5) {
                let est = pyr.approx_distance(u, v);
                let exact = anc_graph::dijkstra::pair_distance(g, u, v, |e| w[e as usize]);
                if u == v {
                    assert_eq!(est, 0.0);
                } else {
                    assert!(
                        est >= exact - 1e-9,
                        "sketch must not underestimate: ({u},{v}) est {est} exact {exact}"
                    );
                    // Level 0 has one seed spanning the connected graph, so
                    // an estimate always exists and is at most 2× the graph
                    // "radius" through that seed — sanity-bound loosely.
                    assert!(est.is_finite(), "connected pair must get an estimate");
                }
            }
        }
    }

    #[test]
    fn approx_distance_disconnected_is_infinite() {
        let g = anc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let w = vec![1.0, 1.0];
        let pyr = Pyramids::build(&g, &w, 2, 0.7, 3);
        assert!(pyr.approx_distance(0, 2).is_infinite());
        assert!(pyr.approx_distance(0, 1).is_finite());
    }

    #[test]
    fn memory_grows_linearly_with_k() {
        let lg = connected_caveman(8, 6);
        let w = vec![1.0; lg.graph.m()];
        let m2 = Pyramids::build(&lg.graph, &w, 2, 0.7, 1).memory_bytes();
        let m4 = Pyramids::build(&lg.graph, &w, 4, 0.7, 1).memory_bytes();
        let ratio = m4 as f64 / m2 as f64;
        assert!((1.7..=2.3).contains(&ratio), "k scaling ratio {ratio}");
    }
}
