//! Cluster extraction from the pyramids index (paper Section V-B):
//! **even clustering** (connected components of positively-voted edges) and
//! **power clustering** (degree-ordered directed search, robust to voting
//! errors).

use anc_graph::traverse::connected_components_filtered;
use anc_graph::{EdgeId, Graph, NodeId};
use anc_metrics::{Clustering, NOISE};

use crate::pyramid::Pyramids;

/// Which extraction algorithm to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterMode {
    /// Connected components of the voted subgraph. Simple, but any single
    /// mis-voted edge can merge two clusters (error amplification).
    Even,
    /// The paper's `DirectedCluster`: orient voted edges from high to low
    /// degree (degree measured in the voted subgraph, ties to smaller id)
    /// and grow clusters from the highest-ranked unclustered nodes. A
    /// mis-voted edge can only leak a bounded follower set, not merge whole
    /// clusters.
    Power,
}

/// Evaluates the voting function on every edge once and caches the result.
fn voted_edges(g: &Graph, pyr: &Pyramids, level: usize) -> Vec<bool> {
    let mut kept = vec![false; g.m()];
    for (e, u, v) in g.iter_edges() {
        kept[e as usize] = pyr.same_cluster(u, v, level);
    }
    kept
}

/// Clusters the whole graph at granularity `level` (Lemma 8:
/// `O(m log n)` including the voting pass).
pub fn cluster_all(g: &Graph, pyr: &Pyramids, level: usize, mode: ClusterMode) -> Clustering {
    let kept = voted_edges(g, pyr, level);
    match mode {
        ClusterMode::Even => even_clustering_with(g, |e| kept[e as usize]),
        ClusterMode::Power => power_clustering_with(g, |e| kept[e as usize]),
    }
}

/// Even clustering over an arbitrary kept-edge predicate.
pub fn even_clustering_with<F: Fn(EdgeId) -> bool>(g: &Graph, keep: F) -> Clustering {
    let comps = connected_components_filtered(g, |_, _, e| keep(e));
    Clustering::from_labels(&comps.label)
}

/// Power clustering over an arbitrary kept-edge predicate.
///
/// 1. Compute each node's degree in the kept subgraph.
/// 2. Orient each kept edge from the higher-ranked endpoint to the lower
///    (rank: larger kept-degree first, then smaller node id — the
///    orientation under which the paper's Example 5 reproduces).
/// 3. Scan nodes by rank; each still-unclustered node seeds a cluster with
///    everything reachable from it through unclustered nodes along the
///    orientation.
pub fn power_clustering_with<F: Fn(EdgeId) -> bool>(g: &Graph, keep: F) -> Clustering {
    let n = g.n();
    let mut kept_deg = vec![0u32; n];
    for (e, u, v) in g.iter_edges() {
        if keep(e) {
            kept_deg[u as usize] += 1;
            kept_deg[v as usize] += 1;
        }
    }
    let (mut order, mut stack, mut label) = (Vec::new(), Vec::new(), Vec::new());
    power_clustering_from_deg(g, keep, &kept_deg, &mut order, &mut stack, &mut label)
}

/// Power clustering over a *precomputed* kept-degree table, with
/// caller-owned scratch (rank order, DFS stack, label array) so the cluster
/// cache can re-grow a level without reallocating or re-counting degrees it
/// maintains incrementally. `kept_deg[v]` must equal `v`'s degree in the
/// kept subgraph.
pub(crate) fn power_clustering_from_deg<F: Fn(EdgeId) -> bool>(
    g: &Graph,
    keep: F,
    kept_deg: &[u32],
    order: &mut Vec<NodeId>,
    stack: &mut Vec<NodeId>,
    label: &mut Vec<u32>,
) -> Clustering {
    let n = g.n();
    order.clear();
    order.extend(0..n as NodeId);
    order.sort_unstable_by(|&a, &b| {
        kept_deg[b as usize].cmp(&kept_deg[a as usize]).then_with(|| a.cmp(&b))
    });
    // points(a → b): a ranks strictly above b.
    let points = |a: NodeId, b: NodeId| {
        let (da, db) = (kept_deg[a as usize], kept_deg[b as usize]);
        da > db || (da == db && a < b)
    };

    label.clear();
    label.resize(n, NOISE);
    let mut next = 0u32;
    stack.clear();
    for &v in order.iter() {
        if label[v as usize] != NOISE {
            continue;
        }
        label[v as usize] = next;
        stack.push(v);
        while let Some(x) = stack.pop() {
            for (y, e) in g.edges_of(x) {
                if label[y as usize] == NOISE && keep(e) && points(x, y) {
                    label[y as usize] = next;
                    stack.push(y);
                }
            }
        }
        next += 1;
    }
    Clustering::from_labels(label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pyramid::Pyramids;
    use anc_graph::gen::{connected_caveman, paper_figure2};
    use anc_graph::Graph;

    /// Paper Example 5: at level 3 the edges (v1,v2), (v1,v3), (v4,v13),
    /// (v5,v6), (v6,v9), (v6,v10), (v8,v12), (v8,v11) are voted in. Power
    /// clustering must produce exactly the paper's 5 clusters.
    #[test]
    fn paper_example_5_power_clustering() {
        let (g, _) = paper_figure2();
        let voted: Vec<EdgeId> =
            [(1u32, 2u32), (1, 3), (4, 13), (5, 6), (6, 9), (6, 10), (8, 12), (8, 11)]
                .iter()
                .map(|&(a, b)| g.edge_id(a - 1, b - 1).unwrap())
                .collect();
        let kept = {
            let mut k = vec![false; g.m()];
            for &e in &voted {
                k[e as usize] = true;
            }
            k
        };
        let c = power_clustering_with(&g, |e| kept[e as usize]);
        // Expected (0-indexed): {v6,v5,v9,v10} = {5,4,8,9}; {v1,v2,v3} =
        // {0,1,2}; {v4,v13} = {3,12}; {v8,v11,v12} = {7,10,11}; {v7} = {6}.
        let mut groups: Vec<Vec<NodeId>> = c.groups();
        for gp in &mut groups {
            gp.sort_unstable();
        }
        groups.sort();
        let mut expected =
            vec![vec![4u32, 5, 8, 9], vec![0, 1, 2], vec![3, 12], vec![7, 10, 11], vec![6]];
        for e in &mut expected {
            e.sort_unstable();
        }
        expected.sort();
        assert_eq!(groups, expected);
        assert_eq!(c.num_clusters(), 5);
    }

    #[test]
    fn even_clustering_components() {
        let (g, _) = paper_figure2();
        // Keep only the two edges (v1,v2), (v1,v3): one 3-node component,
        // the rest singletons.
        let e12 = g.edge_id(0, 1).unwrap();
        let e13 = g.edge_id(0, 2).unwrap();
        let c = even_clustering_with(&g, |e| e == e12 || e == e13);
        assert_eq!(c.num_clusters(), 1 + 10); // {v1,v2,v3} + 10 singletons
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(0), c.label(2));
    }

    #[test]
    fn even_amplifies_errors_power_contains_them() {
        // Two star communities (hub 0 + leaves 1..5, hub 6 + leaves 7..11)
        // with one spurious voted edge between leaves 1 and 7. Even
        // clustering merges everything into one cluster through that single
        // mis-vote; power clustering leaks at most the follower leaf and
        // keeps the hubs' clusters apart (the paper's stated motivation for
        // DirectedCluster).
        let mut edges = vec![];
        for leaf in 1..6u32 {
            edges.push((0, leaf));
        }
        for leaf in 7..12u32 {
            edges.push((6, leaf));
        }
        edges.push((1, 7)); // the mis-voted bridge
        let g = Graph::from_edges(12, &edges);
        let keep_all = |_e: EdgeId| true;
        let even = even_clustering_with(&g, keep_all);
        assert_eq!(even.num_clusters(), 1, "even merges through the bridge");
        let power = power_clustering_with(&g, keep_all);
        assert_eq!(power.num_clusters(), 2, "power contains the error");
        // The two hubs stay in different clusters.
        assert_ne!(power.label(0), power.label(6));
    }

    #[test]
    fn modes_agree_on_clean_components() {
        // With the bridge removed, both modes see identical clean clusters.
        let lg = connected_caveman(3, 5);
        let g = &lg.graph;
        let bridge_edges: Vec<bool> = g
            .iter_edges()
            .map(|(_, u, v)| lg.labels[u as usize] != lg.labels[v as usize])
            .collect();
        let keep = |e: EdgeId| !bridge_edges[e as usize];
        let even = even_clustering_with(g, keep);
        let power = power_clustering_with(g, keep);
        assert_eq!(even.num_clusters(), 3);
        assert_eq!(power.num_clusters(), 3);
        for v in 0..g.n() as u32 {
            for w in 0..g.n() as u32 {
                assert_eq!(
                    even.label(v) == even.label(w),
                    power.label(v) == power.label(w),
                    "modes disagree on pair ({v},{w})"
                );
            }
        }
    }

    #[test]
    fn cluster_all_runs_on_real_index() {
        let lg = connected_caveman(4, 5);
        let g = &lg.graph;
        // Weight edges by planted structure: intra light (similar), bridges heavy.
        let w: Vec<f64> = g
            .iter_edges()
            .map(
                |(_, u, v)| if lg.labels[u as usize] == lg.labels[v as usize] { 0.2 } else { 50.0 },
            )
            .collect();
        let pyr = Pyramids::build(g, &w, 4, 0.7, 11);
        let level = pyr.num_levels() - 1; // finest granularity: 2^(levels-1) ≥ n/2 seeds
        let _even = cluster_all(g, &pyr, level, ClusterMode::Even);
        let power = cluster_all(g, &pyr, level, ClusterMode::Power);
        assert!(power.num_clusters() >= 1);
        // Level 0 (single seed) puts the whole connected graph together.
        let coarse = cluster_all(g, &pyr, 0, ClusterMode::Even);
        assert_eq!(coarse.num_clusters(), 1);
    }

    #[test]
    fn no_votes_gives_singletons() {
        let (g, _) = paper_figure2();
        let power = power_clustering_with(&g, |_| false);
        assert_eq!(power.num_clusters(), g.n());
        let even = even_clustering_with(&g, |_| false);
        assert_eq!(even.num_clusters(), g.n());
    }

    #[test]
    fn power_is_a_partition() {
        // Every node gets exactly one label, regardless of the kept set.
        let lg = connected_caveman(3, 4);
        let g = &lg.graph;
        for pattern in 0..8u32 {
            let keep = move |e: EdgeId| !(e + pattern).is_multiple_of(3);
            let c = power_clustering_with(g, keep);
            assert_eq!(c.num_assigned(), g.n(), "pattern {pattern}");
        }
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::from_edges(1, &[]);
        let c = power_clustering_with(&g, |_| true);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.label(0), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        let c = power_clustering_with(&g, |_| true);
        assert_eq!(c.num_clusters(), 0);
        let c = even_clustering_with(&g, |_| true);
        assert_eq!(c.num_clusters(), 0);
    }
}
