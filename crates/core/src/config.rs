//! Configuration of the ANC pipeline.

use anc_decay::RescaleConfig;

/// How [`crate::AncEngine::activate_batch`] evaluates a same-timestamp
/// batch (see DESIGN.md §7).
///
/// Both modes defer index repairs into one grouped
/// [`crate::Pyramids::on_weight_change_batch`] fan-out per batch, and both
/// are deterministic regardless of the rayon thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BatchMode {
    /// Bit-identical to a serial loop of [`crate::AncEngine::activate`]
    /// calls: activeness, σ and reinforcement evolve edge by edge in batch
    /// order; only the *index repairs* are deferred and replayed grouped
    /// (each at its exact per-step weights, so the resulting partitions are
    /// bit-identical too).
    Exact,
    /// Simultaneous-batch semantics: all activeness bumps land first, then
    /// σ is computed once per distinct trigger node (in parallel, over the
    /// deduplicated dirty set), then reinforcement replays sequentially
    /// against those cached σ values. Cheaper when batches revisit the same
    /// neighborhoods; results can differ from the serial loop (σ sees the
    /// whole batch's activeness at once) but not from run to run.
    Fused,
}

/// All tunables of the ANC pipeline, with the paper's defaults (Table II and
/// Section VI).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AncConfig {
    /// Time-decay factor λ of Eq. 1. Paper uses 0.1 for the synthetic
    /// activation experiments and 0.01 for the day-trace.
    pub lambda: f64,
    /// Active-neighbor threshold ε for `N_ε(v) = {u ∈ N(v) | σ(u,v) ≥ ε}`.
    /// Graph-dependent; 0.3 is a mid-range default from Table II.
    pub epsilon: f64,
    /// Core threshold µ: a node is a core if `|N_ε(v)| ≥ µ`, a p-core if
    /// `deg(v) ≥ µ` but not core, a periphery otherwise.
    pub mu: usize,
    /// Number of pyramids `k` in the index `P` (default 4, Table II).
    pub k: usize,
    /// Voting support threshold θ (paper: "normally set to 0.7").
    pub theta: f64,
    /// Repetitions of full-graph local reinforcement when initializing `S_0`
    /// (default 7; "7 repetitions are enough for a high quality clustering
    /// while 0 repetition is enough for beating the baselines").
    pub rep: usize,
    /// Absolute lower clamp on the true similarity `S_t(e)`.
    ///
    /// The paper leaves the behaviour of wedge stretch driving `S_t ≤ 0`
    /// unspecified; a positive floor keeps `1/S_t` a valid Dijkstra weight,
    /// mirroring Attractor's truncation of weights to `[0, 1]`.
    pub floor: f64,
    /// Relative lower clamp: `S_t(e)` is additionally floored at
    /// `floor_rel × mean(S_t)`.
    ///
    /// Reinforcement grows similarities multiplicatively, so an absolute
    /// floor turns into a black hole: a crushed edge's `AF ∝ F` vanishes and
    /// `TF ∝ √F` cannot outweigh wedge stretch from far-larger neighbor
    /// similarities, contradicting the paper's case study where abandoned
    /// ties *recover* once collaboration resumes. A mean-relative floor
    /// keeps crushed edges within reach of triadic consolidation: the
    /// default `1e-2` (a 100× dynamic range below the mean) is calibrated so
    /// that a freshly re-activated tie with one hot common neighbor can
    /// out-pull the wedge stretch of a decayed home neighborhood (see the
    /// `social_monitor` example and the Section VI-C case study).
    pub floor_rel: f64,
    /// Batched-rescale policy for the global decay factor.
    pub rescale: RescaleConfig,
    /// Repair the `k·⌈log₂ n⌉` Voronoi partitions in parallel on each
    /// weight change (Lemma 13). Parallelism pays off when affected regions
    /// are large (dense graphs, heavy-weight swings); for small
    /// per-activation repairs the fork/join overhead dominates, so the
    /// default is serial. The `abl_parallel` bench quantifies the
    /// trade-off.
    pub parallel_updates: bool,
    /// Semantics of the batch-ingestion pipeline
    /// ([`crate::AncEngine::activate_batch`]). [`BatchMode::Exact`] (the
    /// default) reproduces the serial per-activation path bit for bit;
    /// [`BatchMode::Fused`] trades that for deduplicated, parallel σ
    /// recomputation across the batch.
    pub batch: BatchMode,
}

impl Default for AncConfig {
    fn default() -> Self {
        Self {
            lambda: 0.1,
            epsilon: 0.3,
            mu: 3,
            k: 4,
            theta: 0.7,
            rep: 7,
            floor: 1e-9,
            floor_rel: 1e-2,
            rescale: RescaleConfig::default(),
            parallel_updates: false,
            batch: BatchMode::Exact,
        }
    }
}

impl AncConfig {
    /// Validates parameter ranges; called by the engine constructor.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid combination.
    pub fn validate(&self) {
        assert!(self.lambda >= 0.0 && self.lambda.is_finite(), "lambda must be >= 0");
        assert!((0.0..=1.0).contains(&self.epsilon), "epsilon must be in [0, 1]");
        assert!(self.mu >= 1, "mu must be >= 1");
        assert!(self.k >= 1, "k must be >= 1");
        assert!((0.0..=1.0).contains(&self.theta), "theta must be in [0, 1]");
        assert!(self.floor > 0.0, "floor must be positive (1/S must stay finite)");
        assert!(self.floor_rel > 0.0 && self.floor_rel < 1.0, "floor_rel must be in (0, 1)");
    }

    /// Minimum number of agreeing pyramids for a positive vote:
    /// `⌈θ·k⌉`, at least 1.
    pub fn needed_votes(&self) -> usize {
        ((self.theta * self.k as f64).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AncConfig::default();
        assert_eq!(c.k, 4);
        assert_eq!(c.rep, 7);
        assert!((c.theta - 0.7).abs() < 1e-12);
        c.validate();
    }

    #[test]
    fn needed_votes_examples() {
        // Paper Example 4: k = 2, θ = 0.7 → 2 ≥ ⌈1.4⌉ = 2 votes needed.
        let c = AncConfig { k: 2, ..Default::default() };
        assert_eq!(c.needed_votes(), 2);
        let c = AncConfig { k: 4, ..Default::default() };
        assert_eq!(c.needed_votes(), 3);
        let c = AncConfig { k: 16, ..Default::default() };
        assert_eq!(c.needed_votes(), 12);
    }

    #[test]
    fn batch_mode_default_and_roundtrip() {
        let c = AncConfig::default();
        assert_eq!(c.batch, BatchMode::Exact);
        let text = serde_json::to_string(&AncConfig { batch: BatchMode::Fused, ..c }).unwrap();
        let back: AncConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back.batch, BatchMode::Fused);
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn zero_floor_rejected() {
        AncConfig { floor: 0.0, ..Default::default() }.validate();
    }
}
