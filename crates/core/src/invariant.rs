//! Machine-checkable structural invariants of the engine state.
//!
//! Every piece of mutable state the engine maintains incrementally has a
//! closed-form characterization that a from-scratch recomputation would
//! satisfy by construction:
//!
//! * the CSR graph is well-formed (sorted adjacency, symmetric edge ids,
//!   everything in bounds);
//! * anchored activeness is finite and non-negative, and the per-node sums
//!   `A(v)` equal the sum of incident anchored activeness (the Def. 2
//!   algebra: anchored values absorb the global decay factor, so the
//!   incremental `+= 1/g` bumps must agree with a full rescan);
//! * anchored similarity is finite and strictly positive (Eq. 1 composed
//!   with the reinforcement floor), and the materialized reciprocal weights
//!   are `1/S*` (NegM, Lemma 4);
//! * the pyramids index has exactly `k · ⌈log₂ n⌉` partitions with the
//!   prescribed seed counts, and each Voronoi partition is a certified
//!   shortest-path forest (no relaxable edge, acyclic parents, exact
//!   children inverse — see [`crate::voronoi::VoronoiPartition`]);
//! * extracted clusterings assign every node and use dense labels.
//!
//! The checks are pure functions over slices plus public accessors, so the
//! snapshot validator ([`crate::persist`]) and the engine share one
//! implementation. [`crate::AncEngine::check_invariants`] composes them all;
//! the `debug-invariants` cargo feature additionally runs them at batch
//! boundaries (zero code is emitted when the feature is off).

use anc_graph::{Graph, NodeId};
use anc_metrics::{Clustering, NOISE};

/// A violated engine invariant, by subsystem.
///
/// The variant tells *which* maintained structure diverged from its
/// closed-form characterization; the payload pinpoints the first offending
/// element.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The CSR graph is malformed (unsorted adjacency, asymmetric edge ids,
    /// out-of-bounds endpoint, degree/edge-count mismatch).
    Graph(String),
    /// The decay store or the per-node activeness sums are inconsistent
    /// (non-finite / negative anchored value, or `A(v)` drifting from the
    /// sum of incident anchored activeness).
    Activeness(String),
    /// A similarity value is non-finite or non-positive, or the reciprocal
    /// weights are out of sync with `1/S*`.
    Similarity(String),
    /// The pyramids index has the wrong shape (level count ≠ `⌈log₂ n⌉`,
    /// wrong seed-set size, vote threshold out of range).
    IndexShape(String),
    /// A Voronoi partition violates its shortest-path-forest invariants.
    Partition {
        /// Pyramid index `p < k`.
        pyramid: usize,
        /// Granularity level (0-based).
        level: usize,
        /// First violation found inside the partition.
        detail: String,
    },
    /// An extracted clustering is invalid (wrong arity, non-dense labels,
    /// empty cluster id).
    Clustering(String),
    /// The incremental cluster-query cache diverged from a cold
    /// recomputation (stale non-dirty vote bit, drifted voted-degree table,
    /// or a cached clustering that no longer matches extraction).
    Cache(String),
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::Graph(msg) => write!(f, "graph: {msg}"),
            InvariantViolation::Activeness(msg) => write!(f, "activeness: {msg}"),
            InvariantViolation::Similarity(msg) => write!(f, "similarity: {msg}"),
            InvariantViolation::IndexShape(msg) => write!(f, "index shape: {msg}"),
            InvariantViolation::Partition { pyramid, level, detail } => {
                write!(f, "pyramid {pyramid} level {level}: {detail}")
            }
            InvariantViolation::Clustering(msg) => write!(f, "clustering: {msg}"),
            InvariantViolation::Cache(msg) => write!(f, "cluster cache: {msg}"),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Relative tolerance for algebraic identities over incrementally maintained
/// floats (matches the partition checker's).
const TOL: f64 = 1e-6;

/// Checks that every anchored similarity is finite and strictly positive —
/// the precondition for the reciprocal weights `1/S*` to be a valid distance
/// metric (Eq. 1 with the reinforcement floor applied).
///
/// Shared by [`crate::AncEngine::check_invariants`] and the snapshot
/// validator ([`crate::EngineSnapshot::validate`]).
pub fn check_similarities(sim: &[f64]) -> Result<(), InvariantViolation> {
    for (e, s) in sim.iter().enumerate() {
        if !s.is_finite() || *s <= 0.0 {
            return Err(InvariantViolation::Similarity(format!("edge {e} has similarity {s}")));
        }
    }
    Ok(())
}

/// Checks that the materialized reciprocal weights equal `1/S*` edge for
/// edge (NegM, Lemma 4). Assumes [`check_similarities`] already passed.
pub fn check_recip_sync(sim: &[f64], recip: &[f64]) -> Result<(), InvariantViolation> {
    if sim.len() != recip.len() {
        return Err(InvariantViolation::Similarity(format!(
            "recip has {} entries for {} similarities",
            recip.len(),
            sim.len()
        )));
    }
    for (e, (s, r)) in sim.iter().zip(recip).enumerate() {
        if (r - 1.0 / s).abs() > 1e-9 * r.abs() {
            return Err(InvariantViolation::Similarity(format!(
                "recip of edge {e} out of sync: {r} vs 1/{s}"
            )));
        }
    }
    Ok(())
}

/// Checks the decay store and the per-node sums: every anchored activeness
/// is finite and non-negative, and `A(v)` equals the sum of anchored
/// activeness over `v`'s incident edges (the Def. 2 algebra — both sides
/// absorb the same global factor, so the identity is scale-free).
pub fn check_activeness(
    g: &Graph,
    act: &[f64],
    node_sum: &[f64],
) -> Result<(), InvariantViolation> {
    if act.len() != g.m() {
        return Err(InvariantViolation::Activeness(format!(
            "store has {} entries for {} edges",
            act.len(),
            g.m()
        )));
    }
    if node_sum.len() != g.n() {
        return Err(InvariantViolation::Activeness(format!(
            "node_sum has {} entries for {} nodes",
            node_sum.len(),
            g.n()
        )));
    }
    for (e, a) in act.iter().enumerate() {
        if !a.is_finite() || *a < 0.0 {
            return Err(InvariantViolation::Activeness(format!("edge {e} has activeness {a}")));
        }
    }
    for v in 0..g.n() as NodeId {
        let expect: f64 = g.neighbor_edge_ids(v).iter().map(|&e| act[e as usize]).sum();
        let got = node_sum[v as usize];
        if !got.is_finite() || (got - expect).abs() > TOL * (1.0 + expect.abs()) {
            return Err(InvariantViolation::Activeness(format!(
                "A({v}) = {got} but incident activeness sums to {expect}"
            )));
        }
    }
    Ok(())
}

/// Checks CSR well-formedness: adjacency lists sorted and in bounds, no
/// self-loops, neighbor/edge-id lists aligned, edge ids symmetric (each edge
/// appears in both endpoints' lists and `endpoints` agrees), and the degree
/// sum equals `2m`.
pub fn check_graph(g: &Graph) -> Result<(), InvariantViolation> {
    let (n, m) = (g.n(), g.m());
    let mut deg_sum = 0usize;
    for v in 0..n as NodeId {
        let nbrs = g.neighbors(v);
        let eids = g.neighbor_edge_ids(v);
        if nbrs.len() != eids.len() {
            return Err(InvariantViolation::Graph(format!(
                "node {v}: {} neighbors but {} edge ids",
                nbrs.len(),
                eids.len()
            )));
        }
        deg_sum += nbrs.len();
        for (i, (&y, &e)) in nbrs.iter().zip(eids).enumerate() {
            if y as usize >= n {
                return Err(InvariantViolation::Graph(format!("node {v}: neighbor {y} ≥ n")));
            }
            if y == v {
                return Err(InvariantViolation::Graph(format!("self-loop at node {v}")));
            }
            if i > 0 && nbrs[i - 1] > y {
                return Err(InvariantViolation::Graph(format!(
                    "adjacency of node {v} unsorted at position {i}"
                )));
            }
            if e as usize >= m {
                return Err(InvariantViolation::Graph(format!("node {v}: edge id {e} ≥ m")));
            }
            let (a, b) = g.endpoints(e);
            if !((a == v && b == y) || (a == y && b == v)) {
                return Err(InvariantViolation::Graph(format!(
                    "edge {e} listed at ({v},{y}) but has endpoints ({a},{b})"
                )));
            }
        }
    }
    if deg_sum != 2 * m {
        return Err(InvariantViolation::Graph(format!("degree sum {deg_sum} ≠ 2m = {}", 2 * m)));
    }
    // Symmetry: every edge is reachable from both of its endpoints.
    for (e, u, v) in g.iter_edges() {
        if g.edge_id(u, v) != Some(e) || g.edge_id(v, u) != Some(e) {
            return Err(InvariantViolation::Graph(format!(
                "edge {e} = ({u},{v}) not found symmetrically via edge_id"
            )));
        }
    }
    Ok(())
}

/// Checks a clustering extracted from the index: one label per node, labels
/// dense in `0..num_clusters` (besides [`NOISE`]), and no empty cluster id.
pub fn check_clustering(g: &Graph, c: &Clustering) -> Result<(), InvariantViolation> {
    if c.n() != g.n() {
        return Err(InvariantViolation::Clustering(format!(
            "{} labels for {} nodes",
            c.n(),
            g.n()
        )));
    }
    let k = c.num_clusters();
    let mut seen = vec![false; k];
    for v in 0..g.n() as NodeId {
        let l = c.label(v);
        if l != NOISE {
            if l as usize >= k {
                return Err(InvariantViolation::Clustering(format!(
                    "node {v} has label {l} ≥ num_clusters {k}"
                )));
            }
            seen[l as usize] = true;
        }
    }
    if let Some(empty) = seen.iter().position(|&s| !s) {
        return Err(InvariantViolation::Clustering(format!("cluster id {empty} has no members")));
    }
    Ok(())
}

/// Checks the incremental cluster-query cache against a cold recomputation,
/// for every materialized level:
///
/// * every **non-dirty** vote bit equals the live voting function — this is
///   the soundness of the affected-set → dirty-edge translation (an edge
///   the translation did not mark must still hold its true vote);
/// * the maintained voted-degree table equals a recount from the bitset;
/// * with no dirty edges pending, every cached clustering equals the cold
///   extraction [`crate::cluster::cluster_all`] would produce.
pub fn check_cluster_cache(
    g: &Graph,
    pyr: &crate::pyramid::Pyramids,
    cache: &crate::cache::ClusterCache,
) -> Result<(), InvariantViolation> {
    use crate::cluster::{cluster_all, ClusterMode};
    for level in 0..cache.num_levels() {
        let (Some(voted), Some(dirty), Some(kept_deg)) =
            (cache.voted_bits(level), cache.dirty_bits(level), cache.voted_degrees(level))
        else {
            continue;
        };
        let mut recount = vec![0u32; g.n()];
        for (e, u, v) in g.iter_edges() {
            let truth = pyr.same_cluster(u, v, level);
            if !dirty.get(e) && voted.get(e) != truth {
                return Err(InvariantViolation::Cache(format!(
                    "level {level}: non-dirty edge {e} cached vote {} but index says {truth}",
                    voted.get(e)
                )));
            }
            if voted.get(e) {
                recount[u as usize] += 1;
                recount[v as usize] += 1;
            }
        }
        if kept_deg != recount {
            let v = (0..g.n()).find(|&v| kept_deg[v] != recount[v]).unwrap_or(0);
            return Err(InvariantViolation::Cache(format!(
                "level {level}: voted degree of node {v} is {} but bitset recount gives {}",
                kept_deg[v], recount[v]
            )));
        }
        if cache.dirty_count(level) == Some(0) {
            for mode in [ClusterMode::Even, ClusterMode::Power] {
                if let Some(cached) = cache.cached(level, mode) {
                    let cold = cluster_all(g, pyr, level, mode);
                    if *cached != cold {
                        return Err(InvariantViolation::Cache(format!(
                            "level {level}: cached {mode:?} clustering diverged from cold \
                             extraction ({} vs {} clusters)",
                            cached.num_clusters(),
                            cold.num_clusters()
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::paper_figure2;

    #[test]
    fn similarities_accept_positive_finite() {
        check_similarities(&[1.0, 0.5, 1e300]).unwrap();
        assert!(matches!(check_similarities(&[1.0, 0.0]), Err(InvariantViolation::Similarity(_))));
        assert!(matches!(check_similarities(&[f64::NAN]), Err(InvariantViolation::Similarity(_))));
        assert!(matches!(check_similarities(&[-2.0]), Err(InvariantViolation::Similarity(_))));
        assert!(matches!(
            check_similarities(&[f64::INFINITY]),
            Err(InvariantViolation::Similarity(_))
        ));
    }

    #[test]
    fn recip_sync_detects_drift() {
        check_recip_sync(&[2.0, 4.0], &[0.5, 0.25]).unwrap();
        assert!(check_recip_sync(&[2.0], &[0.5000001]).is_err());
        assert!(check_recip_sync(&[2.0, 4.0], &[0.5]).is_err());
    }

    #[test]
    fn activeness_consistency() {
        let (g, _) = paper_figure2();
        let act = vec![1.0; g.m()];
        let node_sum: Vec<f64> = (0..g.n() as NodeId).map(|v| g.degree(v) as f64).collect();
        check_activeness(&g, &act, &node_sum).unwrap();
        // A drifted node sum is caught.
        let mut bad = node_sum.clone();
        bad[3] += 0.5;
        assert!(matches!(check_activeness(&g, &act, &bad), Err(InvariantViolation::Activeness(_))));
        // A negative anchored activeness is caught.
        let mut bad_act = act.clone();
        bad_act[0] = -1.0;
        assert!(check_activeness(&g, &bad_act, &node_sum).is_err());
        // Arity mismatches are caught.
        assert!(check_activeness(&g, &act[1..], &node_sum).is_err());
        assert!(check_activeness(&g, &act, &node_sum[1..]).is_err());
    }

    #[test]
    fn built_graphs_are_well_formed() {
        let (g, _) = paper_figure2();
        check_graph(&g).unwrap();
        check_graph(&anc_graph::gen::erdos_renyi(40, 80, 3)).unwrap();
        check_graph(&anc_graph::gen::barabasi_albert(50, 3, 9)).unwrap();
    }

    #[test]
    fn clustering_validity() {
        let (g, _) = paper_figure2();
        let n = g.n();
        let dense = Clustering::from_labels(&vec![0; n]);
        check_clustering(&g, &dense).unwrap();
        check_clustering(&g, &Clustering::all_noise(n)).unwrap();
        check_clustering(&g, &Clustering::singletons(n)).unwrap();
        // Wrong arity.
        assert!(matches!(
            check_clustering(&g, &Clustering::all_noise(n + 1)),
            Err(InvariantViolation::Clustering(_))
        ));
        // `from_groups` can leave an empty cluster id only by construction
        // from raw member lists; densified labels cannot, so build the gap
        // explicitly: group 0 empty, group 1 holds node 0.
        let gappy = Clustering::from_groups(n, &[vec![], vec![0]]);
        assert!(matches!(check_clustering(&g, &gappy), Err(InvariantViolation::Clustering(_))));
    }
}
