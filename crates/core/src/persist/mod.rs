//! Checkpoint and restore for the online engine.
//!
//! A production deployment of an activation-network index must survive
//! restarts without replaying the entire activation history or paying a
//! full re-index (`O(n log² n + m log n)`, Exp 3). [`EngineSnapshot`]
//! captures the complete engine state — anchored activeness, similarity,
//! the pyramids with their shortest-path forests, the decay clock — in a
//! serde-serializable form; restoring is `O(state)` with no recomputation.
//!
//! Three encodings share the snapshot model (DESIGN.md §11):
//!
//! * **JSON** ([`AncEngine::save_json`] / [`AncEngine::load_json`]) —
//!   self-describing, serde-generic, human-inspectable; by far the largest.
//! * **Binary** ([`binary`], [`AncEngine::save_binary`] /
//!   [`AncEngine::load_binary`]) — versioned compact format with
//!   delta-encoded topology, varint ids and optionally `f32`-quantized
//!   float arrays, integrity-checked end to end by a CRC-32 trailer.
//! * **Delta log** ([`wal`], [`wal::DurableEngine`]) — an append-only
//!   activation log over a base binary snapshot with per-record checksums,
//!   periodic compaction and crash recovery by suffix replay.
//!
//! **Derived state is excluded.** The incremental cluster-query cache
//! ([`crate::ClusterCache`]) is deliberately not part of the snapshot: every
//! cached bitset and clustering is a pure function of the pyramids, so
//! serializing it would only duplicate state that can drift. A restored
//! engine constructs an empty cache and refills it lazily — the first
//! `cluster_all` per level pays one parallel voting pass and lands on
//! labels identical to the pre-snapshot engine's.

use anc_decay::{ActivenessStore, DecayClock};
use anc_graph::codec::CodecError;
use anc_graph::Graph;
use serde::{Deserialize, Serialize};

use crate::engine::AncEngine;
use crate::invariant::InvariantViolation;
use crate::pyramid::Pyramids;
use crate::AncConfig;

pub mod binary;
pub mod wal;

pub use binary::SnapshotProfile;
pub use wal::{DurabilityOptions, DurableEngine, WalReader, WalRecord, SNAPSHOT_FILE, WAL_FILE};

/// The complete serializable state of an [`AncEngine`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The relation network.
    pub graph: Graph,
    /// Engine configuration.
    pub config: AncConfig,
    /// Decay clock (current time, anchor, rescale policy).
    pub clock: DecayClock,
    /// Anchored activeness per edge.
    pub activeness: ActivenessStore,
    /// Anchored per-node activeness sums.
    pub node_sum: Vec<f64>,
    /// Anchored similarity per edge.
    pub sim: Vec<f64>,
    /// The pyramids index (partitions, seeds, shortest-path forests).
    pub pyramids: Pyramids,
    /// RNG seed the index was built with (reused by offline rebuilds).
    pub index_seed: u64,
    /// Running anchored-similarity sum (relative floor).
    pub sim_sum: f64,
    /// Lifetime counters.
    pub activations: u64,
    /// Batched rescales performed.
    pub rescales: u64,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Errors from snapshot/log restore.
#[derive(Debug)]
pub enum RestoreError {
    /// The snapshot's version field is not supported.
    UnsupportedVersion(u32),
    /// The input does not start with the expected magic bytes — it is not
    /// an ANC snapshot/log at all (or the header itself is corrupted).
    BadMagic,
    /// A CRC-32 integrity check failed: the bytes were damaged after they
    /// were written.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum of the bytes actually read.
        found: u32,
    },
    /// The input ended mid-structure (e.g. a torn write at the tail of a
    /// log). `offset` is the byte position at which more input was needed.
    Truncated {
        /// Byte offset of the premature end.
        offset: usize,
    },
    /// Structural inconsistency between parts of the snapshot.
    Inconsistent(String),
    /// The snapshot state violates an engine invariant (see
    /// [`crate::invariant`]).
    Invariant(InvariantViolation),
    /// Serde/codec failure.
    Codec(String),
    /// Filesystem failure while reading or writing persistent state.
    Io(std::io::Error),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            RestoreError::BadMagic => write!(f, "bad magic: not an ANC snapshot/log"),
            RestoreError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: stored {expected:#010x}, computed {found:#010x}")
            }
            RestoreError::Truncated { offset } => write!(f, "input truncated at byte {offset}"),
            RestoreError::Inconsistent(msg) => write!(f, "inconsistent snapshot: {msg}"),
            RestoreError::Invariant(v) => write!(f, "snapshot violates invariant: {v}"),
            RestoreError::Codec(msg) => write!(f, "codec error: {msg}"),
            RestoreError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<CodecError> for RestoreError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::UnexpectedEof { offset } => RestoreError::Truncated { offset },
            other => RestoreError::Codec(other.to_string()),
        }
    }
}

impl From<std::io::Error> for RestoreError {
    fn from(e: std::io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// Little-endian `u32` from the first 4 bytes of a (length-checked) slice.
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Little-endian `u64` from the first 8 bytes of a (length-checked) slice.
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Borrowed view of every persisted engine field — lets the binary codec
/// encode straight from a live engine without the full-state clone
/// [`AncEngine::to_snapshot`] performs (which at `n = 10⁶` would copy
/// hundreds of megabytes just to serialize them).
pub(crate) struct PersistView<'a> {
    pub graph: &'a Graph,
    pub config: &'a AncConfig,
    pub clock: &'a DecayClock,
    pub activeness: &'a [f64],
    pub node_sum: &'a [f64],
    pub sim: &'a [f64],
    pub pyramids: &'a Pyramids,
    pub index_seed: u64,
    pub sim_sum: f64,
    pub activations: u64,
    pub rescales: u64,
}

impl EngineSnapshot {
    /// Validates internal consistency (sizes line up, similarities positive).
    pub fn validate(&self) -> Result<(), RestoreError> {
        if self.version != SNAPSHOT_VERSION {
            return Err(RestoreError::UnsupportedVersion(self.version));
        }
        let (n, m) = (self.graph.n(), self.graph.m());
        if self.sim.len() != m {
            return Err(RestoreError::Inconsistent(format!(
                "sim has {} entries for {m} edges",
                self.sim.len()
            )));
        }
        if self.activeness.len() != m {
            return Err(RestoreError::Inconsistent(format!(
                "activeness has {} entries for {m} edges",
                self.activeness.len()
            )));
        }
        if self.node_sum.len() != n {
            return Err(RestoreError::Inconsistent(format!(
                "node_sum has {} entries for {n} nodes",
                self.node_sum.len()
            )));
        }
        // Shared with the engine's own checker — one validator, two callers.
        crate::invariant::check_similarities(&self.sim).map_err(RestoreError::Invariant)?;
        crate::invariant::check_graph(&self.graph).map_err(RestoreError::Invariant)?;
        Ok(())
    }
}

impl AncEngine {
    /// Serializes the engine to a self-describing JSON stream.
    pub fn save_json<W: std::io::Write>(&self, writer: W) -> Result<(), RestoreError> {
        serde_json::to_writer(writer, &self.to_snapshot())
            .map_err(|e| RestoreError::Codec(e.to_string()))
    }

    /// Restores an engine from a JSON stream produced by
    /// [`AncEngine::save_json`].
    pub fn load_json<R: std::io::Read>(reader: R) -> Result<Self, RestoreError> {
        let snapshot: EngineSnapshot =
            serde_json::from_reader(reader).map_err(|e| RestoreError::Codec(e.to_string()))?;
        Self::from_snapshot(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterMode;
    use anc_graph::gen::connected_caveman;

    fn streamed_engine() -> AncEngine {
        let lg = connected_caveman(3, 5);
        let cfg = AncConfig { rep: 1, k: 2, ..Default::default() };
        let mut engine = AncEngine::new(lg.graph, cfg, 9);
        let m = engine.graph().m() as u32;
        for i in 0..40u32 {
            engine.activate((i * 7 + 2) % m, i as f64 * 0.4);
        }
        engine
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything_observable() {
        let engine = streamed_engine();
        let mut buf = Vec::new();
        engine.save_json(&mut buf).unwrap();
        let restored = AncEngine::load_json(buf.as_slice()).unwrap();

        assert_eq!(restored.now(), engine.now());
        assert_eq!(restored.activations(), engine.activations());
        for e in 0..engine.graph().m() as u32 {
            assert_eq!(restored.similarity(e), engine.similarity(e));
            assert_eq!(restored.activeness(e), engine.activeness(e));
        }
        for level in 0..engine.num_levels() {
            assert_eq!(
                restored.cluster_all(level, ClusterMode::Power),
                engine.cluster_all(level, ClusterMode::Power),
                "clustering differs at level {level}"
            );
        }
        restored.check_invariants().unwrap();
    }

    #[test]
    fn restored_engine_keeps_processing() {
        let engine = streamed_engine();
        let mut buf = Vec::new();
        engine.save_json(&mut buf).unwrap();
        let mut live = engine;
        let mut restored = AncEngine::load_json(buf.as_slice()).unwrap();
        // Both process the same continuation identically.
        let m = live.graph().m() as u32;
        for i in 0..20u32 {
            let (e, t) = ((i * 3 + 1) % m, 20.0 + i as f64);
            live.activate(e, t);
            restored.activate(e, t);
        }
        for e in 0..m {
            assert!((live.similarity(e) - restored.similarity(e)).abs() < 1e-12);
        }
        restored.check_invariants().unwrap();
    }

    /// The cluster-query cache is not serialized: a restored engine starts
    /// cold, rebuilds lazily on first query, and converges to the same
    /// labels and cache behavior as the live engine.
    #[test]
    fn restored_engine_rebuilds_cluster_cache_lazily() {
        let live = streamed_engine();
        let level = live.default_level();
        // Warm the live cache so the snapshot is taken from an engine with
        // materialized levels.
        let (live_arc, live_stats) = live.cluster_all_cached(level, ClusterMode::Power);
        assert!(live.cluster_cache().is_materialized(level));
        let mut buf = Vec::new();
        live.save_json(&mut buf).unwrap();

        let restored = AncEngine::load_json(buf.as_slice()).unwrap();
        assert!(
            !restored.cluster_cache().has_materialized_levels(),
            "cache must not travel through the snapshot"
        );
        let (cold_arc, cold_stats) = restored.cluster_all_cached(level, ClusterMode::Power);
        assert_eq!(cold_stats.decision, crate::cache::QueryDecision::ColdFill);
        assert_eq!(*cold_arc, *live_arc, "lazy refill must reproduce the live labels");
        // Second query is a pointer hit, same as on the live engine.
        let (again, stats) = restored.cluster_all_cached(level, ClusterMode::Power);
        assert_eq!(stats.decision, crate::cache::QueryDecision::Hit);
        assert!(std::sync::Arc::ptr_eq(&cold_arc, &again));
        let _ = live_stats;
        restored.check_invariants().unwrap();
    }

    #[test]
    fn corrupted_snapshots_rejected() {
        let engine = streamed_engine();
        let mut snap = engine.to_snapshot();
        snap.sim.pop();
        let err = AncEngine::from_snapshot(snap.clone()).err().expect("must fail");
        assert!(matches!(err, RestoreError::Inconsistent(_)), "{err}");
        snap.sim.push(1.0);
        snap.version = 999;
        let err = AncEngine::from_snapshot(snap).err().expect("must fail");
        assert!(matches!(err, RestoreError::UnsupportedVersion(999)), "{err}");
        // Garbage bytes.
        let err = AncEngine::load_json(&b"not json"[..]).err().expect("must fail");
        assert!(matches!(err, RestoreError::Codec(_)), "{err}");
    }
}
