//! Compact versioned binary snapshot format (DESIGN.md §11).
//!
//! Layout (all integers little-endian; varints are LEB128, signed values
//! zigzag-mapped):
//!
//! ```text
//! "ANCS"  magic (4 bytes)
//! u32     format version (currently 1)
//! u8      profile: 0 = Exact, 1 = Compact
//! body    (see below)
//! u32     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! Body, in order: config, decay-clock parts, delta-encoded CSR topology
//! ([`anc_graph::codec::encode_graph`]), anchored activeness per edge,
//! per-node activeness sums (Exact only), anchored similarity per edge,
//! running similarity sum (Exact only), index RNG seed, lifetime counters,
//! then the pyramids — per partition only the persisted essence
//! `(seeds, seed_of, dist, parent)`:
//!
//! * seeds as zigzag deltas in stored (sampling) order;
//! * `seed_of` as a varint index into the partition's seed list (`0` =
//!   unreachable, else index + 1) — 1–3 bytes instead of a raw node id;
//! * `parent` as the zigzag delta `parent − v` (`0` = no parent; a parent
//!   is never the node itself, so the delta is never 0);
//! * `dist` as a tagged float array (see below).
//!
//! Children lists, update marks and stamps are **not** stored: children
//! are a pure function of the parent array now that
//! [`crate::voronoi::VoronoiPartition`] keeps them in canonical sorted
//! order, and marks only discriminate within a single update. Dropping
//! them removes roughly half of a partition's bytes, and a restored engine
//! still evolves bit-identically to the live one.
//!
//! ## Profiles and the exactness escape hatch
//!
//! [`SnapshotProfile::Exact`] stores every float as raw `f64` bits — a
//! restored engine is bit-identical to the saved one. This is the profile
//! the write-ahead log builds on ([`crate::persist::wal`]).
//!
//! [`SnapshotProfile::Compact`] quantizes the big per-edge/per-node float
//! arrays (activeness, similarity, per-partition distances) to `f32` and
//! recomputes the derived `node_sum`/`sim_sum` aggregates on load. The
//! engine's invariant tolerances are relative `1e-6`; `f32` rounding is
//! relative `~1.2e-7`, so a Compact restore still passes every invariant
//! check while roughly halving the file. Each array carries a one-byte
//! tag, and quantization falls back to raw `f64` for any array holding a
//! value `f32` cannot represent faithfully (overflow to ∞, or a nonzero
//! collapsing to zero/subnormal) — the escape hatch that keeps the format
//! exactness-preserving even for extreme anchored magnitudes near the
//! rescale exponent guard. Both profiles are *re-save idempotent*:
//! `save(load(bytes))` reproduces `bytes` exactly.

use anc_decay::{ActivenessStore, ClockParts, DecayClock, RescaleConfig};
use anc_graph::codec::{
    crc32, decode_graph, encode_graph, put_f32, put_f64, put_ivarint, put_u32, put_u64, put_u8,
    put_uvarint, Reader,
};
use anc_graph::{Graph, NodeId, NO_NODE};

use crate::engine::AncEngine;
use crate::pyramid::Pyramids;
use crate::voronoi::VoronoiPartition;
use crate::{AncConfig, BatchMode};

use super::{le_u32, EngineSnapshot, PersistView, RestoreError, SNAPSHOT_VERSION};

/// Magic bytes opening every binary snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ANCS";

/// Binary snapshot format version.
pub const BINARY_VERSION: u32 = 1;

/// Float fidelity of a binary snapshot (see the module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotProfile {
    /// Raw `f64` bits everywhere; restore is bit-identical. The WAL's base
    /// snapshots always use this profile.
    Exact,
    /// `f32`-quantized float arrays with a per-array raw-`f64` fallback;
    /// derived aggregates recomputed on load. Roughly half the size.
    Compact,
}

impl SnapshotProfile {
    fn to_byte(self) -> u8 {
        match self {
            SnapshotProfile::Exact => 0,
            SnapshotProfile::Compact => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, RestoreError> {
        match b {
            0 => Ok(SnapshotProfile::Exact),
            1 => Ok(SnapshotProfile::Compact),
            other => Err(RestoreError::Codec(format!("unknown snapshot profile {other}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Tagged float arrays (the quantization escape hatch)
// ---------------------------------------------------------------------------

const TAG_F64: u8 = 0;
const TAG_F32: u8 = 1;

/// Whether every value survives an `f64 → f32 → f64` round trip with full
/// relative precision: finite values must stay finite and normal (or zero),
/// infinities must stay infinite. NaN never appears in engine state, so it
/// conservatively forces the raw fallback.
fn f32_faithful(vals: &[f64]) -> bool {
    vals.iter().all(|&x| {
        if x.is_nan() {
            return false;
        }
        if x.is_infinite() {
            return true; // ±∞ narrows to ±∞
        }
        // audit:allow(lossy-persist) -- the roundtrip probe deciding whether f32 is faithful
        let y = x as f32;
        x == 0.0 || (y.is_finite() && y.abs() >= f32::MIN_POSITIVE)
    })
}

fn put_float_array(out: &mut Vec<u8>, vals: &[f64], profile: SnapshotProfile) {
    let quantize = profile == SnapshotProfile::Compact && f32_faithful(vals);
    if quantize {
        put_u8(out, TAG_F32);
        for &v in vals {
            // audit:allow(lossy-persist) -- the tagged Compact escape hatch: f32_faithful gated
            put_f32(out, v as f32);
        }
    } else {
        put_u8(out, TAG_F64);
        for &v in vals {
            put_f64(out, v);
        }
    }
}

fn read_float_array(r: &mut Reader<'_>, len: usize) -> Result<Vec<f64>, RestoreError> {
    let mut vals = Vec::with_capacity(len);
    match r.u8()? {
        TAG_F64 => {
            for _ in 0..len {
                vals.push(r.f64()?);
            }
        }
        TAG_F32 => {
            for _ in 0..len {
                vals.push(r.f32()? as f64);
            }
        }
        other => return Err(RestoreError::Codec(format!("unknown float-array tag {other}"))),
    }
    Ok(vals)
}

// ---------------------------------------------------------------------------
// Config and clock
// ---------------------------------------------------------------------------

fn encode_config(out: &mut Vec<u8>, c: &AncConfig) {
    put_f64(out, c.lambda);
    put_f64(out, c.epsilon);
    put_uvarint(out, c.mu as u64);
    put_uvarint(out, c.k as u64);
    put_f64(out, c.theta);
    put_uvarint(out, c.rep as u64);
    put_f64(out, c.floor);
    put_f64(out, c.floor_rel);
    put_uvarint(out, c.rescale.every_activations as u64);
    put_f64(out, c.rescale.exponent_guard);
    put_u8(out, u8::from(c.parallel_updates));
    put_u8(
        out,
        match c.batch {
            BatchMode::Exact => 0,
            BatchMode::Fused => 1,
        },
    );
}

fn decode_config(r: &mut Reader<'_>) -> Result<AncConfig, RestoreError> {
    let cfg = AncConfig {
        lambda: r.f64()?,
        epsilon: r.f64()?,
        mu: r.uvarint_len()?,
        k: r.uvarint_len()?,
        theta: r.f64()?,
        rep: r.uvarint_len()?,
        floor: r.f64()?,
        floor_rel: r.f64()?,
        rescale: RescaleConfig { every_activations: r.uvarint_len()?, exponent_guard: r.f64()? },
        parallel_updates: r.u8()? != 0,
        batch: match r.u8()? {
            0 => BatchMode::Exact,
            1 => BatchMode::Fused,
            other => {
                return Err(RestoreError::Codec(format!("unknown batch mode {other}")));
            }
        },
    };
    // Mirror `AncConfig::validate` without its panics: the CRC has already
    // passed by the time state is adopted, but a version-skewed or
    // hand-edited file must surface a typed error, not an assert.
    let ok = cfg.lambda >= 0.0
        && cfg.lambda.is_finite()
        && (0.0..=1.0).contains(&cfg.epsilon)
        && cfg.mu >= 1
        && cfg.k >= 1
        && (0.0..=1.0).contains(&cfg.theta)
        && cfg.floor > 0.0
        && cfg.floor_rel > 0.0
        && cfg.floor_rel < 1.0;
    if !ok {
        return Err(RestoreError::Inconsistent(format!("config out of range: {cfg:?}")));
    }
    Ok(cfg)
}

fn encode_clock(out: &mut Vec<u8>, clock: &DecayClock) {
    let p = clock.to_parts();
    put_f64(out, p.lambda);
    put_f64(out, p.now);
    put_f64(out, p.anchor);
    put_uvarint(out, p.cfg.every_activations as u64);
    put_f64(out, p.cfg.exponent_guard);
    put_uvarint(out, p.activations_since_rescale as u64);
}

fn decode_clock(r: &mut Reader<'_>) -> Result<DecayClock, RestoreError> {
    let parts = ClockParts {
        lambda: r.f64()?,
        now: r.f64()?,
        anchor: r.f64()?,
        cfg: RescaleConfig { every_activations: r.uvarint_len()?, exponent_guard: r.f64()? },
        activations_since_rescale: r.uvarint_len()?,
    };
    if !(parts.lambda >= 0.0 && parts.lambda.is_finite()) {
        return Err(RestoreError::Inconsistent(format!("clock lambda {} invalid", parts.lambda)));
    }
    Ok(DecayClock::from_parts(parts))
}

// ---------------------------------------------------------------------------
// Pyramids
// ---------------------------------------------------------------------------

fn encode_pyramids(out: &mut Vec<u8>, pyr: &Pyramids, profile: SnapshotProfile) {
    let (partitions, k, levels, needed_votes, n) = pyr.persist_parts();
    put_uvarint(out, k as u64);
    put_uvarint(out, levels as u64);
    put_uvarint(out, needed_votes as u64);
    put_uvarint(out, n as u64);
    // Scratch map node id → index in the current partition's seed list;
    // only the touched entries are reset between partitions.
    let mut seed_index: Vec<u32> = Vec::with_capacity(n);
    seed_index.resize(n, u32::MAX);
    for part in partitions {
        let (seeds, seed_of, dist, parent) = part.persist_parts();
        put_uvarint(out, seeds.len() as u64);
        let mut prev: i64 = 0;
        for &s in seeds {
            put_ivarint(out, s as i64 - prev);
            prev = s as i64;
        }
        for (i, &s) in seeds.iter().enumerate() {
            // audit:allow(lossy-persist) -- i < seeds.len() ≤ n, and node ids are u32 already
            seed_index[s as usize] = i as u32;
        }
        for &sv in seed_of {
            if sv == NO_NODE {
                put_uvarint(out, 0);
            } else {
                put_uvarint(out, seed_index[sv as usize] as u64 + 1);
            }
        }
        for &s in seeds {
            seed_index[s as usize] = u32::MAX;
        }
        for (v, &p) in parent.iter().enumerate() {
            if p == NO_NODE {
                put_uvarint(out, 0);
            } else {
                // parent ≠ v, so the zigzag varint is never the 0 sentinel.
                put_ivarint(out, p as i64 - v as i64);
            }
        }
        put_float_array(out, dist, profile);
    }
}

fn decode_pyramids(r: &mut Reader<'_>, g: &Graph) -> Result<Pyramids, RestoreError> {
    let k = r.uvarint_len()?;
    let levels = r.uvarint_len()?;
    let needed_votes = r.uvarint_len()?;
    let n = r.uvarint_len()?;
    if n != g.n() {
        return Err(RestoreError::Inconsistent(format!(
            "pyramids built for {n} nodes, graph has {}",
            g.n()
        )));
    }
    let total = k.checked_mul(levels).ok_or_else(|| {
        RestoreError::Inconsistent(format!("k = {k} × levels = {levels} overflows"))
    })?;
    let mut partitions = Vec::with_capacity(total);
    for _ in 0..total {
        let seed_count = r.uvarint_len()?;
        if seed_count > n {
            return Err(RestoreError::Inconsistent(format!(
                "partition has {seed_count} seeds for {n} nodes"
            )));
        }
        let mut seeds = Vec::with_capacity(seed_count);
        let mut prev: i64 = 0;
        for _ in 0..seed_count {
            let s = prev + r.ivarint()?;
            if s < 0 || s >= n as i64 {
                return Err(RestoreError::Inconsistent(format!("seed {s} out of range")));
            }
            seeds.push(s as NodeId);
            prev = s;
        }
        let mut seed_of = Vec::with_capacity(n);
        for v in 0..n {
            let z = r.uvarint()?;
            if z == 0 {
                seed_of.push(NO_NODE);
            } else {
                let idx = (z - 1) as usize;
                if idx >= seed_count {
                    return Err(RestoreError::Inconsistent(format!(
                        "node {v}: seed index {idx} out of range for {seed_count} seeds"
                    )));
                }
                seed_of.push(seeds[idx]);
            }
        }
        let mut parent = Vec::with_capacity(n);
        for v in 0..n {
            let d = r.ivarint()?;
            if d == 0 {
                parent.push(NO_NODE);
            } else {
                let p = v as i64 + d;
                if p < 0 || p >= n as i64 {
                    return Err(RestoreError::Inconsistent(format!(
                        "node {v}: parent {p} out of range"
                    )));
                }
                parent.push(p as NodeId);
            }
        }
        let dist = read_float_array(r, n)?;
        partitions.push(VoronoiPartition::from_persist_parts(seeds, seed_of, dist, parent));
    }
    Ok(Pyramids::from_persist_parts(partitions, k, levels, needed_votes, n))
}

// ---------------------------------------------------------------------------
// Whole-snapshot encode/decode
// ---------------------------------------------------------------------------

/// Encodes the complete engine state into the binary snapshot format.
pub(crate) fn encode_snapshot(view: &PersistView<'_>, profile: SnapshotProfile) -> Vec<u8> {
    let (n, m) = (view.graph.n(), view.graph.m());
    // Rough pre-size: topology + two per-edge arrays + pyramids.
    let mut out = Vec::with_capacity(64 + 12 * m + 16 * n);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut out, BINARY_VERSION);
    put_u8(&mut out, profile.to_byte());
    encode_config(&mut out, view.config);
    encode_clock(&mut out, view.clock);
    encode_graph(view.graph, &mut out);
    put_float_array(&mut out, view.activeness, profile);
    if profile == SnapshotProfile::Exact {
        // Compact recomputes these aggregates on load instead.
        for &v in view.node_sum {
            put_f64(&mut out, v);
        }
    }
    put_float_array(&mut out, view.sim, profile);
    if profile == SnapshotProfile::Exact {
        put_f64(&mut out, view.sim_sum);
    }
    put_u64(&mut out, view.index_seed);
    put_uvarint(&mut out, view.activations);
    put_uvarint(&mut out, view.rescales);
    encode_pyramids(&mut out, view.pyramids, profile);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decodes a binary snapshot into the serde-level [`EngineSnapshot`]
/// model, verifying the magic, version and CRC-32 trailer first.
pub fn decode_snapshot(bytes: &[u8]) -> Result<EngineSnapshot, RestoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() {
        return Err(RestoreError::Truncated { offset: bytes.len() });
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(RestoreError::BadMagic);
    }
    if bytes.len() < 13 {
        // magic + version + profile + trailing crc
        return Err(RestoreError::Truncated { offset: bytes.len() });
    }
    let body_end = bytes.len() - 4;
    let expected = le_u32(&bytes[body_end..]);
    let found = crc32(&bytes[..body_end]);
    if expected != found {
        return Err(RestoreError::ChecksumMismatch { expected, found });
    }
    let mut r = Reader::new(&bytes[4..body_end]);
    let version = r.u32()?;
    if version != BINARY_VERSION {
        return Err(RestoreError::UnsupportedVersion(version));
    }
    let profile = SnapshotProfile::from_byte(r.u8()?)?;
    let config = decode_config(&mut r)?;
    let clock = decode_clock(&mut r)?;
    let graph = decode_graph(&mut r).map_err(RestoreError::from)?;
    let (n, m) = (graph.n(), graph.m());
    let activeness = read_float_array(&mut r, m)?;
    let node_sum = match profile {
        SnapshotProfile::Exact => {
            let mut sums = Vec::with_capacity(n);
            for _ in 0..n {
                sums.push(r.f64()?);
            }
            sums
        }
        // Recomputed in the exact order `invariant::check_activeness` sums
        // incident edges, so the restored aggregate matches the checker
        // bit for bit.
        SnapshotProfile::Compact => (0..n as NodeId)
            .map(|v| graph.neighbor_edge_ids(v).iter().map(|&e| activeness[e as usize]).sum())
            .collect(),
    };
    let sim = read_float_array(&mut r, m)?;
    let sim_sum = match profile {
        SnapshotProfile::Exact => r.f64()?,
        SnapshotProfile::Compact => sim.iter().sum(),
    };
    let index_seed = r.u64()?;
    let activations = r.uvarint()?;
    let rescales = r.uvarint()?;
    let pyramids = decode_pyramids(&mut r, &graph)?;
    if !r.is_empty() {
        return Err(RestoreError::Codec(format!(
            "{} trailing bytes after snapshot",
            r.remaining()
        )));
    }
    Ok(EngineSnapshot {
        version: SNAPSHOT_VERSION,
        graph,
        config,
        clock,
        activeness: ActivenessStore::from_anchored(activeness),
        node_sum,
        sim,
        pyramids,
        index_seed,
        sim_sum,
        activations,
        rescales,
    })
}

impl AncEngine {
    /// Serializes the engine into the compact binary snapshot format
    /// (DESIGN.md §11). [`SnapshotProfile::Exact`] restores bit-identically;
    /// [`SnapshotProfile::Compact`] quantizes the float arrays to `f32`
    /// (with a per-array exactness fallback) for roughly half the bytes.
    pub fn save_binary<W: std::io::Write>(
        &self,
        mut writer: W,
        profile: SnapshotProfile,
    ) -> Result<(), RestoreError> {
        let bytes = encode_snapshot(&self.persist_view(), profile);
        writer.write_all(&bytes)?;
        Ok(())
    }

    /// Restores an engine from a binary snapshot produced by
    /// [`AncEngine::save_binary`] (either profile; the profile byte in the
    /// header is self-describing). Verifies the CRC-32 trailer, then the
    /// same structural validation the JSON path performs.
    pub fn load_binary<R: std::io::Read>(mut reader: R) -> Result<Self, RestoreError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Self::from_snapshot(decode_snapshot(&bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterMode;
    use anc_graph::gen::connected_caveman;

    fn streamed_engine() -> AncEngine {
        let lg = connected_caveman(3, 5);
        let cfg = AncConfig { rep: 1, k: 2, ..Default::default() };
        let mut engine = AncEngine::new(lg.graph, cfg, 9);
        let m = engine.graph().m() as u32;
        for i in 0..60u32 {
            engine.activate((i * 7 + 2) % m, i as f64 * 0.4);
        }
        engine
    }

    fn save(engine: &AncEngine, profile: SnapshotProfile) -> Vec<u8> {
        let mut buf = Vec::new();
        engine.save_binary(&mut buf, profile).unwrap();
        buf
    }

    fn load_err(bytes: &[u8]) -> RestoreError {
        match AncEngine::load_binary(bytes) {
            Ok(_) => panic!("expected load_binary to fail"),
            Err(e) => e,
        }
    }

    #[test]
    fn exact_roundtrip_is_bit_identical() {
        let engine = streamed_engine();
        let bytes = save(&engine, SnapshotProfile::Exact);
        let restored = AncEngine::load_binary(bytes.as_slice()).unwrap();
        // Bit-identical observable state…
        let json_a = serde_json::to_string(&engine.to_snapshot()).unwrap();
        let json_b = serde_json::to_string(&restored.to_snapshot()).unwrap();
        assert_eq!(json_a, json_b, "Exact restore must be bit-identical");
        // …and byte-identical re-save.
        assert_eq!(bytes, save(&restored, SnapshotProfile::Exact));
        restored.check_invariants().unwrap();
    }

    #[test]
    fn exact_restore_evolves_bit_identically() {
        let engine = streamed_engine();
        let bytes = save(&engine, SnapshotProfile::Exact);
        let mut live = engine;
        let mut restored = AncEngine::load_binary(bytes.as_slice()).unwrap();
        let m = live.graph().m() as u32;
        for i in 0..30u32 {
            let (e, t) = ((i * 3 + 1) % m, 30.0 + i as f64);
            live.activate(e, t);
            restored.activate(e, t);
        }
        for e in 0..m {
            assert_eq!(live.similarity(e).to_bits(), restored.similarity(e).to_bits());
        }
        let level = live.default_level();
        assert_eq!(
            live.cluster_all(level, ClusterMode::Power),
            restored.cluster_all(level, ClusterMode::Power)
        );
    }

    #[test]
    fn compact_roundtrip_passes_invariants_and_is_idempotent() {
        let engine = streamed_engine();
        let bytes = save(&engine, SnapshotProfile::Compact);
        let exact = save(&engine, SnapshotProfile::Exact);
        assert!(bytes.len() < exact.len(), "Compact must shrink the snapshot");
        let restored = AncEngine::load_binary(bytes.as_slice()).unwrap();
        restored.check_invariants().unwrap();
        // Quantization is idempotent: re-saving the restored engine
        // reproduces the file byte for byte.
        assert_eq!(bytes, save(&restored, SnapshotProfile::Compact));
        // Quantized similarities stay within f32 relative error.
        for e in 0..engine.graph().m() as u32 {
            let (a, b) = (engine.similarity(e), restored.similarity(e));
            assert!((a - b).abs() <= 1e-6 * a.abs(), "edge {e}: {a} vs {b}");
        }
        // Cluster structure survives quantization on this stream.
        let level = engine.default_level();
        assert_eq!(
            engine.cluster_all(level, ClusterMode::Power),
            restored.cluster_all(level, ClusterMode::Power)
        );
    }

    #[test]
    fn binary_much_smaller_than_json() {
        let engine = streamed_engine();
        let mut json = Vec::new();
        engine.save_json(&mut json).unwrap();
        let exact = save(&engine, SnapshotProfile::Exact);
        let compact = save(&engine, SnapshotProfile::Compact);
        // The ≥4× acceptance target is measured at n = 10⁵ (exp11_scale);
        // per-record overheads dominate at this toy size, so assert a
        // slightly looser floor for Exact here.
        assert!(exact.len() * 3 <= json.len(), "Exact {} vs JSON {}", exact.len(), json.len());
        assert!(
            compact.len() * 4 <= json.len(),
            "Compact {} vs JSON {}",
            compact.len(),
            json.len()
        );
        assert!(compact.len() < exact.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_err(b"NOPE-not-a-snapshot");
        assert!(matches!(err, RestoreError::BadMagic), "{err}");
        let err = load_err(b"AN");
        assert!(matches!(err, RestoreError::Truncated { .. }), "{err}");
    }

    #[test]
    fn corruption_detected_by_crc() {
        let engine = streamed_engine();
        let mut bytes = save(&engine, SnapshotProfile::Exact);
        // Flip one bit somewhere in the body.
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        let err = load_err(&bytes);
        assert!(matches!(err, RestoreError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn truncation_detected() {
        let engine = streamed_engine();
        let bytes = save(&engine, SnapshotProfile::Exact);
        // A truncated body either fails the CRC (trailer now misaligned) —
        // never panics, never yields a half-restored engine.
        for cut in [5, 13, bytes.len() / 3, bytes.len() - 1] {
            let err = load_err(&bytes[..cut]);
            assert!(
                matches!(
                    err,
                    RestoreError::Truncated { .. } | RestoreError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn unsupported_version_rejected() {
        let engine = streamed_engine();
        let mut bytes = save(&engine, SnapshotProfile::Exact);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Re-stamp the CRC so the version check itself is exercised.
        let end = bytes.len() - 4;
        let crc = crc32(&bytes[..end]);
        bytes[end..].copy_from_slice(&crc.to_le_bytes());
        let err = load_err(&bytes);
        assert!(matches!(err, RestoreError::UnsupportedVersion(99)), "{err}");
    }

    #[test]
    fn infinity_distances_survive_compact() {
        // A disconnected pair leaves unreachable nodes with dist = ∞ and
        // seed NO_NODE — the Compact narrowing must preserve them.
        let g = anc_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let engine = AncEngine::new(g, AncConfig { k: 2, rep: 1, ..Default::default() }, 3);
        let bytes = save(&engine, SnapshotProfile::Compact);
        let restored = AncEngine::load_binary(bytes.as_slice()).unwrap();
        restored.check_invariants().unwrap();
        assert!(restored.pyramids().approx_distance(0, 2).is_infinite());
    }
}
