//! Append-only activation log + crash recovery (DESIGN.md §11).
//!
//! Full binary snapshots make restarts cheap, but writing one per
//! activation would be absurd — the delta between two engine states *is*
//! the activation stream, and the engine is deterministic, so logging the
//! inputs is enough. [`DurableEngine`] wraps an [`AncEngine`] with
//! write-ahead logging:
//!
//! * every mutating call is encoded as a [`WalRecord`] and appended (with
//!   a per-record CRC-32) to `wal.anc` **before** it is applied;
//! * every `compact_every` records, the log is folded away: the engine is
//!   snapshotted to `snapshot.anc` (atomically, via a tmp file + rename)
//!   and the log restarts empty;
//! * [`DurableEngine::open`] recovers after a crash by loading the last
//!   snapshot and replaying the log suffix. A torn record at the tail
//!   (partial write) is detected by length/CRC and discarded; a log whose
//!   base predates the snapshot (crash between snapshot rename and log
//!   reset) is discarded whole — its records are already folded in.
//!
//! ```text
//! wal.anc = "ANCW" ∥ u32 version ∥ u64 base_activations ∥ u32 crc(header)
//!           ∥ record*        where record = u32 len ∥ u32 crc(payload) ∥ payload
//! ```
//!
//! The payload is a kind byte plus the call's arguments (timestamps as raw
//! `f64` bits, edge ids as varints). Triggered rescales are *not* logged:
//! they are a deterministic function of engine state, so replay reproduces
//! them; only explicit [`AncEngine::force_rescale`] calls need a record.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use anc_graph::codec::{crc32, put_f64, put_u32, put_u64, put_u8, put_uvarint, Reader};
use anc_graph::EdgeId;

use crate::engine::{AncEngine, BatchStats};

use super::binary::SnapshotProfile;
use super::{le_u32, le_u64, RestoreError};

/// Magic bytes opening every write-ahead log.
pub const WAL_MAGIC: [u8; 4] = *b"ANCW";

/// Write-ahead log format version.
pub const WAL_VERSION: u32 = 1;

const HEADER_LEN: usize = 4 + 4 + 8 + 4; // magic + version + base + crc

/// Largest record payload accepted on read (a torn length field must not
/// trigger a huge allocation).
const MAX_RECORD_LEN: usize = 1 << 30;

/// One logged engine mutation. Encodes the *inputs* of a mutating
/// [`AncEngine`] call; replaying the records in order against the base
/// snapshot reproduces the engine state exactly (the engine is
/// deterministic).
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// [`AncEngine::activate`]`(e, t)`.
    Activate {
        /// Activated edge.
        e: EdgeId,
        /// Arrival time.
        t: f64,
    },
    /// [`AncEngine::activate_batch`]`(&edges, t)`.
    ActivateBatch {
        /// Arrival time of the whole batch.
        t: f64,
        /// Activated edges, in batch order.
        edges: Vec<EdgeId>,
    },
    /// [`AncEngine::activate_batch_adaptive`]`(&edges, t, threshold)`.
    ActivateBatchAdaptive {
        /// Arrival time of the whole batch.
        t: f64,
        /// Explicit rebuild threshold, if the caller supplied one.
        rebuild_threshold: Option<usize>,
        /// Activated edges, in batch order.
        edges: Vec<EdgeId>,
    },
    /// [`AncEngine::reinforce_edges`]`(&edges)`.
    ReinforceEdges {
        /// Reinforced edges, in call order.
        edges: Vec<EdgeId>,
    },
    /// An explicit [`AncEngine::force_rescale`] call.
    ForceRescale,
}

const KIND_ACTIVATE: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_BATCH_ADAPTIVE: u8 = 3;
const KIND_REINFORCE: u8 = 4;
const KIND_FORCE_RESCALE: u8 = 5;

fn put_edges(out: &mut Vec<u8>, edges: &[EdgeId]) {
    put_uvarint(out, edges.len() as u64);
    for &e in edges {
        put_uvarint(out, e as u64);
    }
}

fn read_edges(r: &mut Reader<'_>) -> Result<Vec<EdgeId>, RestoreError> {
    let len = r.uvarint_len()?;
    if len > r.remaining() {
        // Each edge takes ≥ 1 byte; a bigger count is a lying header.
        return Err(RestoreError::Codec(format!("edge count {len} exceeds record size")));
    }
    let mut edges = Vec::with_capacity(len);
    for _ in 0..len {
        let e = r.uvarint()?;
        let e = u32::try_from(e)
            .map_err(|_| RestoreError::Codec(format!("edge id {e} exceeds EdgeId range")))?;
        edges.push(e);
    }
    Ok(edges)
}

// Payload encoders take borrowed arguments so the [`DurableEngine`] write
// path can log straight from caller slices without building owned records.
fn payload_activate(out: &mut Vec<u8>, e: EdgeId, t: f64) {
    put_u8(out, KIND_ACTIVATE);
    put_f64(out, t);
    put_uvarint(out, e as u64);
}

fn payload_batch(out: &mut Vec<u8>, t: f64, edges: &[EdgeId]) {
    put_u8(out, KIND_BATCH);
    put_f64(out, t);
    put_edges(out, edges);
}

fn payload_batch_adaptive(
    out: &mut Vec<u8>,
    t: f64,
    rebuild_threshold: Option<usize>,
    edges: &[EdgeId],
) {
    put_u8(out, KIND_BATCH_ADAPTIVE);
    put_f64(out, t);
    match rebuild_threshold {
        None => put_u8(out, 0),
        Some(th) => {
            put_u8(out, 1);
            put_uvarint(out, th as u64);
        }
    }
    put_edges(out, edges);
}

fn payload_reinforce(out: &mut Vec<u8>, edges: &[EdgeId]) {
    put_u8(out, KIND_REINFORCE);
    put_edges(out, edges);
}

impl WalRecord {
    /// Appends the record payload (kind byte + arguments). The live write
    /// path encodes straight from borrowed slices (see [`DurableEngine`]);
    /// this owned-record variant serves tests that author logs by hand.
    #[cfg(test)]
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Activate { e, t } => payload_activate(out, *e, *t),
            WalRecord::ActivateBatch { t, edges } => payload_batch(out, *t, edges),
            WalRecord::ActivateBatchAdaptive { t, rebuild_threshold, edges } => {
                payload_batch_adaptive(out, *t, *rebuild_threshold, edges)
            }
            WalRecord::ReinforceEdges { edges } => payload_reinforce(out, edges),
            WalRecord::ForceRescale => put_u8(out, KIND_FORCE_RESCALE),
        }
    }

    /// Decodes one record payload (inverse of `encode`).
    fn decode(payload: &[u8]) -> Result<Self, RestoreError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            KIND_ACTIVATE => {
                let t = r.f64()?;
                let e = r.uvarint()?;
                let e = u32::try_from(e)
                    .map_err(|_| RestoreError::Codec(format!("edge id {e} out of range")))?;
                WalRecord::Activate { e, t }
            }
            KIND_BATCH => {
                let t = r.f64()?;
                WalRecord::ActivateBatch { t, edges: read_edges(&mut r)? }
            }
            KIND_BATCH_ADAPTIVE => {
                let t = r.f64()?;
                let rebuild_threshold = match r.u8()? {
                    0 => None,
                    1 => Some(r.uvarint_len()?),
                    other => {
                        return Err(RestoreError::Codec(format!("bad threshold flag {other}")));
                    }
                };
                WalRecord::ActivateBatchAdaptive {
                    t,
                    rebuild_threshold,
                    edges: read_edges(&mut r)?,
                }
            }
            KIND_REINFORCE => WalRecord::ReinforceEdges { edges: read_edges(&mut r)? },
            KIND_FORCE_RESCALE => WalRecord::ForceRescale,
            other => return Err(RestoreError::Codec(format!("unknown WAL record kind {other}"))),
        };
        if !r.is_empty() {
            return Err(RestoreError::Codec(format!(
                "{} trailing bytes in WAL record",
                r.remaining()
            )));
        }
        Ok(rec)
    }

    /// Replays this record against an engine — the exact call that was
    /// logged. Public so recovery tests can compare a recovered engine to
    /// an explicit prefix replay.
    pub fn apply(&self, engine: &mut AncEngine) {
        match self {
            WalRecord::Activate { e, t } => engine.activate(*e, *t),
            WalRecord::ActivateBatch { t, edges } => {
                // audit:allow(swallowed-error) -- BatchStats is observability-only; replay is infallible
                let _ = engine.activate_batch(edges, *t);
            }
            WalRecord::ActivateBatchAdaptive { t, rebuild_threshold, edges } => {
                // audit:allow(swallowed-error) -- BatchStats is observability-only; replay is infallible
                let _ = engine.activate_batch_adaptive(edges, *t, *rebuild_threshold);
            }
            WalRecord::ReinforceEdges { edges } => engine.reinforce_edges(edges),
            WalRecord::ForceRescale => engine.force_rescale(),
        }
    }
}

// ---------------------------------------------------------------------------
// Log-level encode/decode
// ---------------------------------------------------------------------------

fn encode_header(base_activations: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    out.extend_from_slice(&WAL_MAGIC);
    put_u32(&mut out, WAL_VERSION);
    put_u64(&mut out, base_activations);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Appends one framed payload (`len ∥ crc ∥ payload`) to `out`. A payload
/// over [`MAX_RECORD_LEN`] (or the u32 length field) is refused here on the
/// write side — the old `len as u32` would have silently truncated the
/// frame header and corrupted every record behind it.
fn frame_payload(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), RestoreError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l as usize <= MAX_RECORD_LEN)
        .ok_or_else(|| {
            // audit:allow(hot-alloc) -- cold error path, reached only past the 1 GiB record cap
            RestoreError::Codec(format!("record length {} exceeds cap", payload.len()))
        })?;
    put_u32(out, len);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
    Ok(())
}

/// Appends one framed record to `out` (encode via `scratch`, then frame).
#[cfg(test)]
fn frame_record(out: &mut Vec<u8>, record: &WalRecord, scratch: &mut Vec<u8>) {
    scratch.clear();
    record.encode(scratch);
    frame_payload(out, scratch).expect("test records are far below the length cap");
}

/// Streaming reader over the bytes of a write-ahead log.
///
/// [`WalReader::next`] yields records until the clean end of the log
/// (`Ok(None)`); a torn tail surfaces as [`RestoreError::Truncated`] and
/// damaged bytes as [`RestoreError::ChecksumMismatch`], with
/// [`WalReader::position`] pointing at the start of the offending record —
/// the offset a recovery pass truncates back to.
pub struct WalReader<'a> {
    buf: &'a [u8],
    pos: usize,
    base_activations: u64,
}

impl<'a> WalReader<'a> {
    /// Parses and verifies the log header.
    pub fn new(bytes: &'a [u8]) -> Result<Self, RestoreError> {
        if bytes.len() < 4 {
            return Err(RestoreError::Truncated { offset: bytes.len() });
        }
        if bytes[..4] != WAL_MAGIC {
            return Err(RestoreError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(RestoreError::Truncated { offset: bytes.len() });
        }
        let expected = le_u32(&bytes[16..20]);
        let found = crc32(&bytes[..16]);
        if expected != found {
            return Err(RestoreError::ChecksumMismatch { expected, found });
        }
        let version = le_u32(&bytes[4..8]);
        if version != WAL_VERSION {
            return Err(RestoreError::UnsupportedVersion(version));
        }
        let base_activations = le_u64(&bytes[8..16]);
        Ok(Self { buf: bytes, pos: HEADER_LEN, base_activations })
    }

    /// Engine activation count at the time the log was started — must
    /// match the base snapshot's counter for a replay to be sound.
    pub fn base_activations(&self) -> u64 {
        self.base_activations
    }

    /// Byte offset of the next unread record (header included).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads the next record. `Ok(None)` at the clean end of the log.
    /// (Not an `Iterator`: the fallible signature is the point — callers
    /// must distinguish a clean end from a torn or damaged tail.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<WalRecord>, RestoreError> {
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < 8 {
            return Err(RestoreError::Truncated { offset: self.pos });
        }
        let len = le_u32(&rest[0..4]) as usize;
        if len > MAX_RECORD_LEN {
            return Err(RestoreError::Codec(format!("record length {len} exceeds cap")));
        }
        let expected = le_u32(&rest[4..8]);
        if rest.len() < 8 + len {
            return Err(RestoreError::Truncated { offset: self.pos });
        }
        let payload = &rest[8..8 + len];
        let found = crc32(payload);
        if expected != found {
            return Err(RestoreError::ChecksumMismatch { expected, found });
        }
        let record = WalRecord::decode(payload)?;
        self.pos += 8 + len;
        Ok(Some(record))
    }
}

// ---------------------------------------------------------------------------
// DurableEngine
// ---------------------------------------------------------------------------

/// Durability policy for a [`DurableEngine`].
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// Compact (fold the log into a fresh snapshot) after this many
    /// records.
    pub compact_every: usize,
    /// Profile of the base snapshots. [`SnapshotProfile::Exact`] (the
    /// default) makes recovery bit-identical to the pre-crash engine;
    /// Compact trades that for smaller checkpoints (recovery is then
    /// bit-identical to *replay over the quantized base*, still fully
    /// self-consistent).
    pub profile: SnapshotProfile,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self { compact_every: 4096, profile: SnapshotProfile::Exact }
    }
}

/// An [`AncEngine`] wrapped with write-ahead logging and crash recovery.
///
/// All mutating engine calls go through this wrapper (the inner engine is
/// only exposed immutably), so the on-disk `snapshot.anc` + `wal.anc` pair
/// is always sufficient to reconstruct the exact current state.
///
/// ```no_run
/// use anc_core::persist::{DurabilityOptions, DurableEngine};
/// use anc_core::{AncConfig, AncEngine};
///
/// let g = anc_graph::gen::barabasi_albert(1000, 4, 7);
/// let engine = AncEngine::new(g, AncConfig::default(), 42);
/// let mut durable =
///     DurableEngine::create(engine, "state_dir", DurabilityOptions::default()).unwrap();
/// durable.activate(3, 0.5).unwrap();
/// drop(durable); // crash at any point…
/// let recovered = DurableEngine::open("state_dir", DurabilityOptions::default()).unwrap();
/// assert_eq!(recovered.engine().activations(), 1);
/// ```
pub struct DurableEngine {
    engine: AncEngine,
    dir: PathBuf,
    wal: File,
    wal_records: u64,
    opts: DurabilityOptions,
    /// Pooled framing buffers (record payload + framed bytes).
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

/// Base snapshot file name inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.anc";
/// In-progress snapshot written during compaction, atomically renamed over
/// [`SNAPSHOT_FILE`]; a leftover one marks an interrupted compaction.
pub const SNAPSHOT_TMP: &str = "snapshot.anc.tmp";
/// Append-only activation log file name.
pub const WAL_FILE: &str = "wal.anc";

impl DurableEngine {
    /// Starts durable operation in `dir` (created if missing): writes a
    /// base snapshot of `engine` and an empty log.
    pub fn create(
        engine: AncEngine,
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<Self, RestoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        write_snapshot_atomic(&engine, &dir, opts.profile)?;
        let wal = reset_wal(&dir, engine.activations())?;
        Ok(Self {
            engine,
            dir,
            wal,
            wal_records: 0,
            opts,
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
        })
    }

    /// Recovers the engine from `dir`: loads the last snapshot and replays
    /// the log suffix. Tolerates every crash window of the write protocol —
    /// a stale `snapshot.anc.tmp`, a log whose base predates the snapshot
    /// (discarded: its records are already folded in), and a torn record
    /// at the log tail (truncated away). Damage *before* the tail — a
    /// failed checksum with further valid records behind it — is
    /// indistinguishable from a torn tail by construction, so recovery
    /// also stops there; the log is truncated to the last verifiable
    /// prefix.
    pub fn open(dir: impl AsRef<Path>, opts: DurabilityOptions) -> Result<Self, RestoreError> {
        let dir = dir.as_ref().to_path_buf();
        // A leftover tmp is an interrupted compaction that never renamed;
        // the durable snapshot is still the old complete one. Only a
        // missing tmp is ignorable — a permission or IO failure here would
        // resurface as a corrupt rename target on the next compaction.
        match std::fs::remove_file(dir.join(SNAPSHOT_TMP)) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let snapshot_bytes = std::fs::read(dir.join(SNAPSHOT_FILE))?;
        let mut engine = AncEngine::load_binary(snapshot_bytes.as_slice())?;

        let wal_path = dir.join(WAL_FILE);
        let (wal, wal_records) = match std::fs::read(&wal_path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // No log at all (crash between snapshot and first log
                // write): start one.
                (reset_wal(&dir, engine.activations())?, 0)
            }
            Err(e) => return Err(e.into()),
            Ok(bytes) => {
                let mut reader = WalReader::new(bytes.as_slice())?;
                if reader.base_activations() < engine.activations() {
                    // Stale log from an interrupted compaction — every
                    // record is already folded into the snapshot.
                    (reset_wal(&dir, engine.activations())?, 0)
                } else if reader.base_activations() > engine.activations() {
                    return Err(RestoreError::Inconsistent(format!(
                        "log base {} is ahead of snapshot activations {}",
                        reader.base_activations(),
                        engine.activations()
                    )));
                } else {
                    let mut replayed = 0u64;
                    let valid_end = loop {
                        match reader.next() {
                            Ok(Some(record)) => {
                                record.apply(&mut engine);
                                replayed += 1;
                            }
                            Ok(None) => break reader.position(),
                            // Torn tail: keep the verified prefix only.
                            Err(
                                RestoreError::Truncated { .. }
                                | RestoreError::ChecksumMismatch { .. }
                                | RestoreError::Codec(_),
                            ) => break reader.position(),
                            Err(other) => return Err(other),
                        }
                    };
                    let mut file = OpenOptions::new().read(true).write(true).open(&wal_path)?;
                    file.set_len(valid_end as u64)?;
                    file.seek(SeekFrom::End(0))?;
                    (file, replayed)
                }
            }
        };
        Ok(Self {
            engine,
            dir,
            wal,
            wal_records,
            opts,
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
        })
    }

    /// The wrapped engine (read-only: mutations must go through the log).
    pub fn engine(&self) -> &AncEngine {
        &self.engine
    }

    /// Records appended since the last compaction.
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// Logged [`AncEngine::activate`].
    pub fn activate(&mut self, e: EdgeId, t: f64) -> Result<(), RestoreError> {
        self.payload_buf.clear();
        payload_activate(&mut self.payload_buf, e, t);
        self.append_payload()?;
        self.engine.activate(e, t);
        self.maybe_compact()
    }

    /// Logged [`AncEngine::activate_batch`].
    pub fn activate_batch(&mut self, edges: &[EdgeId], t: f64) -> Result<BatchStats, RestoreError> {
        self.payload_buf.clear();
        payload_batch(&mut self.payload_buf, t, edges);
        self.append_payload()?;
        let stats = self.engine.activate_batch(edges, t);
        self.maybe_compact()?;
        Ok(stats)
    }

    /// Logged [`AncEngine::activate_batch_adaptive`].
    pub fn activate_batch_adaptive(
        &mut self,
        edges: &[EdgeId],
        t: f64,
        rebuild_threshold: Option<usize>,
    ) -> Result<BatchStats, RestoreError> {
        self.payload_buf.clear();
        payload_batch_adaptive(&mut self.payload_buf, t, rebuild_threshold, edges);
        self.append_payload()?;
        let stats = self.engine.activate_batch_adaptive(edges, t, rebuild_threshold);
        self.maybe_compact()?;
        Ok(stats)
    }

    /// Logged [`AncEngine::reinforce_edges`].
    pub fn reinforce_edges(&mut self, edges: &[EdgeId]) -> Result<(), RestoreError> {
        self.payload_buf.clear();
        payload_reinforce(&mut self.payload_buf, edges);
        self.append_payload()?;
        self.engine.reinforce_edges(edges);
        self.maybe_compact()
    }

    /// Logged [`AncEngine::force_rescale`].
    pub fn force_rescale(&mut self) -> Result<(), RestoreError> {
        self.payload_buf.clear();
        put_u8(&mut self.payload_buf, KIND_FORCE_RESCALE);
        self.append_payload()?;
        self.engine.force_rescale();
        self.maybe_compact()
    }

    /// Write-ahead: the framed payload in `payload_buf` hits the log before
    /// the engine mutates, so a crash mid-apply replays the record on
    /// recovery instead of losing it.
    fn append_payload(&mut self) -> Result<(), RestoreError> {
        self.frame_buf.clear();
        frame_payload(&mut self.frame_buf, &self.payload_buf)?;
        self.wal.write_all(&self.frame_buf)?;
        self.wal_records += 1;
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), RestoreError> {
        if self.wal_records >= self.opts.compact_every as u64 {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the log into a fresh base snapshot: snapshot first (tmp +
    /// atomic rename), then restart the log. A crash between the two
    /// leaves a log whose base predates the new snapshot — [`Self::open`]
    /// detects and discards it.
    pub fn compact(&mut self) -> Result<(), RestoreError> {
        write_snapshot_atomic(&self.engine, &self.dir, self.opts.profile)?;
        self.wal = reset_wal(&self.dir, self.engine.activations())?;
        self.wal_records = 0;
        Ok(())
    }
}

fn write_snapshot_atomic(
    engine: &AncEngine,
    dir: &Path,
    profile: SnapshotProfile,
) -> Result<(), RestoreError> {
    let tmp = dir.join(SNAPSHOT_TMP);
    let mut f = File::create(&tmp)?;
    engine.save_binary(&mut f, profile)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    Ok(())
}

fn reset_wal(dir: &Path, base_activations: u64) -> Result<File, RestoreError> {
    let mut f = File::create(dir.join(WAL_FILE))?;
    f.write_all(&encode_header(base_activations))?;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AncConfig;
    use anc_graph::gen::connected_caveman;

    fn fresh_engine() -> AncEngine {
        let lg = connected_caveman(3, 5);
        let cfg = AncConfig { rep: 1, k: 2, ..Default::default() };
        AncEngine::new(lg.graph, cfg, 9)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("anc_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn engine_state(engine: &AncEngine) -> String {
        serde_json::to_string(&engine.to_snapshot()).unwrap()
    }

    #[test]
    fn record_roundtrip() {
        let records = [
            WalRecord::Activate { e: 7, t: 1.25 },
            WalRecord::ActivateBatch { t: 2.0, edges: vec![0, 3, 3, 9] },
            WalRecord::ActivateBatchAdaptive { t: 3.0, rebuild_threshold: None, edges: vec![1] },
            WalRecord::ActivateBatchAdaptive {
                t: 4.0,
                rebuild_threshold: Some(128),
                edges: vec![2, 5],
            },
            WalRecord::ReinforceEdges { edges: vec![4, 4] },
            WalRecord::ForceRescale,
        ];
        let mut log = encode_header(0);
        let mut scratch = Vec::new();
        for r in &records {
            frame_record(&mut log, r, &mut scratch);
        }
        let mut reader = WalReader::new(&log).unwrap();
        for want in &records {
            assert_eq!(reader.next().unwrap().as_ref(), Some(want));
        }
        assert_eq!(reader.next().unwrap(), None);
    }

    #[test]
    fn recovery_replays_everything() {
        let dir = tmp_dir("replay");
        let mut durable =
            DurableEngine::create(fresh_engine(), &dir, DurabilityOptions::default()).unwrap();
        let m = durable.engine().graph().m() as u32;
        for i in 0..25u32 {
            durable.activate((i * 7 + 2) % m, i as f64 * 0.4).unwrap();
        }
        let _ = durable.activate_batch(&[1, 3, 1], 11.0).unwrap();
        durable.reinforce_edges(&[0, 2]).unwrap();
        durable.force_rescale().unwrap();
        let want = engine_state(durable.engine());
        drop(durable); // "crash": nothing beyond the appends is persisted

        let recovered = DurableEngine::open(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(engine_state(recovered.engine()), want, "recovery must be bit-identical");
        recovered.engine().check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_log_and_recovery_still_works() {
        let dir = tmp_dir("compact");
        let opts = DurabilityOptions { compact_every: 8, ..Default::default() };
        let mut durable = DurableEngine::create(fresh_engine(), &dir, opts).unwrap();
        let m = durable.engine().graph().m() as u32;
        for i in 0..30u32 {
            durable.activate((i * 5 + 1) % m, i as f64 * 0.3).unwrap();
        }
        assert!(durable.wal_records() < 30, "compaction must have reset the log");
        let want = engine_state(durable.engine());
        drop(durable);

        let recovered = DurableEngine::open(&dir, opts).unwrap();
        assert_eq!(engine_state(recovered.engine()), want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = tmp_dir("torn");
        let mut durable =
            DurableEngine::create(fresh_engine(), &dir, DurabilityOptions::default()).unwrap();
        let m = durable.engine().graph().m() as u32;
        for i in 0..10u32 {
            durable.activate((i * 7 + 2) % m, i as f64 * 0.4).unwrap();
        }
        drop(durable);
        // Tear the last record: chop 3 bytes off the log.
        let wal_path = dir.join(WAL_FILE);
        let len = std::fs::metadata(&wal_path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal_path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        // Reference: replay only the 9 intact records.
        let mut reference = fresh_engine();
        for i in 0..9u32 {
            reference.activate((i * 7 + 2) % m, i as f64 * 0.4);
        }
        let recovered = DurableEngine::open(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(engine_state(recovered.engine()), engine_state(&reference));
        // The torn bytes are gone from disk too.
        assert!(std::fs::metadata(&wal_path).unwrap().len() < len - 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_log_from_interrupted_compaction_is_discarded() {
        let dir = tmp_dir("stale");
        let mut durable =
            DurableEngine::create(fresh_engine(), &dir, DurabilityOptions::default()).unwrap();
        let m = durable.engine().graph().m() as u32;
        for i in 0..12u32 {
            durable.activate((i * 7 + 2) % m, i as f64 * 0.4).unwrap();
        }
        let want = engine_state(durable.engine());
        // Simulate a crash *between* compaction's snapshot rename and its
        // log reset: new snapshot on disk, old log untouched.
        write_snapshot_atomic(&durable.engine, &dir, SnapshotProfile::Exact).unwrap();
        drop(durable);

        let recovered = DurableEngine::open(&dir, DurabilityOptions::default()).unwrap();
        assert_eq!(engine_state(recovered.engine()), want, "stale records must not double-apply");
        assert_eq!(recovered.wal_records(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_corruption_is_typed() {
        let log = encode_header(5);
        // Bad magic.
        let mut bad = log.clone();
        bad[0] = b'X';
        assert!(matches!(WalReader::new(&bad), Err(RestoreError::BadMagic)));
        // Bad header checksum.
        let mut bad = log.clone();
        bad[9] ^= 1;
        assert!(matches!(WalReader::new(&bad), Err(RestoreError::ChecksumMismatch { .. })));
        // Truncated header.
        assert!(matches!(WalReader::new(&log[..10]), Err(RestoreError::Truncated { .. })));
        // Unsupported version (re-stamp the crc so only the version trips).
        let mut bad = log;
        bad[4..8].copy_from_slice(&9u32.to_le_bytes());
        let crc = crc32(&bad[..16]);
        bad[16..20].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(WalReader::new(&bad), Err(RestoreError::UnsupportedVersion(9))));
    }

    #[test]
    fn record_corruption_is_typed() {
        let mut log = encode_header(0);
        let mut scratch = Vec::new();
        frame_record(&mut log, &WalRecord::Activate { e: 1, t: 2.0 }, &mut scratch);
        let payload_at = HEADER_LEN + 8;
        let mut bad = log.clone();
        bad[payload_at] ^= 0xFF;
        let mut reader = WalReader::new(&bad).unwrap();
        assert!(matches!(reader.next(), Err(RestoreError::ChecksumMismatch { .. })));
        // Truncation mid-record.
        let mut reader = WalReader::new(&log[..log.len() - 2]).unwrap();
        assert!(matches!(reader.next(), Err(RestoreError::Truncated { .. })));
    }
}
