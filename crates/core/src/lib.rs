//! # anc-core
//!
//! The primary contribution of *Clustering Activation Networks* (Feng, Qiao,
//! Cheng — ICDE 2022): an incrementally maintainable structural+temporal
//! clustering index for activation networks.
//!
//! The pipeline (paper Figure 1):
//!
//! 1. **Edge activeness** under the time-decay scheme is maintained with the
//!    global decay factor (`anc-decay`).
//! 2. **Active similarity** σ (activeness-weighted Jaccard) classifies nodes
//!    into core / p-core / periphery ([`similarity`]).
//! 3. **Local reinforcement** folds structural cohesiveness and activeness
//!    into one similarity function `S_t` on edges, updated per activation in
//!    `O(deg u + deg v)` neighborhood work ([`reinforce`], Lemma 5).
//! 4. The **distance metric** `M_t` is the shortest distance under edge
//!    weight `1/S_t`; shortest paths propagate local similarity, replacing
//!    Attractor's ~50 global iterations ([`metric`]).
//! 5. The **pyramids index** `P` — `k` pyramids of `⌈log₂ n⌉` randomized
//!    Voronoi partitions each (after Das Sarma et al.) — supports clustering
//!    at `O(log n)` granularities ([`voronoi`], [`pyramid`]).
//! 6. **Voting + even/power clustering** extract clusters; zoom-in/zoom-out
//!    adjust the granularity level ([`cluster`], [`query`]).
//! 7. **Bounded incremental updates** (Algorithms 1–3) repair each Voronoi
//!    partition in time proportional to the affected region ([`voronoi`],
//!    Lemmas 11–12), embarrassingly parallel across partitions (Lemma 13).
//!
//! [`engine::AncEngine`] assembles all of the above into the paper's ANCO /
//! ANCOR online methods and the ANCF offline method.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
mod config;
pub mod engine;
pub mod invariant;
pub mod metric;
pub mod persist;
pub mod publish;
pub mod pyramid;
pub mod query;
pub mod reinforce;
pub mod similarity;
pub mod voronoi;
pub mod vote;

pub use cache::{ClusterCache, QueryDecision, QueryStats};
pub use cluster::ClusterMode;
pub use config::{AncConfig, BatchMode};
pub use engine::{AncEngine, BatchStats, ClusterView, LevelClusters, OfflineSnapshot};
pub use invariant::InvariantViolation;
pub use persist::{
    DurabilityOptions, DurableEngine, EngineSnapshot, RestoreError, SnapshotProfile, WalReader,
    WalRecord,
};
pub use publish::{Publisher, ReadHandle};
pub use pyramid::{Pyramids, RepairStats};
pub use similarity::{NodeType, ScratchPool};
pub use vote::{ClusterMonitor, EdgeBits, VoteCache};
