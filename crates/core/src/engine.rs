//! The end-to-end engines (paper Section VI, "Our Methods"):
//!
//! * **ANCO** — the online method: [`AncEngine::activate`] updates the
//!   activeness, applies local reinforcement with the activated trigger
//!   edge, and repairs the index with the bounded update algorithms. Cost
//!   per activation is `O(Σ_{x ∈ U'} deg x)` per partition (Lemma 12).
//! * **ANCOR** — ANCO plus periodic extra reinforcement:
//!   [`AncEngine::reinforce_edges`] replays local reinforcement over a set
//!   of recently activated edges at intervals (5 timestamps by default in
//!   the paper), refreshing the structural signal that dissipates between
//!   full rebuilds. (The paper specifies the interval but not the replay
//!   set; we use the edges activated during the elapsed interval — see
//!   DESIGN.md §3.)
//! * **ANCF** — the offline method: [`AncEngine::offline_snapshot`]
//!   recomputes `S_t` from scratch with `rep` full reinforcement passes
//!   against the *current* activeness and rebuilds the index, exactly like
//!   indexing a fresh snapshot.
//!
//! One batched rescale (`anc-decay`) is shared by every store: anchored
//! activeness and similarity absorb `g` (PosM), reciprocal weights and all
//! pyramid distances absorb `1/g` (NegM, Lemma 10). The rescale never
//! changes any comparison outcome, so the index structure is untouched.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

use anc_decay::{ActivenessStore, DecayClock, MaintainClass, Rescalable, Time};
use anc_graph::{EdgeId, Graph, NodeId};
use anc_metrics::Clustering;
use rayon::prelude::*;

use crate::cache::{ClusterCache, QueryStats};
use crate::cluster::{cluster_all, ClusterMode};
use crate::config::{AncConfig, BatchMode};
use crate::invariant::{self, InvariantViolation};
use crate::pyramid::Pyramids;
use crate::query;
use crate::reinforce::{
    apply_reinforcement, apply_reinforcement_cached, CachedTrigger, ReinforceParams,
};
use crate::similarity::{NodeType, Scratch, ScratchPool, SimilarityCtx};

/// Counters and timing from one [`AncEngine::activate_batch`] (or
/// [`AncEngine::activate_batch_adaptive`]) call — the observability surface
/// of the batch-ingestion pipeline (see DESIGN.md §7).
#[derive(Clone, Copy, Debug, Default)]
#[must_use = "BatchStats carries the batch's dirty-set and repair counters"]
pub struct BatchStats {
    /// Activations fed into the batch.
    pub edges_in: usize,
    /// Distinct edges whose weight actually changed (the dirty set).
    pub dirty_edges: usize,
    /// `sigma_all` evaluations performed: two per activation on the exact
    /// path, one per distinct trigger node on the fused path.
    pub sigma_recomputes: usize,
    /// Bounded Voronoi updates executed across all partitions.
    pub repair_updates: usize,
    /// Delta × partition pairs short-circuited by the no-op precheck.
    pub repair_skips: usize,
    /// Whether the adaptive path chose a full index rebuild instead of
    /// grouped repairs.
    pub rebuilt: bool,
    /// Wall time of the whole batch call.
    pub wall: Duration,
}

/// Merges two batch records: every counter sums, `rebuilt` is sticky, and
/// the wall times add — so a thread (or the serving writer loop) can fold
/// per-batch records into one cumulative tally with `total += stats`.
impl std::ops::AddAssign<BatchStats> for BatchStats {
    fn add_assign(&mut self, rhs: BatchStats) {
        self.edges_in += rhs.edges_in;
        self.dirty_edges += rhs.dirty_edges;
        self.sigma_recomputes += rhs.sigma_recomputes;
        self.repair_updates += rhs.repair_updates;
        self.repair_skips += rhs.repair_skips;
        self.rebuilt |= rhs.rebuilt;
        self.wall += rhs.wall;
    }
}

/// The online activation-network clustering engine (ANCO core).
///
/// ```
/// use anc_core::{AncConfig, AncEngine, ClusterMode};
/// use anc_graph::gen::connected_caveman;
///
/// let lg = connected_caveman(3, 5); // three 5-cliques with bridges
/// let mut engine = AncEngine::new(lg.graph.clone(), AncConfig::default(), 7);
///
/// // Stream a few activations and query.
/// engine.activate(0, 1.0);
/// engine.activate(1, 2.5);
/// let clusters = engine.cluster_all(engine.default_level(), ClusterMode::Power);
/// assert!(clusters.num_clusters() >= 3);
/// let mine = engine.local_cluster(0, engine.default_level());
/// assert!(mine.contains(&0));
/// # engine.check_invariants().unwrap();
/// ```
pub struct AncEngine {
    g: Graph,
    cfg: AncConfig,
    clock: DecayClock,
    /// Anchored activeness per edge (PosM).
    act: ActivenessStore,
    /// Anchored per-node activeness sums `A(v)` (PosM; σ denominators).
    node_sum: Vec<f64>,
    /// Anchored similarity `S*` per edge (PosM, Lemma 4).
    sim: Vec<f64>,
    /// Anchored reciprocal similarity `1/S*` per edge (NegM) — the index's
    /// edge weights, kept materialized so partitions can read a plain slice.
    recip: Vec<f64>,
    /// The pyramids index.
    pyramids: Pyramids,
    /// Index RNG seed (reused by offline rebuilds for comparability).
    index_seed: u64,
    scratch: Scratch,
    /// Per-worker scratch buffers for the fused batch path's parallel σ
    /// phase (allocated lazily, reused across batches).
    sigma_pool: ScratchPool,
    /// Fused-batch worker outputs in flight between the parallel σ phase
    /// and reassembly; persists so `collect_into_vec` reuses one buffer.
    batch_chunks: Vec<Scratch>,
    /// Reassembled flat σ rows of the current fused batch (reused).
    batch_sigma_flat: Vec<f64>,
    /// Per-trigger (offset, len, node type) into `batch_sigma_flat`.
    batch_ranges: Vec<(usize, usize, NodeType)>,
    /// Running sum of the anchored similarities (for the relative floor).
    sim_sum: f64,
    /// Total activations processed.
    activations: u64,
    /// Total batched rescales performed.
    rescales: u64,
    /// The incremental cluster-query cache (interior mutability so
    /// `&self` queries can repair lazily; never borrowed across a call
    /// boundary, so the `RefCell` cannot be observed locked).
    cache: RefCell<ClusterCache>,
    /// Pooled per-partition affected-set buffers for the traced grouped
    /// repair (filled only while the cache has materialized levels).
    trace_bufs: Vec<Vec<NodeId>>,
}

/// An offline (ANCF) snapshot: a freshly initialized similarity and index
/// for the activeness state at the moment of the call.
pub struct OfflineSnapshot {
    /// Anchored similarity after `rep` full passes.
    pub sim: Vec<f64>,
    /// Reciprocal weights.
    pub recip: Vec<f64>,
    /// The rebuilt index.
    pub pyramids: Pyramids,
}

impl AncEngine {
    /// Builds the engine: initializes `S_0` (all ones, then `cfg.rep` full
    /// reinforcement passes — the paper's Section IV-C initialization) and
    /// constructs the pyramids.
    ///
    /// Initial edge activeness is 1 (the paper's activation-network
    /// experiments, Section VI).
    pub fn new(g: Graph, cfg: AncConfig, seed: u64) -> Self {
        cfg.validate();
        let m = g.m();
        let clock = DecayClock::with_config(cfg.lambda, cfg.rescale);
        let act = ActivenessStore::new(m, 1.0);
        let mut node_sum = vec![0.0; g.n()];
        for (e, u, v) in g.iter_edges() {
            node_sum[u as usize] += act.anchored(e);
            node_sum[v as usize] += act.anchored(e);
        }
        let mut sim = vec![1.0; m];
        let mut scratch = Scratch::new(g.n());
        let params = ReinforceParams {
            epsilon: cfg.epsilon,
            mu: cfg.mu,
            floor_anchored: cfg.floor.max(cfg.floor_rel),
        };
        {
            let ctx = SimilarityCtx { g: &g, act: act.as_slice(), node_sum: &node_sum };
            for _ in 0..cfg.rep {
                crate::reinforce::full_pass(&ctx, &mut sim, &params, &mut scratch);
            }
        }
        let recip: Vec<f64> = sim.iter().map(|s| 1.0 / s).collect();
        let pyramids = Pyramids::build(&g, &recip, cfg.k, cfg.theta, seed);
        let sim_sum = sim.iter().sum();
        let sigma_pool = ScratchPool::new(g.n());
        let cache = RefCell::new(ClusterCache::new(pyramids.num_levels()));
        Self {
            g,
            cfg,
            clock,
            act,
            node_sum,
            sim,
            recip,
            pyramids,
            index_seed: seed,
            scratch,
            sigma_pool,
            batch_chunks: Vec::new(),
            batch_sigma_flat: Vec::new(),
            batch_ranges: Vec::new(),
            sim_sum,
            activations: 0,
            rescales: 0,
            cache,
            trace_bufs: Vec::new(),
        }
    }

    /// The relation network.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// The configuration.
    pub fn config(&self) -> &AncConfig {
        &self.cfg
    }

    /// The index.
    pub fn pyramids(&self) -> &Pyramids {
        &self.pyramids
    }

    /// Current time.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Activations processed so far.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Batched rescales performed so far.
    pub fn rescales(&self) -> u64 {
        self.rescales
    }

    /// True (de-anchored) activeness of `e` at the current time.
    #[must_use = "pure query; the activeness value is the only effect"]
    pub fn activeness(&self, e: EdgeId) -> f64 {
        self.act.current(e, &self.clock)
    }

    /// True similarity `S_t(e)` at the current time.
    #[must_use = "pure query; the similarity value is the only effect"]
    pub fn similarity(&self, e: EdgeId) -> f64 {
        self.sim[e as usize] * self.clock.global_factor()
    }

    /// Anchored similarity slice (for metric computations; anchored values
    /// preserve all comparisons).
    pub fn sim_anchored(&self) -> &[f64] {
        &self.sim
    }

    /// Active similarity σ(u, v) of an edge's endpoints (NeuM — identical
    /// for anchored and true activeness, Lemma 3).
    #[must_use = "pure query; the σ value is the only effect"]
    pub fn sigma(&self, u: NodeId, v: NodeId) -> f64 {
        self.ctx().sigma(u, v)
    }

    /// Node classification under the configured `(ε, µ)`.
    #[must_use = "pure query (scratch reuse aside); the classification is the only effect"]
    pub fn node_type(&mut self, v: NodeId) -> NodeType {
        let ctx = SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
        ctx.node_type(v, self.cfg.epsilon, self.cfg.mu, &mut self.scratch)
    }

    fn ctx(&self) -> SimilarityCtx<'_> {
        SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum }
    }

    fn reinforce_params(&self) -> ReinforceParams {
        // The anchored floor is the larger of the absolute floor on the
        // *true* similarity (`floor × 1/g`) and the mean-relative floor on
        // the anchored values.
        let mean = self.sim_sum / self.g.m().max(1) as f64;
        ReinforceParams {
            epsilon: self.cfg.epsilon,
            mu: self.cfg.mu,
            floor_anchored: (self.cfg.floor * self.clock.boost()).max(self.cfg.floor_rel * mean),
        }
    }

    /// Processes one activation `(e, t)` — the ANCO per-activation path:
    ///
    /// 1. advance the clock and bump the anchored activeness (`O(1)`,
    ///    Lemma 1);
    /// 2. apply local reinforcement with trigger edge `e` (`O(deg u +
    ///    deg v)` neighborhood work, Lemma 5);
    /// 3. repair every Voronoi partition for the changed weight
    ///    (Algorithms 1–3, bounded by the affected region, Lemma 12);
    /// 4. absorb a batched rescale if one is due.
    pub fn activate(&mut self, e: EdgeId, t: Time) {
        self.activate_traced(e, t);
    }

    /// Like [`Self::activate`] but returns the update's footprint: the
    /// per-partition affected-node lists (pyramid-major order), ready to be
    /// fed to a [`crate::VoteCache`] / [`crate::ClusterMonitor`] for
    /// real-time change reporting (the paper's Section V-C Remarks).
    ///
    /// An empty trace means the activation left the similarity (and hence
    /// the index) unchanged.
    pub fn activate_traced(&mut self, e: EdgeId, t: Time) -> Vec<Vec<NodeId>> {
        self.clock.advance_to(t);
        self.act.activate(e, &self.clock);
        let (u, v) = self.g.endpoints(e);
        let boost = self.clock.boost();
        self.node_sum[u as usize] += boost;
        self.node_sum[v as usize] += boost;
        self.clock.note_activation();
        self.activations += 1;

        let changed = self.reinforce_and_repair(e);
        self.maybe_rescale();
        if changed {
            self.trace_bufs.clone()
        } else {
            // audit:allow(hot-alloc) -- an empty Vec::new never allocates
            Vec::new()
        }
    }

    /// Grows the pooled per-partition trace buffers to one per partition
    /// (`k · levels` slots, fixed for the engine's lifetime).
    fn ensure_trace_bufs(&mut self) {
        let slots = self.pyramids.k() * self.pyramids.num_levels();
        if self.trace_bufs.len() < slots {
            self.trace_bufs.resize_with(slots, || Vec::with_capacity(0));
        }
    }

    /// Applies local reinforcement on `e` and propagates the weight change
    /// into the index (shared by the ANCO path and ANCOR replays). On
    /// return, `self.trace_bufs` holds the per-partition affected nodes;
    /// returns whether the similarity (and hence the index) changed at all.
    /// The buffers are pooled so the steady-state single-activation path
    /// performs no heap allocation.
    fn reinforce_and_repair(&mut self, e: EdgeId) -> bool {
        let params = self.reinforce_params();
        let ctx = SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
        let out = apply_reinforcement(&ctx, &mut self.sim, e, &params, &mut self.scratch);
        self.sim_sum += out.new_sim - out.old_sim;
        if out.new_sim == out.old_sim {
            return false;
        }
        let old_w = self.recip[e as usize];
        self.recip[e as usize] = 1.0 / out.new_sim;
        self.ensure_trace_bufs();
        if self.cfg.parallel_updates {
            self.pyramids.on_weight_change_into(
                &self.g,
                &self.recip,
                e,
                old_w,
                &mut self.trace_bufs,
            );
        } else {
            self.pyramids.on_weight_change_serial_into(
                &self.g,
                &self.recip,
                e,
                old_w,
                &mut self.trace_bufs,
            );
        }
        self.cache.get_mut().note_affected(&self.g, &self.trace_bufs);
        true
    }

    /// Processes a batch of activations arriving at the same time `t`
    /// through the batch-ingestion pipeline (DESIGN.md §7).
    ///
    /// Instead of repairing all `k·⌈log₂ n⌉` partitions after every single
    /// activation, weight deltas are accumulated and fed to the index as one
    /// grouped [`Pyramids::on_weight_change_batch`] fan-out — one parallel
    /// pass over the partitions per batch, with inert deltas short-circuited
    /// by an exact no-op precheck. [`crate::BatchMode`] selects the
    /// semantics: `Exact` (default) is **bit-identical** to a serial loop of
    /// [`Self::activate`] calls; `Fused` additionally deduplicates σ
    /// recomputation across the batch and parallelizes it. Both are
    /// deterministic regardless of the rayon thread count.
    pub fn activate_batch(&mut self, edges: &[EdgeId], t: Time) -> BatchStats {
        // BatchStats.wall is observability-only; it never feeds the
        // algorithms and is not serialized into snapshots.
        // audit:allow(wall-clock, nondet-taint) -- wall time is reported, never consumed
        let start = Instant::now();
        let mut stats = BatchStats { edges_in: edges.len(), ..Default::default() };
        if !edges.is_empty() {
            match self.cfg.batch {
                BatchMode::Exact => self.batch_exact(edges, t, &mut stats),
                BatchMode::Fused => self.batch_fused(edges, t, &mut stats),
            }
        }
        stats.wall = start.elapsed();
        #[cfg(feature = "debug-invariants")]
        self.debug_assert_invariants("activate_batch");
        stats
    }

    /// The `Exact` batch path: state evolves edge by edge exactly as in the
    /// serial loop; only index repairs are deferred into the grouped replay.
    fn batch_exact(&mut self, edges: &[EdgeId], t: Time, stats: &mut BatchStats) {
        let mut deltas: Vec<(EdgeId, f64, f64)> = Vec::with_capacity(edges.len());
        let mut dirty: Vec<EdgeId> = Vec::with_capacity(edges.len());
        for &e in edges {
            self.clock.advance_to(t);
            self.act.activate(e, &self.clock);
            let (u, v) = self.g.endpoints(e);
            let boost = self.clock.boost();
            self.node_sum[u as usize] += boost;
            self.node_sum[v as usize] += boost;
            self.clock.note_activation();
            self.activations += 1;

            let params = self.reinforce_params();
            let ctx =
                SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
            let out = apply_reinforcement(&ctx, &mut self.sim, e, &params, &mut self.scratch);
            stats.sigma_recomputes += 2;
            self.sim_sum += out.new_sim - out.old_sim;
            if out.new_sim != out.old_sim {
                let old_w = self.recip[e as usize];
                let new_w = 1.0 / out.new_sim;
                self.recip[e as usize] = new_w;
                deltas.push((e, old_w, new_w));
                dirty.push(e);
            }
            // The serial path checks for a due rescale after every
            // activation's repair; pending repairs must land at the
            // pre-rescale weights first.
            if self.clock.needs_rescale() {
                self.flush_repairs(&mut deltas, stats);
                self.force_rescale();
            }
        }
        self.flush_repairs(&mut deltas, stats);
        dirty.sort_unstable();
        dirty.dedup();
        stats.dirty_edges = dirty.len();
    }

    /// The `Fused` batch path: simultaneous-batch semantics. All activeness
    /// bumps land first (`node_sum` maintained incrementally, never
    /// rescanned), then σ is computed **once per distinct trigger node** —
    /// in parallel, with pooled per-worker scratch (σ is NeuM: it reads only
    /// activeness, never `sim`, so the whole batch shares one σ snapshot) —
    /// then reinforcement replays sequentially against the cache, and one
    /// grouped repair plus at most one rescale close the batch.
    fn batch_fused(&mut self, edges: &[EdgeId], t: Time, stats: &mut BatchStats) {
        // Phase 1: activeness.
        self.clock.advance_to(t);
        for &e in edges {
            self.act.activate(e, &self.clock);
            let (u, v) = self.g.endpoints(e);
            let boost = self.clock.boost();
            self.node_sum[u as usize] += boost;
            self.node_sum[v as usize] += boost;
            self.clock.note_activation();
            self.activations += 1;
        }

        // Phase 2: deduplicated trigger set, σ in parallel.
        let mut triggers: Vec<NodeId> = Vec::with_capacity(edges.len() * 2);
        for &e in edges {
            let (u, v) = self.g.endpoints(e);
            triggers.push(u);
            triggers.push(v);
        }
        triggers.sort_unstable();
        triggers.dedup();
        stats.sigma_recomputes += triggers.len();

        // Oversubscribe chunks (~4× threads) so the pool's stealing can
        // balance triggers with uneven neighborhood sizes.
        let n_target = rayon::recommended_chunks(triggers.len());
        let chunk_len = triggers.len().div_ceil(n_target);
        let n_chunks = triggers.len().div_ceil(chunk_len);
        let scratches = self.sigma_pool.take(n_chunks);
        let (epsilon, mu) = (self.cfg.epsilon, self.cfg.mu);
        let ctx = SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
        // Each worker writes its flat σ rows and per-trigger (row length,
        // node type) pairs into its pooled scratch, so the parallel phase
        // allocates nothing once the pool reaches its high-water mark.
        // `par_chunks` and `into_par_iter` are both indexed iterators, which
        // lets `collect_into_vec` reuse the engine's persistent chunk buffer.
        let chunk_out = &mut self.batch_chunks;
        triggers
            .par_chunks(chunk_len)
            .zip(scratches.into_par_iter())
            .map(|(chunk, mut scratch)| {
                scratch.flat.clear();
                scratch.rows.clear();
                for &u in chunk {
                    ctx.sigma_all(u, &mut scratch);
                    let ty = ctx.node_type_from_sigmas(u, epsilon, mu, &scratch.sigmas);
                    scratch.rows.push((scratch.sigmas.len() as u32, ty));
                    scratch.flat.extend_from_slice(&scratch.sigmas);
                }
                scratch
            })
            .collect_into_vec(chunk_out);

        // Reassemble per-trigger σ rows into one flat array; `ranges` is
        // aligned with the sorted `triggers`, looked up by binary search.
        // Both reassembly buffers persist on the engine across batches.
        let mut sigma_flat = std::mem::take(&mut self.batch_sigma_flat);
        let mut ranges = std::mem::take(&mut self.batch_ranges);
        sigma_flat.clear();
        ranges.clear();
        for chunk in &self.batch_chunks {
            let mut off = sigma_flat.len();
            for &(len, ty) in &chunk.rows {
                ranges.push((off, len as usize, ty));
                off += len as usize;
            }
            sigma_flat.extend_from_slice(&chunk.flat);
        }
        self.sigma_pool.put_back(self.batch_chunks.drain(..));

        // Phase 3: sequential reinforcement replay against the σ cache.
        let mut deltas: Vec<(EdgeId, f64, f64)> = Vec::with_capacity(edges.len());
        let mut dirty: Vec<EdgeId> = Vec::with_capacity(edges.len());
        for &e in edges {
            let (u, v) = self.g.endpoints(e);
            let (Ok(iu), Ok(iv)) = (triggers.binary_search(&u), triggers.binary_search(&v)) else {
                // Unreachable by construction (`triggers` holds every batch
                // endpoint), but a cache miss must not panic on the hot
                // path: fall back to the uncached reinforcement, which
                // recomputes σ from the same activeness snapshot and is
                // therefore numerically identical.
                let params = self.reinforce_params();
                let ctx = SimilarityCtx {
                    g: &self.g,
                    act: self.act.as_slice(),
                    node_sum: &self.node_sum,
                };
                let out = apply_reinforcement(&ctx, &mut self.sim, e, &params, &mut self.scratch);
                stats.sigma_recomputes += 2;
                self.sim_sum += out.new_sim - out.old_sim;
                if out.new_sim != out.old_sim {
                    let old_w = self.recip[e as usize];
                    let new_w = 1.0 / out.new_sim;
                    self.recip[e as usize] = new_w;
                    deltas.push((e, old_w, new_w));
                    dirty.push(e);
                }
                continue;
            };
            let (su, lu, tu) = ranges[iu];
            let (sv, lv, tv) = ranges[iv];
            let floor = self.reinforce_params().floor_anchored;
            let ctx =
                SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
            let out = apply_reinforcement_cached(
                &ctx,
                &mut self.sim,
                e,
                floor,
                CachedTrigger { sigmas: &sigma_flat[su..su + lu], node_type: tu },
                CachedTrigger { sigmas: &sigma_flat[sv..sv + lv], node_type: tv },
                &mut self.scratch,
            );
            self.sim_sum += out.new_sim - out.old_sim;
            if out.new_sim != out.old_sim {
                let old_w = self.recip[e as usize];
                let new_w = 1.0 / out.new_sim;
                self.recip[e as usize] = new_w;
                deltas.push((e, old_w, new_w));
                dirty.push(e);
            }
        }
        self.batch_sigma_flat = sigma_flat;
        self.batch_ranges = ranges;

        // Phase 4: one grouped repair fan-out, then at most one rescale
        // (safe to defer: `t` is fixed within the batch, so the anchored
        // magnitudes cannot drift past the exponent guard mid-batch).
        self.flush_repairs(&mut deltas, stats);
        self.maybe_rescale();
        dirty.sort_unstable();
        dirty.dedup();
        stats.dirty_edges = dirty.len();
    }

    /// Feeds the accumulated weight deltas to the index as one grouped
    /// parallel fan-out and clears the accumulator. While the cluster cache
    /// has materialized levels the traced variant runs instead, collecting
    /// per-partition affected sets into pooled buffers so the cache can
    /// mark its dirty edges.
    fn flush_repairs(&mut self, deltas: &mut Vec<(EdgeId, f64, f64)>, stats: &mut BatchStats) {
        if deltas.is_empty() {
            return;
        }
        let rs = if self.cache.get_mut().has_materialized_levels() {
            self.ensure_trace_bufs();
            let rs = self.pyramids.on_weight_change_batch_traced(
                &self.g,
                &self.recip,
                deltas,
                &mut self.trace_bufs,
            );
            self.cache.get_mut().note_affected(&self.g, &self.trace_bufs);
            rs
        } else {
            self.cache.get_mut().note_untracked_updates();
            self.pyramids.on_weight_change_batch(&self.g, &self.recip, deltas)
        };
        stats.repair_updates += rs.updates;
        stats.repair_skips += rs.skips;
        deltas.clear();
    }

    /// Batch processing with an adaptive repair strategy.
    ///
    /// The bounded UPDATE wins for small batches but its cost grows linearly
    /// with the batch while RECONSTRUCT is flat (Figure 8), so past a
    /// crossover it is cheaper to apply all state updates first and rebuild
    /// the index once. `rebuild_threshold` is that crossover in activations;
    /// `None` uses `m / 16`, a conservative fit of the Exp 6 curves.
    ///
    /// State evolution (activeness, similarity) is identical to
    /// [`Self::activate_batch`] in `Exact` mode — only the index-repair
    /// strategy differs, and a rebuild reproduces the same distances the
    /// incremental repairs would.
    pub fn activate_batch_adaptive(
        &mut self,
        edges: &[EdgeId],
        t: Time,
        rebuild_threshold: Option<usize>,
    ) -> BatchStats {
        let threshold = rebuild_threshold.unwrap_or_else(|| (self.g.m() / 16).max(64));
        if edges.len() < threshold {
            return self.activate_batch(edges, t);
        }
        // BatchStats.wall is observability-only; it never feeds the
        // algorithms and is not serialized into snapshots.
        // audit:allow(wall-clock, nondet-taint) -- wall time is reported, never consumed
        let start = Instant::now();
        let mut stats = BatchStats { edges_in: edges.len(), rebuilt: true, ..Default::default() };
        // State updates without per-activation index repair…
        self.clock.advance_to(t);
        let mut dirty: Vec<EdgeId> = Vec::with_capacity(edges.len());
        for &e in edges {
            self.act.activate(e, &self.clock);
            let (u, v) = self.g.endpoints(e);
            let boost = self.clock.boost();
            self.node_sum[u as usize] += boost;
            self.node_sum[v as usize] += boost;
            self.clock.note_activation();
            self.activations += 1;
            let params = self.reinforce_params();
            let ctx =
                SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
            let out = apply_reinforcement(&ctx, &mut self.sim, e, &params, &mut self.scratch);
            stats.sigma_recomputes += 2;
            self.sim_sum += out.new_sim - out.old_sim;
            if out.new_sim != out.old_sim {
                self.recip[e as usize] = 1.0 / out.new_sim;
                dirty.push(e);
            }
        }
        // …then one reconstruction over the final weights.
        self.reconstruct_index();
        self.maybe_rescale();
        dirty.sort_unstable();
        dirty.dedup();
        stats.dirty_edges = dirty.len();
        stats.wall = start.elapsed();
        #[cfg(feature = "debug-invariants")]
        self.debug_assert_invariants("activate_batch_adaptive");
        stats
    }

    /// ANCOR's periodic replay: applies one extra local reinforcement (and
    /// index repair) per edge in `edges` at the current time.
    pub fn reinforce_edges(&mut self, edges: &[EdgeId]) {
        for &e in edges {
            self.reinforce_and_repair(e);
        }
        self.maybe_rescale();
    }

    fn maybe_rescale(&mut self) {
        if self.clock.needs_rescale() {
            self.force_rescale();
        }
    }

    /// Forces a batched rescale now (exposed for tests and ablations).
    pub fn force_rescale(&mut self) {
        let g = self.clock.take_rescale();
        self.act.rescale(g);
        anc_decay::absorb(MaintainClass::Pos, &mut self.node_sum, g);
        anc_decay::absorb(MaintainClass::Pos, &mut self.sim, g);
        anc_decay::absorb(MaintainClass::Neg, &mut self.recip, g);
        self.pyramids.rescale(1.0 / g);
        self.sim_sum *= g;
        self.rescales += 1;
    }

    // --- queries ----------------------------------------------------------

    /// Number of granularity levels (`⌈log₂ n⌉`).
    pub fn num_levels(&self) -> usize {
        self.pyramids.num_levels()
    }

    /// The `Θ(√n)`-clusters entry level of Problem 1.
    pub fn default_level(&self) -> usize {
        self.pyramids.default_level()
    }

    /// All clusters at `level` (Problem 1(1)).
    ///
    /// Served transparently from the incremental cluster-query cache: the
    /// first query of a level pays one parallel voting pass, subsequent
    /// queries only re-vote the edges dirtied by intervening activations
    /// (see [`crate::ClusterCache`]). Returns an owned clone; use
    /// [`Self::cluster_all_cached`] to share the cached allocation and read
    /// the [`QueryStats`].
    pub fn cluster_all(&self, level: usize, mode: ClusterMode) -> Clustering {
        (*self.cluster_all_cached(level, mode).0).clone()
    }

    /// [`Self::cluster_all`] without the copy: the returned [`Arc`] is
    /// shared with the cache (repeat queries at an unchanged generation
    /// return the same allocation), and the [`QueryStats`] report the
    /// cache generation, pending dirty edges, and the repair-vs-rebuild
    /// decision this query took.
    ///
    /// A wait-free query root (audit rule A11, `blocking-in-reader`): on
    /// the warm path this hands out the cached `Arc` snapshot without
    /// locking or pool dispatch. The one audited exception is the
    /// first-touch cold fill, which runs inline on the querying thread
    /// (the writer path) before the snapshot is published.
    pub fn cluster_all_cached(
        &self,
        level: usize,
        mode: ClusterMode,
    ) -> (Arc<Clustering>, QueryStats) {
        self.cache.borrow_mut().query(&self.g, &self.pyramids, level, mode)
    }

    /// Read access to the cluster-query cache (observability: generation,
    /// hit/miss counters, per-level dirty counts and epochs).
    pub fn cluster_cache(&self) -> std::cell::Ref<'_, ClusterCache> {
        self.cache.borrow()
    }

    /// Mutable access to the cluster-query cache (tuning knobs such as
    /// [`ClusterCache::set_dirty_rebuild_fraction`]).
    pub fn cluster_cache_mut(&mut self) -> &mut ClusterCache {
        self.cache.get_mut()
    }

    /// Selects the execution mode of subsequent [`Self::activate_batch`]
    /// calls. The serving layer's adaptive coalescing policy flips this per
    /// drained batch (Exact for short batches, Fused past a threshold);
    /// [`crate::DurableEngine`] deliberately does not expose it, because a
    /// mode flip between logged batches would change what WAL replay
    /// reconstructs.
    pub fn set_batch_mode(&mut self, mode: BatchMode) {
        self.cfg.batch = mode;
    }

    /// Snapshot-publish hook for the serving layer (DESIGN.md §14): brings
    /// the cache current at every requested `(level, mode)` pair — paying
    /// any pending repairs *now*, on the calling (writer) thread — and
    /// returns the refreshed `Arc` clusterings as one immutable
    /// [`ClusterView`] ready to hand to [`crate::publish::Publisher`].
    ///
    /// Readers holding the view answer membership queries from its `Arc`s
    /// without ever touching the engine, so the per-query path stays
    /// wait-free (audit rule A11).
    pub fn refresh_view(&self, levels: &[usize], modes: &[ClusterMode]) -> ClusterView {
        let mut view = ClusterView::default();
        for &level in levels {
            let mut lc = LevelClusters { level, epoch: 0, even: None, power: None };
            for &mode in modes {
                let (c, qs) = self.cluster_all_cached(level, mode);
                view.generation = view.generation.max(qs.generation);
                lc.epoch = lc.epoch.max(qs.epoch);
                view.query += qs;
                match mode {
                    ClusterMode::Even => lc.even = Some(c),
                    ClusterMode::Power => lc.power = Some(c),
                }
            }
            view.levels.push(lc);
        }
        view
    }

    /// The cluster containing `v` at `level` (Problem 1(2)); even-clustering
    /// semantics, cost proportional to the result (Lemma 9).
    pub fn local_cluster(&self, v: NodeId, level: usize) -> Vec<NodeId> {
        query::local_cluster(&self.g, &self.pyramids, v, level)
    }

    /// The cluster containing `v` under power-clustering semantics.
    pub fn local_cluster_power(&self, v: NodeId, level: usize) -> Vec<NodeId> {
        query::local_cluster_power(&self.g, &self.pyramids, v, level)
    }

    /// The smallest cluster containing `v` (finest granularity).
    pub fn smallest_cluster(&self, v: NodeId) -> Vec<NodeId> {
        query::smallest_cluster(&self.g, &self.pyramids, v)
    }

    /// Whether `u` and `v` share a cluster at `level` (Problem 1(3)).
    ///
    /// A wait-free query root (audit rule A11, `blocking-in-reader`):
    /// answered from the immutable pyramid partitions with no locking,
    /// blocking, or pool dispatch, so concurrent readers never stall
    /// behind a writer.
    #[inline]
    #[must_use = "pure query; the membership answer is the only effect"]
    pub fn same_cluster(&self, u: NodeId, v: NodeId, level: usize) -> bool {
        self.pyramids.same_cluster(u, v, level)
    }

    /// Approximate *true* (de-anchored) distance `M_t(u, v)` answered from
    /// the index in `O(k log n)` via the underlying Das Sarma sketch: never
    /// an underestimate, `O(log n)` expected stretch. `f64::INFINITY` when
    /// no partition joins the pair.
    #[must_use = "pure query; the distance estimate is the only effect"]
    pub fn approx_distance(&self, u: NodeId, v: NodeId) -> f64 {
        // Stored distances are anchored (weights 1/S*); the true NegM value
        // divides by the global factor g... true w = w*/g, so true dist =
        // anchored / g.
        self.pyramids.approx_distance(u, v) / self.clock.global_factor()
    }

    /// Exact *true* distance `M_t(u, v)` by on-line Dijkstra (`O(m log n)`),
    /// the reference for [`Self::approx_distance`].
    #[must_use = "pure query; the distance is the only effect"]
    pub fn exact_distance(&self, u: NodeId, v: NodeId) -> f64 {
        crate::metric::distance(&self.g, &self.sim, u, v) / self.clock.global_factor()
    }

    // --- offline (ANCF) & maintenance -------------------------------------

    /// Builds an ANCF snapshot: resets `S` to 1, runs `rep` full
    /// reinforcement passes against the current activeness, and rebuilds the
    /// index from scratch. The engine itself is unchanged.
    pub fn offline_snapshot(&mut self, rep: usize) -> OfflineSnapshot {
        let mut sim = vec![1.0; self.g.m()];
        // Fresh S₀ starts at mean 1, so the relative floor applies directly.
        let params = ReinforceParams {
            epsilon: self.cfg.epsilon,
            mu: self.cfg.mu,
            floor_anchored: self.cfg.floor.max(self.cfg.floor_rel),
        };
        {
            let ctx =
                SimilarityCtx { g: &self.g, act: self.act.as_slice(), node_sum: &self.node_sum };
            for _ in 0..rep {
                crate::reinforce::full_pass(&ctx, &mut sim, &params, &mut self.scratch);
            }
        }
        let recip: Vec<f64> = sim.iter().map(|s| 1.0 / s).collect();
        let pyramids =
            Pyramids::build(&self.g, &recip, self.cfg.k, self.cfg.theta, self.index_seed);
        OfflineSnapshot { sim, recip, pyramids }
    }

    /// Rebuilds the engine's own index from its current weights — the
    /// RECONSTRUCT baseline of Figure 8. Fresh seed draws give per-edge
    /// dirty tracking no baseline to repair from, so the cluster cache is
    /// invalidated wholesale and refills lazily. The rebuild reuses the
    /// index's own buffers (bit-identical to a fresh build).
    pub fn reconstruct_index(&mut self) {
        self.pyramids.rebuild(&self.g, &self.recip, self.index_seed);
        self.cache.get_mut().invalidate_all();
    }

    /// Captures the complete engine state for checkpointing
    /// (see [`crate::persist`]).
    pub fn to_snapshot(&self) -> crate::persist::EngineSnapshot {
        crate::persist::EngineSnapshot {
            version: crate::persist::SNAPSHOT_VERSION,
            graph: self.g.clone(),
            config: self.cfg.clone(),
            clock: self.clock.clone(),
            activeness: self.act.clone(),
            node_sum: self.node_sum.clone(),
            sim: self.sim.clone(),
            pyramids: self.pyramids.clone(),
            index_seed: self.index_seed,
            sim_sum: self.sim_sum,
            activations: self.activations,
            rescales: self.rescales,
        }
    }

    /// Borrows every persisted field at once (no cloning) for the binary
    /// snapshot encoder (see [`crate::persist::binary`]).
    pub(crate) fn persist_view(&self) -> crate::persist::PersistView<'_> {
        crate::persist::PersistView {
            graph: &self.g,
            config: &self.cfg,
            clock: &self.clock,
            activeness: self.act.as_slice(),
            node_sum: &self.node_sum,
            sim: &self.sim,
            pyramids: &self.pyramids,
            index_seed: self.index_seed,
            sim_sum: self.sim_sum,
            activations: self.activations,
            rescales: self.rescales,
        }
    }

    /// Restores an engine from a snapshot. Validates consistency; scratch
    /// buffers and the derived reciprocal weights are rebuilt (`O(n + m)`),
    /// everything else is adopted as-is.
    pub fn from_snapshot(
        snapshot: crate::persist::EngineSnapshot,
    ) -> Result<Self, crate::persist::RestoreError> {
        snapshot.validate()?;
        let recip: Vec<f64> = snapshot.sim.iter().map(|s| 1.0 / s).collect();
        let scratch = Scratch::new(snapshot.graph.n());
        let sigma_pool = ScratchPool::new(snapshot.graph.n());
        // The cluster cache is never serialized (see `crate::persist`): a
        // restored engine starts cold and refills lazily on first query.
        let cache = RefCell::new(ClusterCache::new(snapshot.pyramids.num_levels()));
        Ok(Self {
            g: snapshot.graph,
            cfg: snapshot.config,
            clock: snapshot.clock,
            act: snapshot.activeness,
            node_sum: snapshot.node_sum,
            sim: snapshot.sim,
            recip,
            pyramids: snapshot.pyramids,
            index_seed: snapshot.index_seed,
            scratch,
            sigma_pool,
            batch_chunks: Vec::new(),
            batch_sigma_flat: Vec::new(),
            batch_ranges: Vec::new(),
            sim_sum: snapshot.sim_sum,
            activations: snapshot.activations,
            rescales: snapshot.rescales,
            cache,
            trace_bufs: Vec::new(),
        })
    }

    /// Total heap bytes: index plus per-edge state (graph excluded, matching
    /// the paper's "space for storing the graph is excluded" in Exp 4).
    pub fn memory_bytes(&self) -> usize {
        self.pyramids.memory_bytes()
            + self.act.memory_bytes()
            + (self.node_sum.len() + self.sim.len() + self.recip.len()) * std::mem::size_of::<f64>()
    }

    /// Verifies every engine invariant against the current state (testing
    /// aid; `O(k · m log n)`): CSR well-formedness, activeness finiteness
    /// and Def. 2 consistency, similarity positivity and `1/S*` sync,
    /// pyramid shape, per-partition shortest-path-forest soundness, and
    /// validity of the default-level clustering. See [`crate::invariant`]
    /// for the catalogue.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        invariant::check_graph(&self.g)?;
        invariant::check_activeness(&self.g, self.act.as_slice(), &self.node_sum)?;
        invariant::check_similarities(&self.sim)?;
        invariant::check_recip_sync(&self.sim, &self.recip)?;
        self.pyramids.check_invariants(&self.g, &self.recip)?;
        let c = cluster_all(&self.g, &self.pyramids, self.default_level(), ClusterMode::Power);
        invariant::check_clustering(&self.g, &c)?;
        invariant::check_cluster_cache(&self.g, &self.pyramids, &self.cache.borrow())
    }

    /// Batch-boundary hook of the `debug-invariants` feature: panics on the
    /// first violated invariant. Compiled out entirely when the feature is
    /// disabled.
    #[cfg(feature = "debug-invariants")]
    fn debug_assert_invariants(&self, site: &str) {
        if let Err(v) = self.check_invariants() {
            panic!("debug-invariants after {site}: {v}");
        }
    }

    /// Desynchronizes one cached `A(v)` from the edge activeness so the
    /// negative invariant tests can prove the checker catches it. Not part
    /// of the public API.
    #[doc(hidden)]
    pub fn corrupt_node_sum_for_test(&mut self, v: NodeId, delta: f64) {
        self.node_sum[v as usize] += delta;
    }
}

impl OfflineSnapshot {
    /// All clusters at `level` from the snapshot index.
    pub fn cluster_all(&self, g: &Graph, level: usize, mode: ClusterMode) -> Clustering {
        cluster_all(g, &self.pyramids, level, mode)
    }
}

/// The cached clusterings of one level inside a [`ClusterView`].
#[derive(Clone, Debug)]
pub struct LevelClusters {
    /// The granularity level these clusterings answer.
    pub level: usize,
    /// The level's rebuild epoch at refresh time (see
    /// [`QueryStats::epoch`]).
    pub epoch: u64,
    /// Even-mode clustering, if requested from [`AncEngine::refresh_view`].
    pub even: Option<Arc<Clustering>>,
    /// Power-mode clustering, if requested.
    pub power: Option<Arc<Clustering>>,
}

/// An immutable, shareable view of the cached clusterings at a set of
/// levels — the unit the serving layer publishes to its readers after each
/// drained ingest batch ([`AncEngine::refresh_view`], DESIGN.md §14).
#[derive(Clone, Debug, Default)]
pub struct ClusterView {
    /// Cache generation every clustering in this view was refreshed at; two
    /// views with equal generation saw the same logical index state.
    pub generation: u64,
    /// One entry per requested level, in request order.
    pub levels: Vec<LevelClusters>,
    /// The refresh queries' merged [`QueryStats`].
    pub query: QueryStats,
}

impl ClusterView {
    /// The view's entry for `level`, if it was requested.
    pub fn at_level(&self, level: usize) -> Option<&LevelClusters> {
        self.levels.iter().find(|l| l.level == level)
    }

    /// The clustering at `(level, mode)`, if the view carries it.
    pub fn clusters(&self, level: usize, mode: ClusterMode) -> Option<&Arc<Clustering>> {
        let lc = self.at_level(level)?;
        match mode {
            ClusterMode::Even => lc.even.as_ref(),
            ClusterMode::Power => lc.power.as_ref(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::gen::connected_caveman;

    fn engine_fixture(rep: usize) -> AncEngine {
        let lg = connected_caveman(4, 6);
        let cfg = AncConfig { rep, mu: 3, epsilon: 0.25, k: 4, ..Default::default() };
        AncEngine::new(lg.graph, cfg, 42)
    }

    #[test]
    fn construction_is_consistent() {
        let engine = engine_fixture(2);
        engine.check_invariants().unwrap();
        assert_eq!(engine.activations(), 0);
        assert!(engine.num_levels() >= 4); // n = 24 → ⌈log₂ 24⌉ = 5
    }

    #[test]
    fn initialization_recovers_cliques() {
        let lg = connected_caveman(4, 6);
        let labels = lg.labels.clone();
        let cfg = AncConfig { rep: 3, mu: 3, epsilon: 0.25, k: 4, ..Default::default() };
        let engine = AncEngine::new(lg.graph, cfg, 7);
        let c = engine.cluster_all(engine.default_level(), ClusterMode::Power);
        let truth = Clustering::from_labels(&labels);
        let score = anc_metrics::nmi(&c, &truth);
        assert!(score > 0.8, "caveman NMI should be high, got {score}");
    }

    #[test]
    fn activations_keep_invariants() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        for i in 0..50u32 {
            engine.activate((i * 7) % m, 1.0 + i as f64 * 0.25);
        }
        engine.check_invariants().unwrap();
        assert_eq!(engine.activations(), 50);
    }

    #[test]
    fn online_update_matches_full_rebuild() {
        // The decisive end-to-end property: after a stream of activations,
        // the incrementally maintained index must equal an index rebuilt
        // from scratch over the same weights (same seeds → same partitions).
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        for i in 0..40u32 {
            engine.activate((i * 11 + 3) % m, (i / 4) as f64);
        }
        let live_dists: Vec<Vec<f64>> = (0..engine.pyramids().k())
            .flat_map(|p| (0..engine.num_levels()).map(move |l| (p, l)))
            .map(|(p, l)| {
                (0..engine.graph().n() as u32)
                    .map(|v| engine.pyramids().partition(p, l).dist(v))
                    .collect()
            })
            .collect();
        engine.reconstruct_index();
        let mut idx = 0;
        for p in 0..engine.pyramids().k() {
            for l in 0..engine.num_levels() {
                for v in 0..engine.graph().n() as u32 {
                    let fresh = engine.pyramids().partition(p, l).dist(v);
                    let live = live_dists[idx][v as usize];
                    assert!(
                        (fresh - live).abs() <= 1e-6 * (1.0 + fresh.abs()),
                        "pyramid {p} level {l} node {v}: live {live} vs rebuild {fresh}"
                    );
                }
                idx += 1;
            }
        }
    }

    #[test]
    fn rescale_changes_nothing_observable() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        for i in 0..20u32 {
            engine.activate(i % m, i as f64);
        }
        let level = engine.default_level();
        let before = engine.cluster_all(level, ClusterMode::Power);
        let sim_before = engine.similarity(0);
        let act_before = engine.activeness(0);
        engine.force_rescale();
        engine.check_invariants().unwrap();
        let after = engine.cluster_all(level, ClusterMode::Power);
        assert_eq!(before, after, "rescale must not change clustering");
        assert!((engine.similarity(0) - sim_before).abs() < 1e-9 * (1.0 + sim_before));
        assert!((engine.activeness(0) - act_before).abs() < 1e-9 * (1.0 + act_before));
        assert!(engine.rescales() >= 1);
    }

    #[test]
    fn decay_weakens_unactivated_community_bonds() {
        // Activate only clique 0's edges; by a late time, similarities of
        // clique 0 edges (true values) should dominate the others.
        let lg = connected_caveman(2, 5);
        let labels = lg.labels.clone();
        let cfg = AncConfig { rep: 1, lambda: 0.2, mu: 3, epsilon: 0.25, ..Default::default() };
        let mut engine = AncEngine::new(lg.graph, cfg, 3);
        let clique0: Vec<u32> = engine
            .graph()
            .iter_edges()
            .filter(|&(_, u, v)| labels[u as usize] == 0 && labels[v as usize] == 0)
            .map(|(e, _, _)| e)
            .collect();
        for t in 1..=30 {
            let edges = clique0.clone();
            let stats = engine.activate_batch(&edges, t as f64);
            assert_eq!(stats.edges_in, edges.len());
        }
        let hot = engine.similarity(clique0[0]);
        let cold_edge = engine
            .graph()
            .iter_edges()
            .find(|&(_, u, v)| labels[u as usize] == 1 && labels[v as usize] == 1)
            .map(|(e, _, _)| e)
            .unwrap();
        let cold = engine.similarity(cold_edge);
        assert!(hot > cold, "activated clique must stay stronger: {hot} vs {cold}");
    }

    #[test]
    fn offline_snapshot_is_independent() {
        let mut engine = engine_fixture(0);
        let m = engine.graph().m() as u32;
        for i in 0..10u32 {
            engine.activate(i % m, i as f64 / 2.0);
        }
        let before: Vec<f64> = engine.sim_anchored().to_vec();
        let snap = engine.offline_snapshot(3);
        assert_eq!(engine.sim_anchored(), &before[..], "engine must be unchanged");
        assert_eq!(snap.sim.len(), engine.graph().m());
        let g = engine.graph().clone();
        let c = snap.cluster_all(&g, snap.pyramids.default_level(), ClusterMode::Power);
        assert!(c.num_clusters() >= 1);
    }

    #[test]
    fn ancor_reinforce_edges_keeps_invariants() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        let mut recent = vec![];
        for i in 0..30u32 {
            let e = (i * 5 + 1) % m;
            engine.activate(e, i as f64 * 0.2);
            recent.push(e);
            if i % 5 == 4 {
                let batch: Vec<u32> = std::mem::take(&mut recent);
                engine.reinforce_edges(&batch);
            }
        }
        engine.check_invariants().unwrap();
    }

    #[test]
    fn traced_activation_reports_footprint() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        let mut any_nonempty = false;
        for i in 0..20u32 {
            let trace = engine.activate_traced(i % m, 1.0 + i as f64 * 0.5);
            if trace.is_empty() {
                continue;
            }
            any_nonempty = true;
            // One entry per partition.
            assert_eq!(trace.len(), engine.pyramids().k() * engine.num_levels(), "trace arity");
            for nodes in &trace {
                for &x in nodes {
                    assert!((x as usize) < engine.graph().n());
                }
            }
        }
        assert!(any_nonempty, "some activation must move the index");
    }

    #[test]
    fn approx_distance_consistent_with_exact() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        for i in 0..30u32 {
            engine.activate((i * 3 + 1) % m, i as f64 * 0.3);
        }
        for u in (0..engine.graph().n() as u32).step_by(5) {
            for v in (0..engine.graph().n() as u32).step_by(7) {
                let est = engine.approx_distance(u, v);
                let exact = engine.exact_distance(u, v);
                if u == v {
                    assert_eq!(est, 0.0);
                } else if exact.is_finite() {
                    assert!(est >= exact * (1.0 - 1e-9), "({u},{v}) est {est} < exact {exact}");
                } else {
                    assert!(est.is_infinite());
                }
            }
        }
    }

    #[test]
    fn adaptive_batch_matches_per_activation_path() {
        let lg = connected_caveman(3, 5);
        let cfg = AncConfig { rep: 1, k: 2, ..Default::default() };
        let mut a = AncEngine::new(lg.graph.clone(), cfg.clone(), 11);
        let mut b = AncEngine::new(lg.graph.clone(), cfg, 11);
        let m = lg.graph.m() as u32;
        let batch: Vec<u32> = (0..40).map(|i| (i * 3 + 1) % m).collect();
        let sa = a.activate_batch(&batch, 2.0);
        let sb = b.activate_batch_adaptive(&batch, 2.0, Some(1)); // force rebuild path
        assert!(!sa.rebuilt);
        assert!(sb.rebuilt);
        // Identical state…
        for e in 0..m {
            assert_eq!(a.similarity(e), b.similarity(e));
            assert_eq!(a.activeness(e), b.activeness(e));
        }
        // …and identical index distances.
        for p in 0..a.pyramids().k() {
            for l in 0..a.num_levels() {
                for v in 0..lg.graph.n() as u32 {
                    let (da, db) = (
                        a.pyramids().partition(p, l).dist(v),
                        b.pyramids().partition(p, l).dist(v),
                    );
                    assert!((da - db).abs() < 1e-9 * (1.0 + db.abs()));
                }
            }
        }
        b.check_invariants().unwrap();
        // Below the threshold it takes the incremental path.
        let mut c =
            AncEngine::new(lg.graph.clone(), AncConfig { rep: 1, k: 2, ..Default::default() }, 11);
        let sc = c.activate_batch_adaptive(&batch[..2], 1.0, Some(1000));
        assert!(!sc.rebuilt, "below threshold must take the incremental path");
        c.check_invariants().unwrap();
    }

    #[test]
    fn memory_accounting_positive() {
        let engine = engine_fixture(0);
        assert!(engine.memory_bytes() > 0);
    }

    /// The tentpole correctness bar: the exact batch path must be
    /// bit-identical to a serial loop of `activate` calls — including across
    /// a mid-batch rescale — down to the serialized snapshot bytes.
    #[test]
    fn exact_batch_is_bitwise_identical_to_serial_loop() {
        let lg = connected_caveman(4, 6);
        // A tiny rescale interval forces several mid-batch rescales.
        let rescale = anc_decay::RescaleConfig { every_activations: 7, exponent_guard: 200.0 };
        let cfg = AncConfig { rep: 1, mu: 3, epsilon: 0.25, k: 3, rescale, ..Default::default() };
        let mut serial = AncEngine::new(lg.graph.clone(), cfg.clone(), 42);
        let mut batched = AncEngine::new(lg.graph, cfg, 42);
        let m = serial.graph().m() as u32;
        let mut stats_total = BatchStats::default();
        for step in 0..6u32 {
            let t = 1.0 + step as f64 * 0.5;
            let batch: Vec<u32> = (0..25).map(|i| (i * 7 + step * 3) % m).collect();
            for &e in &batch {
                serial.activate(e, t);
            }
            let s = batched.activate_batch(&batch, t);
            assert_eq!(s.edges_in, batch.len());
            assert_eq!(s.sigma_recomputes, 2 * batch.len());
            stats_total.repair_updates += s.repair_updates;
            stats_total.repair_skips += s.repair_skips;
        }
        assert!(serial.rescales() >= 2, "test must cross rescales");
        assert_eq!(serial.rescales(), batched.rescales());
        assert!(stats_total.repair_updates > 0);
        for e in 0..m as usize {
            assert_eq!(serial.sim[e].to_bits(), batched.sim[e].to_bits(), "sim {e}");
            assert_eq!(serial.recip[e].to_bits(), batched.recip[e].to_bits(), "recip {e}");
        }
        // The serialized snapshots (state + every partition, including
        // internal stamps) must be byte-identical.
        let a = serde_json::to_string(&serial.to_snapshot()).unwrap();
        let b = serde_json::to_string(&batched.to_snapshot()).unwrap();
        assert_eq!(a, b, "snapshots diverge");
        batched.check_invariants().unwrap();
    }

    #[test]
    fn fused_batch_keeps_invariants_and_dedupes_sigma() {
        let lg = connected_caveman(4, 6);
        let cfg = AncConfig {
            rep: 1,
            mu: 3,
            epsilon: 0.25,
            k: 3,
            batch: crate::BatchMode::Fused,
            ..Default::default()
        };
        let mut engine = AncEngine::new(lg.graph, cfg, 42);
        let m = engine.graph().m() as u32;
        // A batch that revisits the same few edges: the deduplicated trigger
        // set is much smaller than 2 × batch size.
        let batch: Vec<u32> = (0..60).map(|i| i % 5).collect();
        let stats = engine.activate_batch(&batch, 1.5);
        assert_eq!(stats.edges_in, 60);
        assert!(
            stats.sigma_recomputes < batch.len(),
            "fused σ must dedup: {} recomputes",
            stats.sigma_recomputes
        );
        assert!(stats.dirty_edges <= 5);
        assert!(!stats.rebuilt);
        engine.check_invariants().unwrap();
        // A second, spread-out batch also stays consistent.
        let batch2: Vec<u32> = (0..m).step_by(3).collect();
        let stats2 = engine.activate_batch(&batch2, 2.5);
        assert_eq!(stats2.edges_in, batch2.len());
        engine.check_invariants().unwrap();
    }

    /// Satellite regression: updates that cannot move any vote — an empty
    /// batch and a batched rescale (uniform distance scaling preserves every
    /// seed assignment) — must not bump the cache generation, mark edges
    /// dirty, or replace the cached clustering allocation.
    #[test]
    fn rescale_and_empty_batch_preserve_cache_generation() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        for i in 0..30u32 {
            engine.activate(i % m, 1.0 + i as f64 * 0.1);
        }
        let level = engine.default_level();
        let (before, s0) = engine.cluster_all_cached(level, ClusterMode::Power);
        let gen = engine.cluster_cache().generation();
        let _ = engine.activate_batch(&[], 10.0);
        engine.force_rescale();
        assert_eq!(engine.cluster_cache().generation(), gen);
        assert_eq!(engine.cluster_cache().dirty_count(level), Some(0));
        let (after, s1) = engine.cluster_all_cached(level, ClusterMode::Power);
        assert!(Arc::ptr_eq(&before, &after), "cached Arc must survive the no-ops");
        assert_eq!(s1.generation, s0.generation);
        assert_eq!(s1.decision, crate::cache::QueryDecision::Hit);
        engine.check_invariants().unwrap();
    }

    /// Queries served from the cache must track a stream of single, batch,
    /// and adaptive updates exactly (the engine-level cached ≡ cold bar).
    #[test]
    fn cached_queries_track_mixed_update_stream() {
        let mut engine = engine_fixture(1);
        let m = engine.graph().m() as u32;
        let level = engine.default_level();
        engine.cluster_all_cached(level, ClusterMode::Even);
        engine.cluster_all_cached(level, ClusterMode::Power);
        for step in 0..8u32 {
            let t = 1.0 + step as f64 * 0.4;
            match step % 3 {
                0 => {
                    engine.activate((step * 13 + 1) % m, t);
                }
                1 => {
                    let batch: Vec<u32> = (0..12).map(|i| (i * 5 + step) % m).collect();
                    let _ = engine.activate_batch(&batch, t);
                }
                _ => {
                    let batch: Vec<u32> = (0..20).map(|i| (i * 3 + step) % m).collect();
                    let _ = engine.activate_batch_adaptive(&batch, t, Some(10));
                }
            }
            for mode in [ClusterMode::Even, ClusterMode::Power] {
                let (cached, _) = engine.cluster_all_cached(level, mode);
                let cold = cluster_all(engine.graph(), engine.pyramids(), level, mode);
                assert_eq!(*cached, cold, "step {step} {mode:?}");
            }
        }
        engine.check_invariants().unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut engine = engine_fixture(1);
        let before = serde_json::to_string(&engine.to_snapshot()).unwrap();
        let stats = engine.activate_batch(&[], 5.0);
        assert_eq!(stats.edges_in, 0);
        assert_eq!(stats.dirty_edges, 0);
        let after = serde_json::to_string(&engine.to_snapshot()).unwrap();
        assert_eq!(before, after);
    }
}
