//! Active similarity σ, active neighbor sets and node classification
//! (paper Section IV-B).
//!
//! The **active similarity** of an edge `(u, v)` combines structural
//! correlation (common neighbors, à la Jaccard) with edge activeness:
//!
//! ```text
//!            Σ_{x ∈ N(u) ∩ N(v)} ( a_t(u,x) + a_t(v,x) )
//! σ(u, v) =  ───────────────────────────────────────────
//!            Σ_{x ∈ N(u)} a_t(u,x) + Σ_{x ∈ N(v)} a_t(v,x)
//! ```
//!
//! σ is a ratio of PosM quantities, hence **NeuM** (Lemma 3): it can be
//! computed directly from *anchored* activeness — the global decay factor
//! cancels — which is what every function here does.

use anc_graph::{EdgeId, Graph, NodeId};

/// Node classification by active-neighbor count (Section IV-B).
///
/// The three types disjointly partition `V`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// `|N_ε(v)| ≥ µ`: leads a community, attracts neighbors.
    Core,
    /// Not a core but `deg(v) ≥ µ`: could become one.
    PCore,
    /// `deg(v) < µ`: can never be a core; follows rather than leads.
    Periphery,
}

/// Read-only view over the activeness state needed by σ: the graph, the
/// anchored per-edge activeness, and the cached per-node activeness sums
/// `A(v) = Σ_{x ∈ N(v)} a*(v, x)` (maintained incrementally by the engine).
#[derive(Clone, Copy)]
pub struct SimilarityCtx<'a> {
    /// The relation network.
    pub g: &'a Graph,
    /// Anchored activeness per edge id.
    pub act: &'a [f64],
    /// Anchored activeness sum per node.
    pub node_sum: &'a [f64],
}

/// Reusable scratch buffers for neighborhood computations; allocate once per
/// worker and reuse across calls (all methods reset their own state).
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    mark: Vec<u32>,
    val: Vec<f64>,
    stamp: u32,
    /// σ(u, w) per adjacency slot of the last `sigma_all` call.
    pub sigmas: Vec<f64>,
    /// Second σ row buffer: `apply_reinforcement` needs both trigger rows
    /// live at once, so it swaps this in for the second `sigma_all` call
    /// instead of allocating a fresh row per activation.
    pub sigmas_b: Vec<f64>,
    /// Flat concatenation of σ rows produced by one fused-batch worker
    /// chunk (engine use; reused across batches via the pool).
    pub flat: Vec<f64>,
    /// Per-trigger (row length, node type) pairs matching `flat`.
    pub rows: Vec<(u32, NodeType)>,
}

impl Scratch {
    /// Creates scratch space for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        // audit:allow(hot-alloc) -- pool-miss path: a worker's buffers are allocated once, then reused
        Self { mark: vec![0; n], val: vec![0.0; n], ..Self::default() }
    }

    fn next_stamp(&mut self) -> u32 {
        if self.stamp == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.stamp
    }

    /// Marks all neighbors of `u`, remembering `value(e)` per neighbor.
    /// Returns the stamp to test membership with [`Scratch::marked`].
    pub fn mark_neighbors<F: Fn(EdgeId) -> f64>(&mut self, g: &Graph, u: NodeId, value: F) -> u32 {
        let stamp = self.next_stamp();
        for (w, e) in g.edges_of(u) {
            self.mark[w as usize] = stamp;
            self.val[w as usize] = value(e);
        }
        stamp
    }

    /// Whether `x` was marked under `stamp`.
    #[inline]
    pub fn marked(&self, x: NodeId, stamp: u32) -> bool {
        self.mark[x as usize] == stamp
    }

    /// The value remembered for `x` (valid only if [`Scratch::marked`]).
    #[inline]
    pub fn value(&self, x: NodeId) -> f64 {
        self.val[x as usize]
    }
}

/// A pool of per-worker [`Scratch`] buffers for the engine's parallel σ
/// phase: buffers are allocated once per worker and reused across batches,
/// keeping the parallel hot path allocation-free (the `mark`/`val` arrays
/// are the `O(n)` part; `sigmas` grows to the max row length seen).
#[derive(Clone, Debug, Default)]
pub struct ScratchPool {
    free: Vec<Scratch>,
    n: usize,
}

impl ScratchPool {
    /// Creates an empty pool for graphs of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { free: Vec::new(), n }
    }

    /// Takes exactly `count` scratches out of the pool, allocating only the
    /// ones that don't exist yet. Pair with [`ScratchPool::put_back`].
    pub fn take(&mut self, count: usize) -> Vec<Scratch> {
        while self.free.len() < count {
            self.free.push(Scratch::new(self.n));
        }
        self.free.split_off(self.free.len() - count)
    }

    /// Returns scratches to the pool for reuse by the next batch.
    pub fn put_back(&mut self, scratches: impl IntoIterator<Item = Scratch>) {
        self.free.extend(scratches);
    }
}

impl<'a> SimilarityCtx<'a> {
    /// σ(u, v) for a single edge, `O(deg u + deg v)` via sorted merge.
    pub fn sigma(&self, u: NodeId, v: NodeId) -> f64 {
        let den = self.node_sum[u as usize] + self.node_sum[v as usize];
        if den <= 0.0 {
            return 0.0;
        }
        let mut num = 0.0;
        self.g.for_common_neighbors(u, v, |_, e_ux, e_vx| {
            num += self.act[e_ux as usize] + self.act[e_vx as usize];
        });
        num / den
    }

    /// Computes σ(u, w) for **every** neighbor `w` of `u` in one pass,
    /// leaving the results in `scratch.sigmas` aligned with
    /// `g.edges_of(u)` order. Cost `O(Σ_{w ∈ N(u)} deg w)`.
    pub fn sigma_all(&self, u: NodeId, scratch: &mut Scratch) {
        let act = self.act;
        let stamp = scratch.mark_neighbors(self.g, u, |e| act[e as usize]);
        let su = self.node_sum[u as usize];
        scratch.sigmas.clear();
        for (w, _e_uw) in self.g.edges_of(u) {
            let den = su + self.node_sum[w as usize];
            if den <= 0.0 {
                scratch.sigmas.push(0.0);
                continue;
            }
            let mut num = 0.0;
            for (x, e_wx) in self.g.edges_of(w) {
                if scratch.marked(x, stamp) {
                    // x is a common neighbor of u and w:
                    // a(w, x) (this edge) + a(u, x) (remembered at marking).
                    num += self.act[e_wx as usize] + scratch.value(x);
                }
            }
            scratch.sigmas.push(num / den);
        }
    }

    /// Size of the active neighbor set `N_ε(u)`.
    pub fn active_neighbor_count(&self, u: NodeId, epsilon: f64, scratch: &mut Scratch) -> usize {
        self.sigma_all(u, scratch);
        scratch.sigmas.iter().filter(|&&s| s >= epsilon).count()
    }

    /// Classifies `u` as core / p-core / periphery under `(ε, µ)`.
    pub fn node_type(&self, u: NodeId, epsilon: f64, mu: usize, scratch: &mut Scratch) -> NodeType {
        if self.g.degree(u) < mu {
            return NodeType::Periphery;
        }
        if self.active_neighbor_count(u, epsilon, scratch) >= mu {
            NodeType::Core
        } else {
            NodeType::PCore
        }
    }

    /// Classification when `scratch.sigmas` already holds `sigma_all(u)`
    /// output (avoids recomputation inside local reinforcement).
    pub fn node_type_from_sigmas(
        &self,
        u: NodeId,
        epsilon: f64,
        mu: usize,
        sigmas: &[f64],
    ) -> NodeType {
        if self.g.degree(u) < mu {
            return NodeType::Periphery;
        }
        if sigmas.iter().filter(|&&s| s >= epsilon).count() >= mu {
            NodeType::Core
        } else {
            NodeType::PCore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anc_graph::Graph;

    /// Two triangles sharing an edge: 0-1-2 and 1-2-3, all activeness 1.
    fn fixture() -> (Graph, Vec<f64>, Vec<f64>) {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let act = vec![1.0; g.m()];
        let node_sum: Vec<f64> = (0..g.n()).map(|v| g.degree(v as u32) as f64).collect();
        (g, act, node_sum)
    }

    #[test]
    fn sigma_uniform_activeness_is_structural() {
        let (g, act, node_sum) = fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        // σ(1,2): common neighbors {0, 3}; num = (1+1) + (1+1) = 4;
        // den = deg(1) + deg(2) = 3 + 3 = 6.
        assert!((ctx.sigma(1, 2) - 4.0 / 6.0).abs() < 1e-12);
        // σ(0,1): common {2}; num = 2; den = 2 + 3 = 5.
        assert!((ctx.sigma(0, 1) - 2.0 / 5.0).abs() < 1e-12);
        // symmetric
        assert_eq!(ctx.sigma(1, 2), ctx.sigma(2, 1));
    }

    #[test]
    fn sigma_no_common_neighbors_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let act = vec![1.0; g.m()];
        let node_sum: Vec<f64> = (0..g.n()).map(|v| g.degree(v as u32) as f64).collect();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        assert_eq!(ctx.sigma(0, 1), 0.0);
    }

    #[test]
    fn active_common_neighbors_boost_sigma() {
        let (g, mut act, _) = fixture();
        // Boost activeness on edges (1,0) and (2,0): common neighbor 0 becomes
        // "more active" with 1 and 2 → σ(1,2) rises.
        let base_sum: Vec<f64> = (0..g.n()).map(|v| g.degree(v as u32) as f64).collect();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &base_sum };
        let before = ctx.sigma(1, 2);

        act[g.edge_id(0, 1).unwrap() as usize] = 5.0;
        act[g.edge_id(0, 2).unwrap() as usize] = 5.0;
        let mut node_sum = vec![0.0; g.n()];
        for (e, u, v) in g.iter_edges() {
            node_sum[u as usize] += act[e as usize];
            node_sum[v as usize] += act[e as usize];
        }
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        assert!(ctx.sigma(1, 2) > before);
    }

    #[test]
    fn exclusive_neighbors_reduce_sigma() {
        // Start from the shared-edge triangles, then attach exclusive
        // neighbors to node 1: denominator grows, numerator doesn't.
        let g1 = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let g2 = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (1, 4), (1, 5)]);
        for (g, expect_smaller) in [(&g1, false), (&g2, true)] {
            let act = vec![1.0; g.m()];
            let node_sum: Vec<f64> = (0..g.n()).map(|v| g.degree(v as u32) as f64).collect();
            let ctx = SimilarityCtx { g, act: &act, node_sum: &node_sum };
            let s = ctx.sigma(1, 2);
            if expect_smaller {
                assert!(s < 4.0 / 6.0);
            } else {
                assert!((s - 4.0 / 6.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sigma_all_matches_pairwise() {
        let (g, act, node_sum) = fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let mut scratch = Scratch::new(g.n());
        for u in 0..g.n() as u32 {
            ctx.sigma_all(u, &mut scratch);
            let sigmas = scratch.sigmas.clone();
            for ((w, _), s) in g.edges_of(u).zip(sigmas) {
                assert!(
                    (ctx.sigma(u, w) - s).abs() < 1e-12,
                    "sigma_all({u}) disagrees with sigma({u},{w})"
                );
            }
        }
    }

    #[test]
    fn sigma_is_scale_invariant_neum() {
        // Lemma 3: σ computed from anchored activeness equals σ from true
        // activeness — i.e. uniform scaling cancels.
        let (g, act, node_sum) = fixture();
        let scaled_act: Vec<f64> = act.iter().map(|a| a * 42.0).collect();
        let scaled_sum: Vec<f64> = node_sum.iter().map(|a| a * 42.0).collect();
        let c1 = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let c2 = SimilarityCtx { g: &g, act: &scaled_act, node_sum: &scaled_sum };
        for (_, u, v) in g.iter_edges() {
            assert!((c1.sigma(u, v) - c2.sigma(u, v)).abs() < 1e-12);
        }
    }

    #[test]
    fn node_types_partition() {
        let (g, act, node_sum) = fixture();
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let mut scratch = Scratch::new(g.n());
        // µ = 3: deg(0) = deg(3) = 2 < 3 → periphery.
        assert_eq!(ctx.node_type(0, 0.3, 3, &mut scratch), NodeType::Periphery);
        assert_eq!(ctx.node_type(3, 0.3, 3, &mut scratch), NodeType::Periphery);
        // Node 1: deg 3; σ to 0 = 2/5, to 2 = 4/6, to 3 = 2/5; all ≥ 0.3 → core.
        assert_eq!(ctx.node_type(1, 0.3, 3, &mut scratch), NodeType::Core);
        // With ε = 0.5 only σ(1,2) qualifies → p-core.
        assert_eq!(ctx.node_type(1, 0.5, 3, &mut scratch), NodeType::PCore);
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let mut pool = ScratchPool::new(16);
        let taken = pool.take(3);
        assert_eq!(taken.len(), 3);
        pool.put_back(taken);
        // Second take reuses the same buffers — the free list never grows
        // past the high-water mark.
        let again = pool.take(2);
        assert_eq!(again.len(), 2);
        pool.put_back(again);
        assert_eq!(pool.take(3).len(), 3);
    }

    #[test]
    fn isolated_node_is_periphery() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let act = vec![1.0];
        let node_sum = vec![1.0, 1.0, 0.0];
        let ctx = SimilarityCtx { g: &g, act: &act, node_sum: &node_sum };
        let mut scratch = Scratch::new(3);
        assert_eq!(ctx.node_type(2, 0.3, 1, &mut scratch), NodeType::Periphery);
    }
}
